//! Quickstart: the paper's Fig. 1 / Fig. 2 example, end to end.
//!
//! Builds the X-Lab social graph, registers the continuous query QC over
//! the tweet and like streams, replays the exact tuples of Fig. 1, and
//! runs the one-shot query QS before and after the streams evolve the
//! stored data.
//!
//! Run with: `cargo run --release --example quickstart`

use wukong_core::{EngineConfig, WukongS};
use wukong_rdf::ntriples;
use wukong_stream::StreamSchema;

fn main() {
    let engine = WukongS::new(EngineConfig::single_node());
    let ss = engine.strings();

    // The initially stored data (Fig. 1's X-Lab graph). Timestamps in
    // this example are seconds numbered like the paper's 08xx labels.
    let stored = "\
        Logan ty XMen\n\
        Erik ty XMen\n\
        Logan fo Erik\n\
        Erik fo Logan\n\
        Erik po T-12\n\
        Logan po T-13\n\
        Logan po T-14\n\
        T-12 ht #sosp17\n\
        T-13 ht #sosp17\n\
        Erik li T-13\n";
    let triples = ntriples::parse_document(ss, stored).expect("stored data parses");
    engine.load_base(triples);
    println!("Loaded {} stored triples.", engine.cluster().triple_count());

    // Two streams: tweets (posts + GPS + hashtags) and likes. GPS
    // positions are timing data — they expire with the window.
    let mut tweet_schema = StreamSchema::timeless(wukong_rdf::StreamId(0), "Tweet_Stream", 1);
    tweet_schema
        .timing_predicates
        .insert(ss.intern_predicate("ga").expect("id space"));
    let tweets = engine.register_stream(tweet_schema);
    let likes = engine.register_stream(StreamSchema::timeless(
        wukong_rdf::StreamId(1),
        "Like_Stream",
        1,
    ));

    // One-shot QS before any streaming: only T-13 matches.
    let qs = "SELECT ?X FROM X-Lab WHERE { Logan po ?X . ?X ht #sosp17 . Erik li ?X }";
    let (rs, ms) = engine.one_shot(qs).expect("QS runs");
    println!(
        "QS before streaming: {:?} ({ms:.3} ms)",
        names(&engine, &rs.rows)
    );
    assert_eq!(rs.rows.len(), 1);

    // Register QC (Fig. 2b): posts in the last 10 s liked within 5 s by a
    // follower of the poster.
    let qc = "REGISTER QUERY QC SELECT ?X ?Y ?Z \
              FROM Tweet_Stream [RANGE 10ms STEP 1ms] \
              FROM Like_Stream [RANGE 5ms STEP 1ms] \
              FROM X-Lab \
              WHERE { GRAPH Tweet_Stream { ?X po ?Z } \
                      GRAPH X-Lab { ?X fo ?Y } \
                      GRAPH Like_Stream { ?Y li ?Z } }";
    engine.register_continuous(qc).expect("QC registers");

    // Replay Fig. 1's streams (timestamps 0802-0812 → 802-812).
    for line in [
        "Logan po T-15 802",
        "T-15 ga cell31-121 802",
        "T-15 ht #sosp17 802",
        "Erik po T-16 805",
        "T-16 ga cell41--74 805",
        "Logan po T-17 808",
        "T-17 ga cell31-121 808",
    ] {
        let t = ntriples::parse_tuple(ss, line, 1).expect("tuple parses");
        engine.ingest(tweets, t.triple, t.timestamp);
    }
    for line in [
        "Erik li T-15 806",
        "Tony li T-15 806",
        "Bruce li T-15 806",
        "Clint li T-15 810",
        "Steve li T-15 810",
        "Erik li T-17 810",
        "Logan li T-16 812",
        "Thor li T-15 812",
    ] {
        let t = ntriples::parse_tuple(ss, line, 1).expect("tuple parses");
        engine.ingest(likes, t.triple, t.timestamp);
    }
    engine.advance_time(812);

    // Data-driven firing: QC executes for every ready window.
    let firings = engine.fire_ready();
    println!("QC fired {} times.", firings.len());
    let with_results: Vec<_> = firings.iter().filter(|f| !f.results.is_empty()).collect();
    for f in &with_results {
        println!(
            "  window ending {}: {:?} ({:.3} ms)",
            f.window_end,
            names(&engine, &f.results.rows),
            f.latency_ms
        );
    }
    // The paper's example: at 0810 the result includes Logan Erik T-15.
    assert!(with_results.iter().any(|f| {
        f.window_end >= 806
            && names(&engine, &f.results.rows)
                .iter()
                .any(|r| r == &["Logan", "Erik", "T-15"])
    }));

    // One-shot QS again: the streamed tweets are now part of the stored
    // knowledge — T-15 (tagged #sosp17 and liked by Erik) joins T-13.
    let (rs, ms) = engine.one_shot(qs).expect("QS runs");
    println!(
        "QS after streaming: {:?} ({ms:.3} ms)",
        names(&engine, &rs.rows)
    );
    assert_eq!(rs.rows.len(), 2);

    println!("\nQuickstart OK: stateful stream querying end to end.");
}

fn names(engine: &WukongS, rows: &[Vec<wukong_rdf::Vid>]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|v| {
                    engine
                        .strings()
                        .entity_name(*v)
                        .unwrap_or_else(|_| "?".into())
                })
                .collect()
        })
        .collect()
}
