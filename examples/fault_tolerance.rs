//! Crash and recover: the fault-tolerance path of §5.
//!
//! Runs a deployment with per-batch logging, takes periodic checkpoints,
//! "crashes" it, recovers a fresh deployment from the initial data plus
//! the checkpoints, and verifies that (a) the recovered deployment gives
//! the *same answers* and (b) both match a ground truth computed directly
//! from the raw tuple timeline with SPARQL bag semantics.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use std::collections::HashMap;
use std::sync::Arc;
use wukong_benchdata::{lsbench, LsBench, LsBenchConfig};
use wukong_core::{EngineConfig, WukongS};
use wukong_rdf::{StringServer, Vid};

fn main() {
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(LsBenchConfig::tiny(), Arc::clone(&strings));
    let cfg = EngineConfig {
        fault_tolerance: true,
        ..EngineConfig::cluster(2)
    };

    let engine = WukongS::with_strings(cfg.clone(), Arc::clone(&strings));
    let stored = gen.stored_triples();
    engine.load_base(stored.iter().copied());
    let schemas = gen.schemas();
    for s in schemas.clone() {
        engine.register_stream(s);
    }
    // L5 is Fig. 2's QC: posts in a 10 s window liked within 1 s by a
    // follower of the poster.
    let q = lsbench::continuous_query(&gen, 5, 0);
    engine.register_continuous(&q).expect("register");

    // Stream two seconds, checkpointing every 500 ms of stream time.
    let timeline = gen.generate(0, 2_000);
    println!(
        "Streaming {} tuples with checkpoints every 500 ms…",
        timeline.len()
    );
    let mut next_cp = 500;
    for t in &timeline {
        engine.ingest(t.stream, t.triple, t.timestamp);
        if t.timestamp >= next_cp {
            let bytes = engine.checkpoint();
            println!("  checkpoint at t≈{next_cp}: {} bytes", bytes.len());
            next_cp += 500;
        }
    }
    engine.advance_time(2_000);
    let final_cp = engine.checkpoint();
    println!("  final checkpoint: {} bytes", final_cp.len());

    let (before, _) = engine.execute_registered(0);
    println!("\nQC answer before the crash: {} rows.", before.rows.len());

    // Ground truth straight from the timeline: (x po z) in the PO window
    // × (y li z) in the PO-L window × stored (x fo y), with bag
    // multiplicities.
    let expected = ground_truth(&gen, &stored, &timeline, 2_000);
    println!(
        "Ground truth from the raw timeline: {} rows.",
        expected.len()
    );
    let mut got = before.rows.clone();
    got.sort();
    assert_eq!(got, expected, "engine must match the timeline ground truth");

    // 💥 The machine fails. Recover from initial data + checkpoints.
    let checkpoints = engine.checkpoints();
    drop(engine);
    let recovered = WukongS::recover(cfg, stored.iter().copied(), schemas, &strings, &checkpoints)
        .expect("recovery succeeds");
    println!(
        "Recovered: {} continuous queries re-registered, stable SN {:?}.",
        recovered.continuous_count(),
        recovered.stable_sn()
    );

    let (after, _) = recovered.execute_registered(0);
    println!("QC answer after recovery: {} rows.", after.rows.len());
    let mut b = after.rows.clone();
    b.sort();
    assert_eq!(got, b, "recovered deployment must answer identically");
    println!("\nRecovery check passed: identical answers after replay.");
}

/// L5's answer computed directly from the raw data (independent of every
/// engine structure — the validation oracle).
fn ground_truth(
    gen: &LsBench,
    stored: &[wukong_rdf::Triple],
    timeline: &[wukong_benchdata::TimedTuple],
    stable: u64,
) -> Vec<Vec<Vid>> {
    let ss = gen.strings();
    let po = ss.predicate_id("po").expect("interned");
    let li = ss.predicate_id("li").expect("interned");
    let fo = ss.predicate_id("fo").expect("interned");

    let mut posts = Vec::new();
    let mut likes = Vec::new();
    for t in timeline {
        if t.stream.0 == 0
            && t.triple.p == po
            && t.timestamp > stable.saturating_sub(10_000)
            && t.timestamp <= stable
        {
            posts.push((t.triple.s, t.triple.o));
        }
        if t.stream.0 == 1
            && t.triple.p == li
            && t.timestamp > stable.saturating_sub(5_000)
            && t.timestamp <= stable
        {
            likes.push((t.triple.s, t.triple.o));
        }
    }
    let mut follows: HashMap<Vid, Vec<Vid>> = HashMap::new();
    for t in stored {
        if t.p == fo {
            follows.entry(t.s).or_default().push(t.o);
        }
    }

    let mut rows = Vec::new();
    for (y, z) in &likes {
        for (x, z2) in &posts {
            if z2 == z {
                let m = follows
                    .get(x)
                    .map(|v| v.iter().filter(|w| *w == y).count())
                    .unwrap_or(0);
                for _ in 0..m {
                    rows.push(vec![*x, *y, *z]);
                }
            }
        }
    }
    rows.sort();
    rows
}
