//! An interactive C-SPARQL shell over a live Wukong+S deployment.
//!
//! Boots a 2-node deployment pre-loaded with an LSBench-style social
//! graph whose five streams you can advance on demand, then reads
//! C-SPARQL from stdin:
//!
//! ```text
//! wukong+s> SELECT ?X WHERE { u0 fo ?X } LIMIT 3
//! wukong+s> REGISTER QUERY q SELECT ?X ?Z FROM PO [RANGE 1s STEP 100ms]
//!           WHERE { GRAPH PO { ?X po ?Z } }
//! wukong+s> \stream 1000        -- stream one second of social activity
//! wukong+s> \fire               -- run every ready continuous query
//! wukong+s> \stats              -- deployment statistics
//! ```
//!
//! Run with: `cargo run --release --example repl`
//! (pipe a script in for non-interactive use:
//! `echo 'SELECT ?X WHERE { u0 fo ?X }' | cargo run --release --example repl`)

use std::io::{BufRead, Write};
use std::sync::Arc;
use wukong_benchdata::{LsBench, LsBenchConfig};
use wukong_core::{Client, EngineConfig, ProxyPool, Submitted, WukongS};
use wukong_rdf::{StringServer, Timestamp};

fn main() {
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(LsBenchConfig::tiny(), Arc::clone(&strings));
    let engine = Arc::new(WukongS::with_strings(
        EngineConfig::cluster(2),
        Arc::clone(&strings),
    ));
    engine.load_base(gen.stored_triples());
    for s in gen.schemas() {
        engine.register_stream(s);
    }
    let pool = Arc::new(ProxyPool::new(Arc::clone(&engine), 2));
    let client = Client::connect(Arc::clone(&pool));

    println!(
        "Wukong+S shell — {} stored triples, streams PO/PO-L/PH/PH-L/GPS registered.",
        engine.stats().stored_triples
    );
    println!("Type a C-SPARQL query, or \\help for commands.\n");

    let stdin = std::io::stdin();
    let mut now: Timestamp = 0;
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("wukong+s> ");
        } else {
            print!("      ...> ");
        }
        std::io::stdout().flush().expect("stdout");
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let line = line.trim_end();
        if line.starts_with('\\') {
            buffer.clear();
            match handle_command(line, &engine, &mut gen, &mut now) {
                Ok(true) => continue,
                Ok(false) => break,
                Err(e) => {
                    println!("error: {e}");
                    continue;
                }
            }
        }
        // Queries may span lines; submit when the braces balance.
        buffer.push_str(line);
        buffer.push(' ');
        let open = buffer.matches('{').count();
        let close = buffer.matches('}').count();
        if open == 0 || open > close {
            continue;
        }
        let text = std::mem::take(&mut buffer);
        match client.query(&text) {
            Ok(Submitted::Results {
                results,
                latency_ms,
            }) => {
                for row in results.rows.iter().take(20) {
                    let names: Vec<String> = row
                        .iter()
                        .map(|v| strings.entity_name(*v).unwrap_or_else(|_| "?".into()))
                        .collect();
                    println!("  {}", names.join("  "));
                }
                if results.rows.len() > 20 {
                    println!("  … {} more rows", results.rows.len() - 20);
                }
                for (a, v) in results.aggregates.iter().enumerate() {
                    println!("  agg[{a}] = {v:?}");
                }
                println!("({} rows, {latency_ms:.3} ms)", results.rows.len());
            }
            Ok(Submitted::Registered(id)) => {
                println!("registered continuous query #{id}; \\stream then \\fire to run it");
            }
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye.");
}

fn handle_command(
    line: &str,
    engine: &Arc<WukongS>,
    gen: &mut LsBench,
    now: &mut Timestamp,
) -> Result<bool, String> {
    let mut parts = line.split_whitespace();
    match parts.next() {
        Some("\\help") => {
            println!("  \\stream <ms>   generate and ingest <ms> of social-network streams");
            println!("  \\fire          execute every continuous query whose windows are ready");
            println!("  \\stats         deployment statistics");
            println!("  \\quit          exit");
            println!("  anything else  a C-SPARQL query (multi-line until braces close)");
            Ok(true)
        }
        Some("\\stream") => {
            let ms: Timestamp = parts
                .next()
                .ok_or("usage: \\stream <ms>")?
                .parse()
                .map_err(|_| "usage: \\stream <ms>".to_string())?;
            let from = *now;
            *now += ms;
            let tuples = gen.generate(from, *now);
            for t in &tuples {
                engine.ingest(t.stream, t.triple, t.timestamp);
            }
            engine.advance_time(*now);
            println!(
                "streamed {} tuples; stream time is now {} ms",
                tuples.len(),
                *now
            );
            Ok(true)
        }
        Some("\\fire") => {
            let firings = engine.fire_ready();
            if firings.is_empty() {
                println!("no query windows are ready (try \\stream first)");
            }
            for f in firings {
                println!(
                    "  #{} {}: {} rows in {:.3} ms (window ending {})",
                    f.query,
                    f.name.as_deref().unwrap_or("<unnamed>"),
                    f.results.rows.len(),
                    f.latency_ms,
                    f.window_end
                );
            }
            Ok(true)
        }
        Some("\\stats") => {
            let s = engine.stats();
            println!(
                "  nodes {} | streams {} | continuous queries {} | stable SN {:?}",
                s.nodes, s.streams, s.continuous_queries, s.stable_sn
            );
            println!(
                "  stored triples {} | store {} KiB | stream index {} KiB | transient {} KiB",
                s.stored_triples,
                s.store_bytes / 1024,
                s.stream_index_bytes / 1024,
                s.transient_bytes / 1024
            );
            println!(
                "  batches {} | fabric: {} reads, {} messages",
                s.batches_processed, s.fabric.one_sided_reads, s.fabric.messages
            );
            Ok(true)
        }
        Some("\\quit") | Some("\\q") => Ok(false),
        _ => Err(format!("unknown command {line:?} (\\help for help)")),
    }
}
