//! Exports a generated workload as plain text files, so the same data can
//! drive external systems or be inspected by hand.
//!
//! Writes into `./workload-export/`:
//! - `stored.nt`    — the initially stored graph, one `s p o` per line;
//! - `stream_*.nt`  — each stream's tuples as `s p o timestamp` lines
//!   (parseable back with `wukong_rdf::ntriples::parse_tuple`);
//! - `queries.csparql` — the twelve LSBench query classes.
//!
//! Run with: `cargo run --release --example export_workload`

use std::fmt::Write as _;
use std::sync::Arc;
use wukong_benchdata::{lsbench, LsBench, LsBenchConfig};
use wukong_rdf::{ntriples, StringServer};

fn main() -> std::io::Result<()> {
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(LsBenchConfig::tiny(), Arc::clone(&strings));
    let dir = std::path::Path::new("workload-export");
    std::fs::create_dir_all(dir)?;

    // Stored graph.
    let mut out = String::new();
    for t in gen.stored_triples() {
        let line = ntriples::format_triple(&strings, &t).expect("interned");
        writeln!(out, "{line}").expect("string write");
    }
    std::fs::write(dir.join("stored.nt"), &out)?;
    println!("wrote stored.nt ({} lines)", out.lines().count());

    // Streams (2 seconds of activity).
    let names = ["PO", "PO-L", "PH", "PH-L", "GPS"];
    let mut per_stream: Vec<String> = vec![String::new(); names.len()];
    for t in gen.generate(0, 2_000) {
        let line = ntriples::format_triple(&strings, &t.triple).expect("interned");
        writeln!(per_stream[t.stream.0 as usize], "{line} {}", t.timestamp).expect("string write");
    }
    for (name, content) in names.iter().zip(&per_stream) {
        let file = format!("stream_{}.nt", name.replace('-', "_"));
        std::fs::write(dir.join(&file), content)?;
        println!("wrote {file} ({} lines)", content.lines().count());
    }

    // Queries.
    let mut q = String::new();
    for class in 1..=lsbench::CONTINUOUS_CLASSES {
        writeln!(q, "{}\n", lsbench::continuous_query(&gen, class, 0)).expect("write");
    }
    for class in 1..=lsbench::ONESHOT_CLASSES {
        writeln!(q, "{}\n", lsbench::oneshot_query(&gen, class, 0)).expect("write");
    }
    std::fs::write(dir.join("queries.csparql"), &q)?;
    println!("wrote queries.csparql");

    // Round-trip check: everything parses back.
    let check = Arc::new(StringServer::new());
    let stored = std::fs::read_to_string(dir.join("stored.nt"))?;
    let parsed = ntriples::parse_document(&check, &stored).expect("round-trips");
    println!("round-trip OK: {} stored triples re-parsed.", parsed.len());
    Ok(())
}
