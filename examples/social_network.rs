//! Social networking at scale: the paper's motivating scenario (§2.1).
//!
//! Generates an LSBench-style social graph, registers a mixture of
//! selective and non-selective continuous queries for many "users",
//! streams posts/likes/photos/GPS live, and reports per-class latency
//! plus the mixed-workload throughput the way §6.6 does.
//!
//! Run with: `cargo run --release --example social_network`

use std::sync::Arc;
use wukong_benchdata::{lsbench, LsBench, LsBenchConfig};
use wukong_core::metrics::geometric_mean;
use wukong_core::{EngineConfig, LatencyRecorder, WukongS};
use wukong_rdf::StringServer;

fn main() {
    // A 4-node cluster and a mid-size social graph.
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(
        LsBenchConfig {
            users: 1_000,
            rate_scale: 0.01,
            ..LsBenchConfig::default()
        },
        Arc::clone(&strings),
    );
    let engine = WukongS::with_strings(EngineConfig::cluster(4), Arc::clone(&strings));

    let stored = gen.stored_triples();
    println!("Stored social graph: {} triples.", stored.len());
    engine.load_base(stored);

    for schema in gen.schemas() {
        engine.register_stream(schema);
    }

    // 24 emulated users register continuous queries: a spread of variants
    // over all six classes.
    let mut ids = Vec::new();
    for variant in 0..4 {
        for class in 1..=lsbench::CONTINUOUS_CLASSES {
            let text = lsbench::continuous_query(&gen, class, variant);
            ids.push((class, engine.register_continuous(&text).expect("register")));
        }
    }
    println!("Registered {} continuous queries.", ids.len());

    // Stream three seconds of social activity.
    let duration = 3_000;
    let timeline = gen.generate(0, duration);
    println!("Streaming {} tuples…", timeline.len());
    for t in &timeline {
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(duration);

    // Fire everything that is ready and summarise per class.
    let mut recorders: Vec<LatencyRecorder> = (0..=lsbench::CONTINUOUS_CLASSES)
        .map(|_| LatencyRecorder::new())
        .collect();
    let mut results = [0usize; lsbench::CONTINUOUS_CLASSES + 1];
    for (class, id) in &ids {
        let _ = engine.execute_registered(*id); // plan warm-up
        for _ in 0..20 {
            let (rs, ms) = engine.execute_registered(*id);
            recorders[*class].record(ms);
            results[*class] += rs.rows.len();
        }
    }

    println!("\nclass  median_ms  p99_ms   rows/exec");
    let mut medians = Vec::new();
    for class in 1..=lsbench::CONTINUOUS_CLASSES {
        let rec = &recorders[class];
        let median = rec.median().expect("samples");
        medians.push(median);
        println!(
            "L{class}     {:>8.3}  {:>7.3}  {:>9.1}",
            median,
            rec.percentile(99.0).expect("samples"),
            results[class] as f64 / rec.len() as f64,
        );
    }
    println!(
        "geometric mean: {:.3} ms",
        geometric_mean(medians).expect("positive medians")
    );

    // Mixed-workload throughput via Little's law with 16 workers/node.
    let mean_ms: f64 = {
        let lats: Vec<f64> = (1..=lsbench::CONTINUOUS_CLASSES)
            .map(|c| recorders[c].mean().expect("samples"))
            .collect();
        lats.len() as f64 / lats.iter().map(|l| 1.0 / l).sum::<f64>()
    };
    let throughput = 16.0 * 4.0 / (mean_ms / 1_000.0);
    println!("mixed-workload throughput (16 workers × 4 nodes): {throughput:.0} q/s");

    // Streaming keeps the stored graph fresh for one-shot analytics.
    let (rs, ms) = engine
        .one_shot("SELECT ?X ?T WHERE { ?X ht ?T }")
        .expect("one-shot");
    println!(
        "\nOne-shot hashtag audit: {} tagged posts ({ms:.3} ms).",
        rs.rows.len()
    );
}
