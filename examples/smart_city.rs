//! Urban monitoring: the CityBench scenario (§6.10).
//!
//! Sensor streams (traffic, parking, weather, pollution, user locations)
//! are *timing data*: readings matter only inside query windows and are
//! swept by the transient store's GC once every window has passed. This
//! example registers congestion/parking/pollution monitors with FILTERs
//! and aggregates, drives a dozen seconds of city life, and shows both
//! the live answers and the GC keeping memory flat.
//!
//! Run with: `cargo run --release --example smart_city`

use std::sync::Arc;
use wukong_benchdata::{citybench, CityBench, CityBenchConfig};
use wukong_core::{EngineConfig, WukongS};
use wukong_rdf::StringServer;

fn main() {
    let strings = Arc::new(StringServer::new());
    let mut city = CityBench::new(CityBenchConfig::default(), Arc::clone(&strings));
    // CityBench batches are 1 s; sweep every 4 batches so the 12 s run
    // exercises the GC.
    let cfg = EngineConfig {
        gc_every_batches: 4,
        gc_slack_ms: 500,
        ..EngineConfig::single_node()
    };
    let engine = WukongS::with_strings(cfg, Arc::clone(&strings));

    engine.load_base(city.stored_triples());
    println!(
        "Loaded the city metadata graph: {} triples.",
        engine.cluster().triple_count()
    );
    for schema in city.schemas() {
        engine.register_stream(schema);
    }

    // Three civic monitors.
    let congestion = engine
        .register_continuous(&citybench::continuous_query(&city, 2, 0))
        .expect("congestion monitor registers");
    let parking = engine
        .register_continuous(&citybench::continuous_query(&city, 4, 0))
        .expect("parking monitor registers");
    let pollution = engine
        .register_continuous(&citybench::continuous_query(&city, 10, 0))
        .expect("pollution monitor registers");

    // Drive 12 seconds of sensor feeds, reporting as windows fire.
    let timeline = city.generate(0, 12_000);
    println!("Streaming {} sensor readings…\n", timeline.len());
    let mut reported = 0usize;
    for chunk in timeline.chunks(64) {
        for t in chunk {
            engine.ingest(t.stream, t.triple, t.timestamp);
        }
        for f in engine.fire_ready() {
            if f.results.is_empty() && f.results.aggregates.iter().all(Option::is_none) {
                continue;
            }
            reported += 1;
            if reported <= 12 {
                match f.query {
                    q if q == congestion => println!(
                        "t={:>5}  congestion alert: {} slow readings on both roads",
                        f.window_end,
                        f.results.rows.len()
                    ),
                    q if q == parking => println!(
                        "t={:>5}  parking: {} lots with >5 free spots",
                        f.window_end,
                        f.results.rows.len()
                    ),
                    q if q == pollution => println!(
                        "t={:>5}  pollution max per route sensor: {:?}",
                        f.window_end,
                        f.results
                            .aggregates
                            .iter()
                            .map(|a| a.unwrap_or(f64::NAN))
                            .collect::<Vec<_>>()
                    ),
                    _ => {}
                }
            }
        }
    }
    engine.advance_time(12_000);
    println!("… {reported} non-empty firings in total.");

    // The transient store stayed bounded: GC swept expired slices.
    let mut live = 0usize;
    let mut evicted = 0u64;
    for s in engine.cluster().streams() {
        for t in &s.transients {
            let t = t.read();
            live += t.slice_count();
            evicted += t.evicted_slices();
        }
    }
    println!(
        "\nTransient store after the run: {live} live slices, {evicted} GC-evicted — \
         timing data never reaches the persistent store."
    );
    assert!(evicted > 0, "GC must have swept expired slices");

    // Timing readings are absent from one-shot (stored-graph) queries.
    let (rs, _) = engine
        .one_shot("SELECT ?S ?V WHERE { ?S pol ?V }")
        .expect("one-shot");
    assert!(rs.is_empty());
    println!("One-shot over `pol` readings: empty, as timing data should be.");
}
