//! Stream composition with CONSTRUCT: an RSP pipeline.
//!
//! C-SPARQL queries can *produce* RDF streams, not just consume them.
//! This example builds a two-stage pipeline over the social workload:
//!
//! 1. `REGISTER QUERY influences CONSTRUCT { ?Y influencedBy ?X } …`
//!    watches the post and like streams and derives an "influence" edge
//!    whenever someone likes a fresh post of a person they follow.
//! 2. A second continuous query consumes the derived stream to find
//!    *influence hubs* — users influencing several others within its own
//!    window — something neither raw stream contains.
//!
//! Emission uses IStream semantics (only results new since the previous
//! firing), so sliding windows do not re-emit their overlap; and because
//! the derived edges are timeless, they are absorbed into the stored
//! graph where one-shot analytics can audit the full influence history.
//!
//! Run with: `cargo run --release --example derived_streams`

use std::sync::Arc;
use wukong_benchdata::{LsBench, LsBenchConfig};
use wukong_core::{EngineConfig, WukongS};
use wukong_rdf::{StreamId, StringServer};
use wukong_stream::StreamSchema;

fn main() {
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(
        LsBenchConfig {
            users: 300,
            rate_scale: 0.01,
            ..LsBenchConfig::default()
        },
        Arc::clone(&strings),
    );
    let engine = WukongS::with_strings(EngineConfig::cluster(2), Arc::clone(&strings));
    engine.load_base(gen.stored_triples());
    for s in gen.schemas() {
        engine.register_stream(s);
    }
    // The derived stream is a first-class stream: registered like any
    // other, with its own schema and batch cadence.
    let influence = engine.register_stream(StreamSchema::timeless(StreamId(0), "Influence", 100));

    // Stage 1: derive influence edges from raw activity.
    engine
        .register_construct(
            "REGISTER QUERY derive \
             CONSTRUCT { ?Y influencedBy ?X } \
             FROM PO [RANGE 5s STEP 500ms] \
             FROM PO-L [RANGE 2s STEP 500ms] \
             FROM X-Lab \
             WHERE { GRAPH PO { ?X po ?Z } . \
                     GRAPH X-Lab { ?Y fo ?X } . \
                     GRAPH PO-L { ?Y li ?Z } }",
            influence,
        )
        .expect("stage 1 registers");

    // Stage 2: consume the derived stream.
    let hubs = engine
        .register_continuous(
            "REGISTER QUERY hubs SELECT ?X COUNT(?Y) \
             FROM Influence [RANGE 10s STEP 1s] \
             WHERE { GRAPH Influence { ?Y influencedBy ?X } } \
             GROUP BY ?X",
        )
        .expect("stage 2 registers");

    // Drive ten seconds of social activity, firing the pipeline live.
    let timeline = gen.generate(0, 10_000);
    println!(
        "Streaming {} tuples through the pipeline…\n",
        timeline.len()
    );
    let mut derived_firings = 0usize;
    for chunk in timeline.chunks(128) {
        for t in chunk {
            engine.ingest(t.stream, t.triple, t.timestamp);
        }
        for f in engine.fire_ready() {
            if f.name.as_deref() == Some("derive") && !f.results.is_empty() {
                derived_firings += 1;
            }
        }
    }
    engine.advance_time(10_000);
    let _ = engine.fire_ready();

    println!("Stage 1 fired with results {derived_firings} times.");

    // Read the hubs from stage 2's current window.
    let (rs, ms) = engine.execute_registered(hubs);
    println!(
        "\nStage 2 — influence hubs in the last 10 s ({} users, {ms:.3} ms):",
        rs.rows.len()
    );
    let mut hubs_sorted: Vec<(String, f64)> = rs
        .rows
        .iter()
        .zip(&rs.group_aggregates)
        .map(|(row, aggs)| {
            (
                strings.entity_name(row[0]).unwrap_or_else(|_| "?".into()),
                aggs[0].unwrap_or(0.0),
            )
        })
        .collect();
    hubs_sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (user, n) in hubs_sorted.iter().take(5) {
        println!("  {user} influenced {n} follower-likes");
    }
    assert!(!hubs_sorted.is_empty(), "the pipeline must derive edges");

    // The derived knowledge is part of the stored graph too.
    let (rs, _) = engine
        .one_shot("SELECT DISTINCT ?X WHERE { ?Y influencedBy ?X }")
        .expect("audit runs");
    println!(
        "\nOne-shot audit over the evolved stored graph: {} distinct influencers ever.",
        rs.rows.len()
    );
    assert!(!rs.is_empty());
    println!("\nPipeline OK: streams composed through CONSTRUCT.");
}
