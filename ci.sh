#!/usr/bin/env bash
# Repo CI: formatting, lints, and the tier-1 test suite.
#
#   ./ci.sh          fmt + clippy + build + tests
#   ./ci.sh --quick  the above plus a bench --json smoke run at tiny scale
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test"
cargo build --release
cargo test -q

# Execution-mode matrix: the equivalence suites must pass at both the
# serial baseline and a wide pool, with delta maintenance off and on and
# adaptive re-planning off and on — incremental and adaptive firings are
# required to be byte-identical to static recompute at every point.
for workers in 1 4; do
    for inc in 0 1; do
        for adaptive in 0 1; do
            echo "== matrix: WUKONG_WORKERS=$workers WUKONG_INCREMENTAL=$inc WUKONG_ADAPTIVE=$adaptive"
            WUKONG_WORKERS=$workers WUKONG_INCREMENTAL=$inc WUKONG_ADAPTIVE=$adaptive \
                cargo test -q -p wukong-bench \
                --test differential --test integration_parallel \
                --test props_incremental --test props_planner --test regression_replan
        done
    done
done

# Overload matrix: the bounded-ingest path must hold its invariants with
# the budget injected from the environment, and the suites that talk to
# a possibly-shedding engine must stay green under admission control.
for budget in 64 1024; do
    echo "== matrix: WUKONG_INGEST_BUDGET=$budget"
    WUKONG_INGEST_BUDGET=$budget cargo test -q -p wukong-bench \
        --test integration_stress --test props_overload --test integration_obs
done

# Trace matrix: the flight recorder is always-on by default and must be
# observationally transparent — the quick equivalence suites pass with
# recording forced on and forced off (`WUKONG_TRACE=0`).
for trace in 0 1; do
    echo "== matrix: WUKONG_TRACE=$trace"
    WUKONG_TRACE=$trace cargo test -q -p wukong-bench \
        --test integration_trace --test integration_obs --test differential \
        --test integration_parallel
done

if [[ "${1:-}" == "--quick" ]]; then
    echo "== bench JSON smoke (tiny scale)"
    out="$(mktemp -d)"
    WUKONG_SCALE=tiny cargo run -q --release -p wukong-bench \
        --bin table2_latency_single -- --json "$out/table2.json"
    grep -q '"schema_version": 8' "$out/table2.json"
    echo "smoke OK: $out/table2.json"

    echo "== recovery drill smoke (tiny scale)"
    WUKONG_SCALE=tiny cargo run -q --release -p wukong-bench \
        --bin exp_recovery_drill -- --quick --json "$out/drill.json"
    grep -q '"all_match": 1' "$out/drill.json"
    echo "drill OK: $out/drill.json"

    echo "== worker scaling smoke (tiny scale)"
    WUKONG_SCALE=tiny cargo run -q --release -p wukong-bench \
        --bin exp_worker_scaling -- --quick --json "$out/scaling.json"
    grep -q '"all_match": 1' "$out/scaling.json"
    grep -q '"pool"' "$out/scaling.json"
    echo "scaling OK: $out/scaling.json"

    echo "== incremental overlap smoke (tiny scale)"
    WUKONG_SCALE=tiny cargo run -q --release -p wukong-bench \
        --bin exp_incremental -- --quick --json "$out/incremental.json"
    grep -q '"all_match": 1' "$out/incremental.json"
    grep -q '"incremental"' "$out/incremental.json"
    echo "incremental OK: $out/incremental.json"

    echo "== overload drill smoke (tiny scale)"
    WUKONG_SCALE=tiny cargo run -q --release -p wukong-bench \
        --bin exp_overload -- --quick --json "$out/overload.json"
    grep -q '"all_match": 1' "$out/overload.json"
    grep -q '"overload"' "$out/overload.json"
    echo "overload OK: $out/overload.json"

    echo "== adaptive re-planning smoke (tiny scale)"
    WUKONG_SCALE=tiny cargo run -q --release -p wukong-bench \
        --bin exp_adaptive -- --quick --json "$out/adaptive.json"
    grep -q '"all_match": 1' "$out/adaptive.json"
    grep -q '"plan"' "$out/adaptive.json"
    echo "adaptive OK: $out/adaptive.json"

    echo "== composed-fault chaos smoke (tiny scale)"
    WUKONG_SCALE=tiny cargo run -q --release -p wukong-bench \
        --bin exp_chaos -- --quick --json "$out/chaos.json"
    grep -q '"all_pass": 1' "$out/chaos.json"
    grep -q '"integrity"' "$out/chaos.json"
    echo "chaos OK: $out/chaos.json"

    echo "== trace fidelity smoke (tiny scale)"
    WUKONG_SCALE=tiny cargo run -q --release -p wukong-bench \
        --bin exp_trace -- --quick --json "$out/trace.json" --dump "$out/trace_dump.json"
    grep -q '"all_pass": 1' "$out/trace.json"
    grep -q '"trace"' "$out/trace.json"
    grep -q '"kind": "trace_dump"' "$out/trace_dump.json"
    cargo run -q --release -p wukong-bench --bin wukong-trace -- "$out/trace_dump.json" \
        > "$out/trace_render.txt"
    grep -q 'trace_dump: trigger quarantine' "$out/trace_render.txt"
    echo "trace OK: $out/trace.json"
fi

echo "CI green"
