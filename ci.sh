#!/usr/bin/env bash
# Repo CI: formatting, lints, and the tier-1 test suite.
#
#   ./ci.sh          fmt + clippy + build + tests
#   ./ci.sh --quick  the above plus a bench --json smoke run at tiny scale
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test"
cargo build --release
cargo test -q

# Worker matrix: the parallel-equivalence suites must pass at both the
# serial baseline and a wide pool, whatever the default happens to be.
for workers in 1 4; do
    echo "== worker matrix: WUKONG_WORKERS=$workers"
    WUKONG_WORKERS=$workers cargo test -q -p wukong-bench \
        --test differential --test integration_parallel
done

if [[ "${1:-}" == "--quick" ]]; then
    echo "== bench JSON smoke (tiny scale)"
    out="$(mktemp -d)"
    WUKONG_SCALE=tiny cargo run -q --release -p wukong-bench \
        --bin table2_latency_single -- --json "$out/table2.json"
    grep -q '"schema_version": 3' "$out/table2.json"
    echo "smoke OK: $out/table2.json"

    echo "== recovery drill smoke (tiny scale)"
    WUKONG_SCALE=tiny cargo run -q --release -p wukong-bench \
        --bin exp_recovery_drill -- --quick --json "$out/drill.json"
    grep -q '"all_match": 1' "$out/drill.json"
    echo "drill OK: $out/drill.json"

    echo "== worker scaling smoke (tiny scale)"
    WUKONG_SCALE=tiny cargo run -q --release -p wukong-bench \
        --bin exp_worker_scaling -- --quick --json "$out/scaling.json"
    grep -q '"all_match": 1' "$out/scaling.json"
    grep -q '"pool"' "$out/scaling.json"
    echo "scaling OK: $out/scaling.json"
fi

echo "CI green"
