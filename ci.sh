#!/usr/bin/env bash
# Repo CI: formatting, lints, and the tier-1 test suite.
#
#   ./ci.sh          fmt + clippy + build + tests
#   ./ci.sh --quick  the above plus a bench --json smoke run at tiny scale
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test"
cargo build --release
cargo test -q

if [[ "${1:-}" == "--quick" ]]; then
    echo "== bench JSON smoke (tiny scale)"
    out="$(mktemp -d)"
    WUKONG_SCALE=tiny cargo run -q --release -p wukong-bench \
        --bin table2_latency_single -- --json "$out/table2.json"
    grep -q '"schema_version": 2' "$out/table2.json"
    echo "smoke OK: $out/table2.json"

    echo "== recovery drill smoke (tiny scale)"
    WUKONG_SCALE=tiny cargo run -q --release -p wukong-bench \
        --bin exp_recovery_drill -- --quick --json "$out/drill.json"
    grep -q '"all_match": 1' "$out/drill.json"
    echo "drill OK: $out/drill.json"
fi

echo "CI green"
