//! Cross-paradigm oracle: the graph-exploration executor must compute
//! exactly the relational semantics of basic graph patterns.
//!
//! For random graphs and random conjunctive queries, the result of
//! Wukong's plan-ordered graph exploration is compared against a
//! reference evaluation built from full scans + hash joins (the
//! relational module the baselines use). Both use bag semantics, so the
//! sorted row multisets must be identical — whatever join order the
//! planner picks.

use proptest::prelude::*;
use wukong_baselines::relational::{hash_join, scan_pattern, Relation};
use wukong_net::TaskTimer;
use wukong_query::ast::{GraphName, Query, QueryKind, Term, TriplePattern};
use wukong_query::exec::{ExecContext, GraphAccess, NoLiterals, PatternSource};
use wukong_query::{execute, plan_query};
use wukong_rdf::{Key, Pid, Triple, Vid};
use wukong_store::{BaseStore, SnapshotId};

struct LocalAccess<'a>(&'a BaseStore);

impl GraphAccess for LocalAccess<'_> {
    fn neighbors(
        &self,
        key: Key,
        _src: PatternSource,
        ctx: &ExecContext,
        _timer: &mut TaskTimer,
        out: &mut Vec<Vid>,
    ) {
        self.0.for_each_neighbor(key, ctx.sn, |v| out.push(v));
    }

    fn estimate(&self, key: Key, _src: PatternSource, ctx: &ExecContext) -> usize {
        self.0.len_at(key, ctx.sn)
    }
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    // A small, dense domain so patterns actually join.
    (1..12u64, 1..4u64, 1..12u64).prop_map(|(s, p, o)| Triple::new(Vid(s), Pid(p), Vid(o)))
}

/// A term referencing one of 4 variables or one of the domain constants.
fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..4u8).prop_map(Term::Var),
        (1..12u64).prop_map(|v| Term::Const(Vid(v))),
    ]
}

fn arb_pattern() -> impl Strategy<Value = TriplePattern> {
    (arb_term(), 1..4u64, arb_term()).prop_map(|(s, p, o)| TriplePattern {
        s,
        p: Pid(p),
        o,
        graph: GraphName::Stored,
    })
}

/// Reference evaluation: scan each pattern over the full triple list,
/// join left-to-right, project var 0..k in order.
fn reference(triples: &[Triple], patterns: &[TriplePattern], select: &[u8]) -> Vec<Vec<Vid>> {
    let mut acc = Relation::unit();
    for p in patterns {
        let rel = scan_pattern(triples.iter(), p);
        acc = hash_join(&acc, &rel);
    }
    let mut rows: Vec<Vec<Vid>> = acc
        .rows
        .iter()
        .map(|row| {
            select
                .iter()
                .map(|v| {
                    acc.vars
                        .iter()
                        .position(|x| x == v)
                        .map(|c| row[c])
                        .unwrap_or(Vid(u64::MAX))
                })
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn graph_exploration_matches_relational_semantics(
        triples in proptest::collection::vec(arb_triple(), 1..40),
        patterns in proptest::collection::vec(arb_pattern(), 1..4),
    ) {
        // Select every variable the patterns mention, in id order.
        let mut vars: Vec<u8> = patterns
            .iter()
            .flat_map(|p| [p.s, p.o])
            .filter_map(|t| t.var())
            .collect();
        vars.sort_unstable();
        vars.dedup();
        prop_assume!(!vars.is_empty());

        let mut store = BaseStore::new();
        for &t in &triples {
            store.insert_base(t);
        }

        let query = Query {
            name: None,
            kind: QueryKind::OneShot,
            distinct: false,
            limit: None,
            construct: Vec::new(),
            select: vars.clone(),
            optional: Vec::new(),
            union_groups: Vec::new(),
            not_exists: Vec::new(),
            order_by: Vec::new(),
            group_by: Vec::new(),
            aggregates: Vec::new(),
            streams: Vec::new(),
            patterns: patterns.clone(),
            filters: Vec::new(),
            var_count: 4,
            var_names: (0..4).map(|i| format!("v{i}")).collect(),
        };

        let access = LocalAccess(&store);
        let ctx = ExecContext::stored(SnapshotId::BASE);
        let plan = plan_query(&query, &access, &ctx);
        let mut timer = TaskTimer::start();
        let rs = execute(&query, &plan, &ctx, &access, &NoLiterals, &mut timer);
        let mut got = rs.rows;
        got.sort();

        let expect = reference(&triples, &patterns, &vars);
        prop_assert_eq!(got, expect);
    }

    /// DISTINCT and LIMIT keep the same semantics as applying them to the
    /// reference result.
    #[test]
    fn distinct_limit_match_reference(
        triples in proptest::collection::vec(arb_triple(), 1..30),
        patterns in proptest::collection::vec(arb_pattern(), 1..3),
        limit in 0..8usize,
    ) {
        let mut vars: Vec<u8> = patterns
            .iter()
            .flat_map(|p| [p.s, p.o])
            .filter_map(|t| t.var())
            .collect();
        vars.sort_unstable();
        vars.dedup();
        prop_assume!(!vars.is_empty());

        let mut store = BaseStore::new();
        for &t in &triples {
            store.insert_base(t);
        }
        let query = Query {
            name: None,
            kind: QueryKind::OneShot,
            distinct: true,
            limit: Some(limit),
            construct: Vec::new(),
            select: vars.clone(),
            optional: Vec::new(),
            union_groups: Vec::new(),
            not_exists: Vec::new(),
            order_by: Vec::new(),
            group_by: Vec::new(),
            aggregates: Vec::new(),
            streams: Vec::new(),
            patterns: patterns.clone(),
            filters: Vec::new(),
            var_count: 4,
            var_names: (0..4).map(|i| format!("v{i}")).collect(),
        };
        let access = LocalAccess(&store);
        let ctx = ExecContext::stored(SnapshotId::BASE);
        let plan = plan_query(&query, &access, &ctx);
        let mut timer = TaskTimer::start();
        let rs = execute(&query, &plan, &ctx, &access, &NoLiterals, &mut timer);

        let mut expect = reference(&triples, &patterns, &vars);
        expect.dedup();
        expect.truncate(limit);
        // DISTINCT output is sorted by construction in the executor.
        prop_assert_eq!(rs.rows, expect);
    }
}
