//! Property-based tests of the overload subsystem's *exact accounting*
//! guarantee (DESIGN.md §11): shedding may degrade answers but must
//! never lose count of a tuple, and every degraded firing must declare
//! precisely the staleness its windows absorbed.
//!
//! Two properties, checked end to end through the public engine API for
//! arbitrary bursty timelines, budgets, policies, and seeds:
//!
//! 1. **Conservation.** Every ingested tuple is accounted for exactly
//!    once: applied through the pipeline (timeless + timing), discarded
//!    by the adaptor, or shed — and every shed tuple is either still
//!    outstanding or has been replayed by catch-up.
//! 2. **Marker exactness.** A firing carries a `degraded` marker iff the
//!    shed log contains a record inside one of its window instances, and
//!    the marker's `tuples_shed` equals the sum of exactly those
//!    records — reconstructible by an outside observer from the public
//!    shed log and the query's window geometry alone.

use proptest::prelude::*;
use std::sync::Arc;
use wukong_core::{EngineConfig, Firing, WukongS};
use wukong_rdf::{Pid, StreamId, StringServer, Timestamp, Triple, Vid};
use wukong_stream::{IngestBudget, ShedPolicy, StreamSchema};

const INTERVAL_MS: u64 = 100;
const RANGE_MS: u64 = 300;
const HORIZON: Timestamp = 1_500;

const JOIN_QUERY: &str = "REGISTER QUERY PO SELECT ?V0 ?V1 ?V2 \
     FROM S [RANGE 300ms STEP 100ms] \
     WHERE { GRAPH S { ?V0 ta0 ?V1 } GRAPH S { ?V2 ta1 ?V1 } }";

fn vocab(strings: &Arc<StringServer>) -> (Vec<Vid>, Vec<Pid>) {
    let entities = (0..8)
        .map(|i| strings.intern_entity(&format!("e{i}")).expect("interns"))
        .collect();
    let preds = ["ta0", "ta1"]
        .iter()
        .map(|p| strings.intern_predicate(p).expect("interns"))
        .collect();
    (entities, preds)
}

/// A bursty timeline: tuples cluster into a handful of batch intervals so
/// small budgets actually overflow.
fn arb_timeline() -> impl Strategy<Value = Vec<(u64, u64, u64, Timestamp)>> {
    proptest::collection::vec(
        (0..8u64, 0..2u64, 0..8u64, 0..6u64, 0..INTERVAL_MS),
        20..160,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(s, p, o, bucket, off)| {
                // Six hot buckets spread over the horizon.
                (s, p, o, (bucket * 2 + 1) * INTERVAL_MS + off)
            })
            .collect()
    })
}

struct Run {
    engine: WukongS,
    firings: Vec<Firing>,
    ingested: u64,
}

fn run(
    tl: &[(u64, u64, u64, Timestamp)],
    budget: usize,
    policy: ShedPolicy,
    seed: u64,
    catchup_quiet_ms: u64,
) -> Run {
    let strings = Arc::new(StringServer::new());
    let (e, p) = vocab(&strings);
    let mut cfg = EngineConfig::single_node()
        .with_ingest_budget(Some(IngestBudget::tuples(budget)))
        .with_shed_policy(policy);
    cfg.shed_seed = seed;
    cfg.overload.catchup_quiet_ms = catchup_quiet_ms;
    // Keep the wall-clock latency trip out: these properties are exact.
    cfg.overload.latency_budget_ms = 1e9;
    let engine = WukongS::with_strings(cfg, strings);
    let sid = engine.register_stream(StreamSchema::timeless(StreamId(0), "S", INTERVAL_MS));
    engine.register_continuous(JOIN_QUERY).expect("registers");

    let mut tl: Vec<_> = tl.to_vec();
    tl.sort_by_key(|&(_, _, _, ts)| ts);
    let mut fed = 0;
    let mut firings = Vec::new();
    for tick in (INTERVAL_MS..=HORIZON).step_by(INTERVAL_MS as usize) {
        while fed < tl.len() && tl[fed].3 <= tick {
            let (s, pr, o, ts) = tl[fed];
            engine.ingest(
                sid,
                Triple::new(e[s as usize], p[pr as usize], e[o as usize]),
                ts,
            );
            fed += 1;
        }
        engine.advance_time(tick);
        firings.extend(engine.fire_ready());
    }
    assert_eq!(fed, tl.len(), "timeline fully fed");
    Run {
        engine,
        firings,
        ingested: tl.len() as u64,
    }
}

proptest! {
    /// ingested = applied (timeless + timing) + discarded + shed, and
    /// shed = outstanding + replayed — no tuple is ever lost track of,
    /// whether catch-up ran or not.
    #[test]
    fn shed_accounting_conserves_tuples(
        tl in arb_timeline(),
        budget in 4..48usize,
        sampled in 0..2u64,
        seed in 0..u64::MAX,
        // Sometimes catch-up replays mid-run, sometimes it never fires.
        quiet in prop_oneof![Just(400u64), Just(u64::MAX)],
    ) {
        let policy = if sampled == 1 { ShedPolicy::SampleWithinBatch } else { ShedPolicy::DropOldestWindow };
        let r = run(&tl, budget, policy, seed, quiet);
        let (stats, _) = r.engine.injection_stats(StreamId(0));
        let applied = (stats.timeless + stats.timing + stats.discarded) as u64;
        let shed = r.engine.total_shed();
        prop_assert_eq!(
            r.ingested, applied + shed,
            "conservation: {} ingested vs {} applied + {} shed", r.ingested, applied, shed
        );
        let snap = r.engine.handle().obs().overload().snapshot();
        prop_assert_eq!(shed, r.engine.shed_outstanding() + snap.catchup_replayed_tuples);
        prop_assert_eq!(shed, snap.tuples_shed);
        // The log agrees with the scalar total.
        prop_assert_eq!(shed, r.engine.shed_log().iter().map(|rec| rec.tuples_shed).sum::<u64>());
    }

    /// A firing is marked degraded iff a shed record falls inside its
    /// window, and the marker equals the sum of exactly those records.
    #[test]
    fn degraded_markers_match_shed_log(
        tl in arb_timeline(),
        budget in 4..32usize,
        sampled in 0..2u64,
        seed in 0..u64::MAX,
    ) {
        let policy = if sampled == 1 { ShedPolicy::SampleWithinBatch } else { ShedPolicy::DropOldestWindow };
        // Catch-up disabled: every shed record stays outstanding, so the
        // public log is the exact staleness ledger for the whole run.
        let r = run(&tl, budget, policy, seed, u64::MAX);
        let log = r.engine.shed_log();
        for f in &r.firings {
            // The query's single window instance at this firing, in the
            // engine's inclusive-bounds geometry.
            let (lo, hi) = (f.window_end.saturating_sub(RANGE_MS) + 1, f.window_end);
            let expected: u64 = log
                .iter()
                .filter(|rec| rec.stream == StreamId(0) && rec.batch_ts >= lo && rec.batch_ts <= hi)
                .map(|rec| rec.tuples_shed)
                .sum();
            match f.results.degraded {
                Some(d) => {
                    prop_assert_eq!(
                        d.tuples_shed, expected,
                        "window [{}, {}] marker disagrees with the shed log", lo, hi
                    );
                    prop_assert_eq!(d.windows_affected, 1);
                    prop_assert!(expected > 0, "marker without a shed record");
                }
                None => prop_assert_eq!(
                    expected, 0,
                    "window [{}, {}] lost tuples but carries no marker", lo, hi
                ),
            }
        }
    }
}
