//! Planner invariants, checked over random pattern sets and stores.
//!
//! Three properties pin the guarantees the adaptive layer leans on
//! (DESIGN.md §12):
//!
//! 1. **Well-anchoredness.** Every plan step anchors on a side that is
//!    concrete *at that point in the plan* — a constant or a variable
//!    bound by an earlier step — and falls back to a predicate index
//!    scan only when neither side is concrete. A mis-anchored step
//!    would read an unbound variable at execution time.
//! 2. **Permutation invariance.** The produced plan — step order,
//!    modes, estimates, and therefore `Plan::cost()` — is a pure
//!    function of the *set* of patterns, not of the order they appear
//!    in the query text. The content-based tie-break in the greedy
//!    choice guarantees this; the plan cache and the re-plan
//!    determinism gates both rely on it.
//! 3. **Re-plan transparency.** Forcing a mid-stream re-plan of a
//!    maintained (delta-state) continuous query never changes a single
//!    emitted byte relative to an engine that keeps its original plan —
//!    the switch rebuilds window state behind the scenes.

use proptest::prelude::*;
use std::sync::Arc;
use wukong_core::{EngineConfig, Firing, WukongS};
use wukong_query::ast::{GraphName, Term, TriplePattern};
use wukong_query::exec::ExecContext;
use wukong_query::{plan_patterns, StepMode};
use wukong_rdf::{Pid, StreamId, StringServer, Timestamp, Triple, Vid};
use wukong_store::{BaseStore, SnapshotId};
use wukong_stream::StreamSchema;

const INTERVAL_MS: u64 = 100;

/// SplitMix64 — the same seeded primitive as the differential harness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

struct LocalAccess<'a>(&'a BaseStore);

impl wukong_query::GraphAccess for LocalAccess<'_> {
    fn neighbors(
        &self,
        key: wukong_rdf::Key,
        _src: wukong_query::PatternSource,
        ctx: &ExecContext,
        _timer: &mut wukong_net::TaskTimer,
        out: &mut Vec<Vid>,
    ) {
        self.0.for_each_neighbor(key, ctx.sn, |v| out.push(v));
    }

    fn estimate(
        &self,
        key: wukong_rdf::Key,
        _src: wukong_query::PatternSource,
        ctx: &ExecContext,
    ) -> usize {
        self.0.len_at(key, ctx.sn)
    }
}

const VARS: u8 = 4;

fn arb_triple() -> impl Strategy<Value = Triple> {
    // A small, dense domain so estimates vary and patterns join.
    (1..12u64, 1..4u64, 1..12u64).prop_map(|(s, p, o)| Triple::new(Vid(s), Pid(p), Vid(o)))
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..VARS).prop_map(Term::Var),
        (1..12u64).prop_map(|v| Term::Const(Vid(v))),
    ]
}

fn arb_pattern() -> impl Strategy<Value = TriplePattern> {
    (arb_term(), 1..4u64, arb_term()).prop_map(|(s, p, o)| TriplePattern {
        s,
        p: Pid(p),
        o,
        graph: GraphName::Stored,
    })
}

/// Whether `t` is concrete given the current bound-variable set.
fn concrete(t: Term, bound: &[bool]) -> bool {
    match t {
        Term::Const(_) => true,
        Term::Var(v) => bound[v as usize],
    }
}

/// Seeded Fisher-Yates; deterministic per (patterns, seed).
fn permute(patterns: &[TriplePattern], seed: u64) -> Vec<TriplePattern> {
    let mut rng = Rng(seed);
    let mut out = patterns.to_vec();
    for i in (1..out.len()).rev() {
        out.swap(i, rng.below(i as u64 + 1) as usize);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn plans_are_well_anchored_and_complete(
        triples in proptest::collection::vec(arb_triple(), 0..40),
        patterns in proptest::collection::vec(arb_pattern(), 1..6),
    ) {
        let mut store = BaseStore::new();
        for &t in &triples {
            store.insert_base(t);
        }
        let access = LocalAccess(&store);
        let ctx = ExecContext::stored(SnapshotId::BASE);
        let plan = plan_patterns(&patterns, &vec![false; VARS as usize], &access, &ctx);

        // Every input pattern appears exactly once (plans are a
        // reordering, never a rewrite).
        prop_assert_eq!(plan.steps.len(), patterns.len());
        for p in &patterns {
            let input = patterns.iter().filter(|q| *q == p).count();
            let planned = plan.steps.iter().filter(|s| s.pattern == *p).count();
            prop_assert_eq!(input, planned, "pattern {:?} multiplicity", p);
        }

        // Anchoredness: walk the plan replaying variable bindings.
        let mut bound = vec![false; VARS as usize];
        for (i, step) in plan.steps.iter().enumerate() {
            let s_ok = concrete(step.pattern.s, &bound);
            let o_ok = concrete(step.pattern.o, &bound);
            match step.mode {
                StepMode::FromSubject => {
                    prop_assert!(s_ok, "step {i} anchors an unbound subject: {step:?}")
                }
                StepMode::FromObject => {
                    prop_assert!(o_ok, "step {i} anchors an unbound object: {step:?}")
                }
                StepMode::IndexScan => prop_assert!(
                    !s_ok && !o_ok,
                    "step {i} index-scans despite a concrete side: {step:?}"
                ),
            }
            if let Term::Var(v) = step.pattern.s {
                bound[v as usize] = true;
            }
            if let Term::Var(v) = step.pattern.o {
                bound[v as usize] = true;
            }
        }
    }

    #[test]
    fn plan_and_cost_are_invariant_under_pattern_permutation(
        triples in proptest::collection::vec(arb_triple(), 0..40),
        patterns in proptest::collection::vec(arb_pattern(), 1..6),
        seed in 0..u64::MAX,
    ) {
        let mut store = BaseStore::new();
        for &t in &triples {
            store.insert_base(t);
        }
        let access = LocalAccess(&store);
        let ctx = ExecContext::stored(SnapshotId::BASE);

        let base = plan_patterns(&patterns, &vec![false; VARS as usize], &access, &ctx);
        let shuffled = permute(&patterns, seed);
        let other = plan_patterns(&shuffled, &vec![false; VARS as usize], &access, &ctx);

        // Identical step sequences — modes and estimates included — so
        // the modeled cost is identical too. This is what makes cached
        // plans and re-planned plans comparable across runs.
        prop_assert_eq!(&base, &other, "plan depends on input pattern order");
        prop_assert_eq!(base.cost(), other.cost());
    }
}

// ---------------------------------------------------------------------
// Property 3: forced mid-stream re-plan of a maintained query.
// ---------------------------------------------------------------------

const JOIN_QUERY: &str = "REGISTER QUERY PJ SELECT ?V0 ?V1 ?V2 \
     FROM S [RANGE 300ms STEP 100ms] \
     WHERE { GRAPH S { ?V0 ta0 ?V1 } GRAPH S { ?V2 ta1 ?V1 } }";

/// A seeded join-heavy timeline on one stream: unique triples, so window
/// contents are sets and multiplicities align across engines.
fn timeline(strings: &Arc<StringServer>, seed: u64) -> Vec<(Triple, Timestamp)> {
    let entities: Vec<Vid> = (0..10)
        .map(|i| strings.intern_entity(&format!("e{i}")).expect("interns"))
        .collect();
    let preds: Vec<Pid> = ["ta0", "ta1"]
        .iter()
        .map(|p| strings.intern_predicate(p).expect("interns"))
        .collect();
    let mut rng = Rng(seed);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for _ in 0..80 {
        let t = Triple::new(
            entities[rng.below(10) as usize],
            preds[rng.below(2) as usize],
            entities[rng.below(10) as usize],
        );
        let ts = 1 + rng.below(1_200);
        if seen.insert((t.s, t.p, t.o)) {
            out.push((t, ts));
        }
    }
    out.sort_by_key(|(_, ts)| *ts);
    out
}

/// Runs the maintained join query over the seeded timeline, forcing a
/// re-plan right after the tick `force_at` (None = never re-plan).
fn run_maintained(
    strings: &Arc<StringServer>,
    tl: &[(Triple, Timestamp)],
    force_at: Option<Timestamp>,
) -> (Vec<Firing>, WukongS) {
    // Adaptive drift detection is pinned off (overriding WUKONG_ADAPTIVE)
    // so the only plan switch is the forced one — the property isolates
    // `force_replan` transparency from the detector's own replans.
    let engine = WukongS::with_strings(
        EngineConfig::cluster(2)
            .with_workers(EngineConfig::worker_threads_from_env())
            .with_incremental(true)
            .with_adaptive(false),
        Arc::clone(strings),
    );
    let s = engine.register_stream(StreamSchema::timeless(StreamId(0), "S", INTERVAL_MS));
    let id = engine.register_continuous(JOIN_QUERY).expect("registers");
    let mut fed = 0;
    let mut firings = Vec::new();
    for tick in (INTERVAL_MS..=1_700).step_by(INTERVAL_MS as usize) {
        while fed < tl.len() && tl[fed].1 <= tick {
            engine.ingest(s, tl[fed].0, tl[fed].1);
            fed += 1;
        }
        engine.advance_time(tick);
        firings.extend(engine.fire_ready());
        if force_at == Some(tick) {
            engine.force_replan(id);
        }
    }
    (firings, engine)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn forced_midstream_replan_is_byte_identical_to_never_replanning(
        seed in 1..2_000u64,
        // Force the switch somewhere in the heart of the stream, on a
        // tick boundary, while windows still overlap earlier batches.
        force_slot in 3..12u64,
    ) {
        let strings = Arc::new(StringServer::new());
        let tl = timeline(&strings, seed);
        let force_at = force_slot * INTERVAL_MS;

        let (forced, engine) = run_maintained(&strings, &tl, Some(force_at));
        let (control, _) = run_maintained(&strings, &tl, None);

        prop_assert_eq!(forced.len(), control.len(), "firing counts differ");
        for (f, c) in forced.iter().zip(&control) {
            prop_assert_eq!(f.query, c.query);
            prop_assert_eq!(f.window_end, c.window_end);
            prop_assert_eq!(
                &f.results, &c.results,
                "results differ at window {}", f.window_end
            );
        }
        prop_assert!(
            forced.iter().any(|f| !f.results.rows.is_empty()),
            "workload produced no rows — vacuous"
        );

        // The forced engine really did switch plans and rebuild its
        // delta state (the query fires maintained both before and after).
        let snap = engine.cluster().obs().plan().snapshot();
        prop_assert_eq!(snap.replans, 1);
        prop_assert_eq!(snap.delta_rebuilds, 1);
    }
}
