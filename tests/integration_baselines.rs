//! Cross-engine agreement: every system under comparison must give the
//! same answers on the same workload — otherwise the latency comparisons
//! of Tables 2-4 and 9 would compare different computations.

use std::sync::Arc;
use wukong_baselines::{
    Composite, CompositePlan, CompositeProfile, SparkLike, SparkMode, WukongExt,
};
use wukong_benchdata::{
    citybench, lsbench, CityBench, CityBenchConfig, LsBench, LsBenchConfig, TimedTuple,
};
use wukong_core::{EngineConfig, WukongS};
use wukong_rdf::{StringServer, Triple, Vid};

struct Rig {
    strings: Arc<StringServer>,
    stored: Vec<Triple>,
    timeline: Vec<TimedTuple>,
    duration: u64,
}

fn wukongs(rig: &Rig, schemas: Vec<wukong_stream::StreamSchema>, nodes: usize) -> WukongS {
    let e = WukongS::with_strings(EngineConfig::cluster(nodes), Arc::clone(&rig.strings));
    e.load_base(rig.stored.iter().copied());
    for s in schemas {
        e.register_stream(s);
    }
    for t in &rig.timeline {
        e.ingest(t.stream, t.triple, t.timestamp);
    }
    e.advance_time(rig.duration);
    e
}

fn composite(rig: &Rig, names: &[&str], profile: CompositeProfile) -> Composite {
    let mut c = Composite::new(profile, Arc::clone(&rig.strings));
    c.load_base(rig.stored.iter().copied());
    for n in names {
        c.register_stream(*n);
    }
    for t in &rig.timeline {
        c.ingest(t.stream, t.triple, t.timestamp);
    }
    c
}

fn spark(rig: &Rig, names: &[&str], mode: SparkMode) -> SparkLike {
    let mut s = SparkLike::new(mode, Arc::clone(&rig.strings));
    s.load_base(rig.stored.iter().copied());
    for n in names {
        s.register_stream(*n);
    }
    for t in &rig.timeline {
        s.ingest(t.stream, t.triple, t.timestamp);
    }
    s
}

fn sorted(mut rows: Vec<Vec<Vid>>) -> Vec<Vec<Vid>> {
    rows.sort();
    rows
}

/// The engine window [hi-range+1, hi] filters by *batch* timestamp; the
/// relational baselines buffer raw tuples. Aligning `now` to a batch
/// boundary makes both views identical.
#[test]
fn lsbench_all_engines_agree() {
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(LsBenchConfig::tiny(), Arc::clone(&strings));
    let rig = Rig {
        stored: gen.stored_triples(),
        timeline: gen.generate(0, 1_500),
        duration: 1_500,
        strings,
    };
    let names = ["PO", "PO-L", "PH", "PH-L", "GPS"];

    let engine = wukongs(&rig, gen.schemas(), 4);
    let mut storm = composite(&rig, &names, CompositeProfile::storm_wukong(1));
    let mut csparql = composite(&rig, &names, CompositeProfile::csparql());
    let mut micro = spark(&rig, &names, SparkMode::MicroBatch);
    let mut ext = WukongExt::new(2, Arc::clone(&rig.strings));
    ext.load_base(rig.stored.iter().copied());
    for n in &names {
        ext.register_stream(*n);
    }
    for t in &rig.timeline {
        ext.ingest(t.stream, t.triple, t.timestamp);
    }

    for class in 1..=lsbench::CONTINUOUS_CLASSES {
        let text = lsbench::continuous_query(&gen, class, 0);
        let wid = engine.register_continuous(&text).expect("wukong+s");
        let sid = storm.register_continuous(&text).expect("storm");
        let cid = csparql.register_continuous(&text).expect("csparql");
        let mid = micro.register_continuous(&text).expect("spark");
        let eid = ext.register_continuous(&text).expect("ext");

        let reference = sorted(engine.execute_registered(wid).0.rows);
        // L6's stored pattern (`?X po ?Z` on X-Lab) touches data the
        // streams *absorbed into* the store. Wukong+S (and Wukong/Ext)
        // see it; the composite and Spark baselines query a static
        // stored dataset — the §2.3 "not completely stateful" gap. The
        // stateless engines must return exactly the subset of the
        // reference whose answers need no absorbed data.
        let check = |got: Vec<Vec<Vid>>, who: &str| {
            if class == 6 {
                assert!(
                    got.iter().all(|r| reference.contains(r)),
                    "{who} invented rows on L{class}"
                );
                assert!(
                    got.len() < reference.len(),
                    "{who} should miss absorbed-data rows on L{class}"
                );
            } else {
                assert_eq!(got, reference, "{who} disagrees on L{class}");
            }
        };
        check(
            sorted(
                storm
                    .execute(sid, rig.duration, CompositePlan::Interleaved)
                    .0
                    .rows,
            ),
            "Storm+Wukong",
        );
        check(
            sorted(
                storm
                    .execute(sid, rig.duration, CompositePlan::StreamFirst)
                    .0
                    .rows,
            ),
            "Storm+Wukong plan (b)",
        );
        check(
            sorted(
                csparql
                    .execute(cid, rig.duration, CompositePlan::Interleaved)
                    .0
                    .rows,
            ),
            "CSPARQL",
        );
        check(sorted(micro.execute(mid, rig.duration).0.rows), "Spark");
        // Wukong/Ext absorbs stream data too: full agreement everywhere.
        let got = sorted(ext.execute(eid, rig.duration).0.rows);
        assert_eq!(got, reference, "Wukong/Ext disagrees on L{class}");
    }
}

#[test]
fn citybench_engines_agree() {
    let strings = Arc::new(StringServer::new());
    let mut gen = CityBench::new(CityBenchConfig::default(), Arc::clone(&strings));
    let rig = Rig {
        stored: gen.stored_triples(),
        timeline: gen.generate(0, 6_000),
        duration: 6_000,
        strings,
    };
    let names = [
        "VT1", "VT2", "WT", "UL", "PK1", "PK2", "PL1", "PL2", "PL3", "PL4", "PL5",
    ];

    let engine = wukongs(&rig, gen.schemas(), 1);
    let mut storm = composite(&rig, &names, CompositeProfile::storm_wukong(1));
    let mut micro = spark(&rig, &names, SparkMode::MicroBatch);

    for class in 1..=citybench::CONTINUOUS_CLASSES {
        let text = citybench::continuous_query(&gen, class, 0);
        let wid = engine.register_continuous(&text).expect("wukong+s");
        let sid = storm.register_continuous(&text).expect("storm");
        let mid = micro.register_continuous(&text).expect("spark");

        let reference = sorted(engine.execute_registered(wid).0.rows);
        let got = sorted(
            storm
                .execute(sid, rig.duration, CompositePlan::Interleaved)
                .0
                .rows,
        );
        assert_eq!(got, reference, "Storm+Wukong disagrees on C{class}");
        let got = sorted(micro.execute(mid, rig.duration).0.rows);
        assert_eq!(got, reference, "Spark disagrees on C{class}");
    }
}

#[test]
fn structured_supports_exactly_group_one() {
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(LsBenchConfig::tiny(), Arc::clone(&strings));
    let rig = Rig {
        stored: gen.stored_triples(),
        timeline: gen.generate(0, 1_000),
        duration: 1_000,
        strings,
    };
    let names = ["PO", "PO-L", "PH", "PH-L", "GPS"];
    let mut structured = spark(&rig, &names, SparkMode::Structured);
    for class in 1..=lsbench::CONTINUOUS_CLASSES {
        let res = structured.register_continuous(&lsbench::continuous_query(&gen, class, 0));
        if class <= 3 {
            assert!(res.is_ok(), "Structured must support L{class}");
        } else {
            assert!(
                res.is_err(),
                "Structured must reject L{class} (Table 4's x)"
            );
        }
    }
}

#[test]
fn aggregates_agree_across_engines() {
    // C6 (AVG over a parking lot's vacancy readings) must compute the
    // same value on every engine.
    let strings = Arc::new(StringServer::new());
    let mut gen = CityBench::new(CityBenchConfig::default(), Arc::clone(&strings));
    let rig = Rig {
        stored: gen.stored_triples(),
        timeline: gen.generate(0, 30_000),
        duration: 30_000,
        strings,
    };
    let names = [
        "VT1", "VT2", "WT", "UL", "PK1", "PK2", "PL1", "PL2", "PL3", "PL4", "PL5",
    ];
    let engine = wukongs(&rig, gen.schemas(), 1);
    let mut storm = composite(&rig, &names, CompositeProfile::storm_wukong(1));
    let mut micro = spark(&rig, &names, SparkMode::MicroBatch);

    let text = citybench::continuous_query(&gen, 6, 0);
    let wid = engine.register_continuous(&text).expect("wukong+s");
    let sid = storm.register_continuous(&text).expect("storm");
    let mid = micro.register_continuous(&text).expect("spark");

    let (rs, _) = engine.execute_registered(wid);
    let reference = rs.aggregates.clone();
    assert_eq!(reference.len(), 1, "C6 has one AVG aggregate");
    let (_, aggs, _) = storm.execute_full(sid, rig.duration, CompositePlan::Interleaved);
    assert_eq!(aggs, reference, "composite AVG disagrees");
    let (_, aggs, _) = micro.execute_full(mid, rig.duration);
    assert_eq!(aggs, reference, "spark AVG disagrees");
    // With a 30 s run the 3 s window should usually hold readings.
    if let Some(v) = reference[0] {
        assert!((0.0..60.0).contains(&v), "implausible AVG {v}");
    }
}
