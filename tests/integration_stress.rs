//! Concurrency stress: the paper's deployments serve "millions of
//! concurrent queries" over shared state — worker threads must be able to
//! execute continuous and one-shot queries *while* the pipeline ingests,
//! GCs, checkpoints, and consolidates snapshots, without panics, deadlocks
//! or torn reads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wukong_benchdata::{lsbench, LsBench, LsBenchConfig};
use wukong_core::{EngineConfig, WukongS};
use wukong_rdf::StringServer;

#[test]
fn concurrent_queries_during_ingestion() {
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(LsBenchConfig::tiny(), Arc::clone(&strings));
    let engine = Arc::new(WukongS::with_strings(
        EngineConfig {
            fault_tolerance: true,
            gc_every_batches: 8,
            ..EngineConfig::cluster(3)
        },
        Arc::clone(&strings),
    ));
    engine.load_base(gen.stored_triples());
    for s in gen.schemas() {
        engine.register_stream(s);
    }
    // Pre-register a query per class so workers have work immediately.
    let ids: Vec<usize> = (1..=lsbench::CONTINUOUS_CLASSES)
        .map(|c| {
            engine
                .register_continuous(&lsbench::continuous_query(&gen, c, 0))
                .expect("register")
        })
        .collect();
    let timeline = gen.generate(0, 4_000);
    let oneshot_text = lsbench::oneshot_query(&gen, 3, 0);

    let stop = Arc::new(AtomicBool::new(false));
    let executed = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        // Ingestion thread: drives the whole timeline with checkpoints.
        {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let timeline = &timeline;
            scope.spawn(move || {
                for (i, t) in timeline.iter().enumerate() {
                    engine.ingest(t.stream, t.triple, t.timestamp);
                    if i % 500 == 499 {
                        engine.checkpoint();
                    }
                }
                engine.advance_time(4_000);
                stop.store(true, Ordering::Relaxed);
            });
        }
        // Continuous-query workers.
        for w in 0..2 {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let executed = Arc::clone(&executed);
            let ids = ids.clone();
            scope.spawn(move || {
                // On a single-core host the ingestion thread may finish
                // before the scheduler runs us; keep going for a minimum
                // number of iterations so the overlap window is real on
                // multi-core hosts and the invariants still get checked
                // on single-core ones.
                let mut i = w;
                while !stop.load(Ordering::Relaxed) || i < w + 40 {
                    let (rs, ms) = engine.execute_registered(ids[i % ids.len()]);
                    assert!(ms >= 0.0);
                    // Rows must be fully-bound projections (no torn reads
                    // surfacing the UNBOUND sentinel).
                    for row in &rs.rows {
                        assert!(row.iter().all(|v| v.0 != u64::MAX));
                    }
                    executed.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        // One-shot worker.
        {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let executed = Arc::clone(&executed);
            let text = oneshot_text.clone();
            scope.spawn(move || {
                let mut last_len = 0usize;
                let mut n = 0;
                while !stop.load(Ordering::Relaxed) || n < 40 {
                    n += 1;
                    let rs = match engine.one_shot(&text) {
                        Ok((rs, _)) => rs,
                        // Admission control turns one-shots away while the
                        // engine sheds — only reachable when the suite runs
                        // with WUKONG_INGEST_BUDGET exported (ci.sh matrix).
                        Err(wukong_query::QueryError::Overloaded(_)) => continue,
                        Err(e) => panic!("one-shot failed: {e}"),
                    };
                    // The stored graph only grows: a one-shot's result for
                    // this monotone query never shrinks.
                    assert!(
                        rs.rows.len() >= last_len,
                        "snapshot went backwards: {} -> {}",
                        last_len,
                        rs.rows.len()
                    );
                    last_len = rs.rows.len();
                    executed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    assert!(
        executed.load(Ordering::Relaxed) > 50,
        "workers barely ran: {}",
        executed.load(Ordering::Relaxed)
    );
    // The deployment is still coherent afterwards.
    let stats = engine.stats();
    assert_eq!(stats.streams, 5);
    assert!(stats.stable_sn.0 >= 30);
    let firings = engine.fire_ready();
    assert!(!firings.is_empty(), "windows accumulated during the run");
}

/// Everything the shedder decides — which batches lose tuples, how many,
/// and which firings carry `degraded` markers — must be a pure function
/// of (workload, seed, budget). Re-running the identical overload and
/// changing only the worker-pool width may not move a single byte of it.
#[test]
fn overload_shedding_is_deterministic() {
    use wukong_bench::{ls_workload_seeded, Scale};
    use wukong_stream::{IngestBudget, ShedPolicy, ShedRecord};

    let w = ls_workload_seeded(Scale::Tiny, 7);
    // A 4x spike over the middle third of the timeline.
    let (from, until) = (w.duration / 3, 2 * w.duration / 3);
    let mut timeline = Vec::new();
    for t in &w.timeline {
        let copies = if t.timestamp >= from && t.timestamp < until {
            4
        } else {
            1
        };
        for _ in 0..copies {
            timeline.push(*t);
        }
    }

    type Markers = Vec<(usize, u64, u64, u32)>;
    let run = |workers: usize, policy: ShedPolicy| -> (Vec<ShedRecord>, Markers, u64) {
        let mut cfg = wukong_core::EngineConfig::cluster(2)
            .with_ingest_budget(Some(IngestBudget::tuples(12)))
            .with_shed_policy(policy)
            .with_workers(workers);
        // Shed decisions never read the wall clock; exclude the
        // (wall-clock) latency trip so the assertion is exact.
        cfg.overload.latency_budget_ms = 1e9;
        cfg.overload.catchup_quiet_ms = 300;
        let engine = WukongS::with_strings(cfg, Arc::clone(&w.strings));
        engine.load_base(w.stored.iter().copied());
        for s in w.schemas() {
            engine.register_stream(s);
        }
        for c in 1..=3 {
            engine
                .register_continuous(&lsbench::continuous_query(&w.bench, c, 0))
                .expect("register");
        }
        let mut markers = Markers::new();
        for (i, t) in timeline.iter().enumerate() {
            engine.ingest(t.stream, t.triple, t.timestamp);
            if i % 64 == 63 {
                for f in engine.fire_ready() {
                    if let Some(d) = f.results.degraded {
                        markers.push((f.query, f.window_end, d.tuples_shed, d.windows_affected));
                    }
                }
            }
        }
        engine.advance_time(w.duration);
        for f in engine.fire_ready() {
            if let Some(d) = f.results.degraded {
                markers.push((f.query, f.window_end, d.tuples_shed, d.windows_affected));
            }
        }
        (engine.shed_log(), markers, engine.total_shed())
    };

    for policy in [ShedPolicy::DropOldestWindow, ShedPolicy::SampleWithinBatch] {
        let (log_a, markers_a, shed_a) = run(1, policy);
        assert!(shed_a > 0, "{policy:?}: the spike must overflow the budget");
        assert!(
            !markers_a.is_empty(),
            "{policy:?}: shed windows must mark their firings"
        );
        // Same seed, same spike => byte-identical decisions...
        let (log_b, markers_b, shed_b) = run(1, policy);
        assert_eq!(log_a, log_b, "{policy:?}: shed log differs across runs");
        assert_eq!(
            markers_a, markers_b,
            "{policy:?}: markers differ across runs"
        );
        assert_eq!(shed_a, shed_b);
        // ...and the worker-pool width is invisible to all of it.
        let (log_w, markers_w, shed_w) = run(4, policy);
        assert_eq!(log_a, log_w, "{policy:?}: shed log depends on workers");
        assert_eq!(
            markers_a, markers_w,
            "{policy:?}: markers depend on workers"
        );
        assert_eq!(shed_a, shed_w);
    }
}
