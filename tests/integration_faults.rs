//! Fault injection end to end: node kills, lossy links, at-least-once
//! replay, and deterministic fault sequences (§5 + the fault fabric).

use std::collections::BTreeMap;
use std::sync::Arc;
use wukong_benchdata::{lsbench, LsBench, LsBenchConfig, TimedTuple};
use wukong_core::{EngineConfig, ExecMode, Firing, RecoveryManager, WukongS};
use wukong_net::{FaultEvent, FaultPlan, NodeId};
use wukong_obs::FaultSnapshot;
use wukong_rdf::{StreamId, StringServer, Vid};
use wukong_stream::StreamSchema;

type FiringMap = BTreeMap<(usize, u64), Vec<Vec<Vid>>>;

/// Folds firings into `(query, window_end) → sorted rows`, asserting that
/// an at-least-once repeat is row-identical.
fn collect(firings: Vec<Firing>, into: &mut FiringMap) {
    for f in firings {
        let mut rows = f.results.rows;
        rows.sort();
        if let Some(prev) = into.insert((f.query, f.window_end), rows.clone()) {
            assert_eq!(prev, rows, "re-fired window changed its rows");
        }
    }
}

struct Fixture {
    strings: Arc<StringServer>,
    gen: LsBench,
    stored: Vec<wukong_rdf::Triple>,
    schemas: Vec<StreamSchema>,
    timeline: Vec<TimedTuple>,
}

fn fixture() -> Fixture {
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(LsBenchConfig::tiny(), Arc::clone(&strings));
    let stored = gen.stored_triples();
    let schemas = gen.schemas();
    let timeline = gen.generate(0, 2_000);
    Fixture {
        strings,
        gen,
        stored,
        schemas,
        timeline,
    }
}

fn boot(fx: &Fixture, cfg: EngineConfig) -> WukongS {
    let engine = WukongS::with_strings(cfg, Arc::clone(&fx.strings));
    engine.load_base(fx.stored.iter().copied());
    for s in fx.schemas.clone() {
        engine.register_stream(s);
    }
    for c in 1..=3 {
        engine
            .register_continuous(&lsbench::continuous_query(&fx.gen, c, 0))
            .expect("register");
    }
    engine
}

fn feed_and_fire(fx: &Fixture, engine: &WukongS) -> FiringMap {
    for t in &fx.timeline {
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(2_000);
    let mut map = FiringMap::new();
    collect(engine.fire_ready(), &mut map);
    map
}

/// The acceptance drill: kill a node mid-stream, crash, replay
/// checkpoint+log into a fresh engine — the union of pre-crash and
/// post-recovery firings must equal a never-failed control run's.
#[test]
fn kill_drill_recovers_to_control_equality() {
    let fx = fixture();
    let base = EngineConfig {
        fault_tolerance: true,
        ..EngineConfig::cluster(3)
    };

    let control_engine = boot(&fx, base.clone());
    let control = feed_and_fire(&fx, &control_engine);
    assert!(!control.is_empty(), "control run must fire");

    let cfg = EngineConfig {
        fault_plan: Some(FaultPlan::seeded(11).kill_at(NodeId(1), 1_000)),
        ..base
    };
    let mgr = RecoveryManager::new(
        cfg.clone(),
        fx.stored.clone(),
        fx.schemas.clone(),
        Arc::clone(&fx.strings),
    );
    let engine = boot(&fx, cfg);
    let mut fired = FiringMap::new();
    let mut fired_pre_kill = false;
    let mut checkpointed = false;
    for t in &fx.timeline {
        if !fired_pre_kill && t.timestamp >= 1_000 {
            // Last fully-live moment (the kill lands on the next tick).
            collect(engine.fire_ready(), &mut fired);
            fired_pre_kill = true;
        }
        if !checkpointed && t.timestamp >= 500 {
            engine.checkpoint();
            checkpointed = true;
        }
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(2_000);
    // The dead node's local VTS pins the stable VTS below the horizon.
    assert!(
        engine.stable_ts(StreamId(0)) < 2_000,
        "a dead node must stall visibility"
    );
    let wounded = engine.handle().fault_counters();
    assert_eq!(wounded.node_kills, 1);

    let (recovered, report) = mgr.drill(&engine, NodeId(1)).expect("recovery");
    collect(recovered.fire_ready(), &mut fired);

    assert_eq!(
        fired, control,
        "recovered firings diverged from the control run"
    );
    assert!(report.replayed_batches > 0);
    assert_eq!(report.replayed_queries, 3);
    assert_eq!(recovered.handle().fault_counters().recoveries, 1);
    assert_eq!(recovered.stable_ts(StreamId(0)), 2_000);
}

/// ≥ 1% drop probability plus duplication on every link: the
/// at-least-once dispatch layer retransmits every dropped sub-batch and
/// suppresses every duplicate, so no firing is lost and none changes.
#[test]
fn lossy_links_preserve_firings_and_dedup() {
    let fx = fixture();
    // In-place execution keeps query reads off the lossy RPC path; the
    // test isolates the dispatch pipeline's at-least-once machinery.
    let base = EngineConfig {
        exec_mode: ExecMode::InPlace,
        ..EngineConfig::cluster(3)
    };
    let control_engine = boot(&fx, base.clone());
    let control = feed_and_fire(&fx, &control_engine);

    let lossy_cfg = EngineConfig {
        fault_plan: Some(FaultPlan::seeded(5).lossy(0.2, 0.2)),
        ..base
    };
    let engine = boot(&fx, lossy_cfg);
    let lossy = feed_and_fire(&fx, &engine);

    assert_eq!(lossy, control, "lossy links must not lose or alter firings");
    let c = engine.handle().fault_counters();
    assert!(c.msgs_dropped > 0, "plan must actually drop: {c:?}");
    assert!(c.retransmits > 0, "drops must be retransmitted: {c:?}");
    assert!(c.msgs_duplicated > 0, "plan must actually duplicate: {c:?}");
    assert!(
        c.dedup_suppressed > 0,
        "duplicates must be suppressed: {c:?}"
    );
    assert_eq!(c.node_kills, 0);
}

fn faulty_run(seed: u64) -> (Vec<FaultEvent>, FaultSnapshot, FiringMap) {
    let fx = fixture();
    let cfg = EngineConfig {
        exec_mode: ExecMode::InPlace,
        fault_plan: Some(
            FaultPlan::seeded(seed)
                .lossy(0.25, 0.15)
                .kill_at(NodeId(2), 1_500),
        ),
        ..EngineConfig::cluster(3)
    };
    let engine = boot(&fx, cfg);
    let map = feed_and_fire(&fx, &engine);
    (
        engine.cluster().fabric().fault_log(),
        engine.handle().fault_counters(),
        map,
    )
}

/// The whole fault fabric is a pure function of the seed: same seed +
/// same plan → identical fault sequences, counters, and result sets.
#[test]
fn same_seed_fault_runs_are_identical() {
    let (log_a, counters_a, map_a) = faulty_run(9);
    let (log_b, counters_b, map_b) = faulty_run(9);
    assert_eq!(log_a, log_b, "fault sequences must be deterministic");
    assert_eq!(counters_a, counters_b);
    assert_eq!(map_a, map_b);
    assert!(log_a.iter().any(|e| matches!(e, FaultEvent::Killed { .. })));

    let (log_c, _, _) = faulty_run(10);
    assert_ne!(log_a, log_c, "different seeds must draw different faults");
}

/// A kill stalls the stable VTS, and a bare restart cannot unstall it:
/// the batches consumed during the outage are gone from the pipeline, so
/// the in-flight snapshot plan never retires. Only recovery — replaying
/// the durable log into a fresh engine — resumes visibility.
#[test]
fn dead_node_stalls_visibility_until_recovery() {
    use wukong_rdf::ntriples;
    let schema = StreamSchema::timeless(StreamId(0), "PO", 100);
    let cfg = EngineConfig {
        fault_tolerance: true,
        fault_plan: Some(
            FaultPlan::seeded(3)
                .kill_at(NodeId(1), 600)
                .restart_at(NodeId(1), 1_200),
        ),
        ..EngineConfig::cluster(2)
    };
    let engine = WukongS::new(cfg.clone());
    let ss = engine.strings().clone();
    let mgr = RecoveryManager::new(cfg, Vec::new(), vec![schema.clone()], Arc::clone(&ss));
    let po = engine.register_stream(schema);
    for i in 0..11u64 {
        let line = format!("u{i} po T-{i} {}", i * 100 + 50);
        let t = ntriples::parse_tuple(&ss, &line, 1).expect("tuple");
        engine.ingest(po, t.triple, t.timestamp);
    }
    engine.advance_time(1_100);
    assert!(
        engine.stable_ts(po) < 1_100,
        "outage must stall the stable VTS, got {}",
        engine.stable_ts(po)
    );
    engine.advance_time(2_000);
    assert!(
        engine.stable_ts(po) < 1_100,
        "a restart alone must not resurrect batches lost mid-outage, got {}",
        engine.stable_ts(po)
    );
    let c = engine.handle().fault_counters();
    assert_eq!(c.node_kills, 1);
    assert_eq!(c.node_restarts, 1);

    // Replaying the durable log into a fresh engine is what resumes.
    let (recovered, report) = mgr.recover(&mgr.durable_state(&engine)).expect("recovery");
    assert_eq!(recovered.stable_ts(po), 2_000);
    assert!(report.replayed_batches > 0);
}
