//! Four-way differential oracle: the recompute engine, the incremental
//! (delta-maintenance) engine, the adaptive engine (plan cache +
//! cardinality feedback + cost-model mode selection), and a naive
//! relational re-evaluation.
//!
//! Seeded generators produce random stored graphs, stream timelines, and
//! conjunctive continuous queries; the workload runs through the full
//! engine **four times** — recomputing every firing from scratch, with
//! `EngineConfig::incremental` maintaining per-query window state, and
//! both again with `EngineConfig::adaptive` re-planning on drift — and
//! every firing sequence must agree with the static recompute run *byte
//! for byte* (same firing order, same unsorted rows, same aggregates).
//! The recompute run is then re-checked against
//! `wukong_baselines::TripleTable` — scans and hash joins over the
//! stored triples plus the per-stream window contents. The
//! implementations share nothing beyond the parser, so agreement on
//! every (query, window_end) pair is strong evidence that every
//! execution path preserves the engine's semantics.
//!
//! The generated window geometry sweeps the overlap regimes that stress
//! delta maintenance differently: tumbling windows (range == step, no
//! survivors), deep overlap (range up to 4× the batch interval), and
//! disjoint slides (step > range, everything retracted).
//!
//! On divergence the test shrinks the failing workload to the *minimal
//! stream prefix* that still diverges and reports the full scenario
//! (queries, stored graph, surviving tuples) so the failure is
//! reproducible by hand — for engine-vs-oracle and incremental-vs-
//! recompute divergences alike.
//!
//! Time model caveat: the Adaptor stamps each mini-batch with the *end*
//! of its interval, so a tuple ingested at raw time `ts` becomes visible
//! to windows at `ceil(ts / interval) * interval`. The oracle windows on
//! that batched timestamp, exactly like the engine does.

use std::sync::Arc;
use wukong_baselines::relational::{hash_join, scan_pattern};
use wukong_baselines::{Relation, TripleTable};
use wukong_core::{EngineConfig, Firing, WukongS};
use wukong_query::ast::{GraphName, Query};
use wukong_query::parse_query;
use wukong_rdf::{Pid, StreamId, StringServer, Timestamp, Triple, Vid};
use wukong_stream::StreamSchema;

/// Mini-batch interval shared by every generated stream, ms.
const INTERVAL_MS: u64 = 100;
/// Latest raw tuple timestamp the generator emits.
const MAX_TS: Timestamp = 1_000;

// ---------------------------------------------------------------------
// Deterministic generator (SplitMix64, same primitive as the proptest
// shim, so a seed printed by a failure reproduces the exact workload).
// ---------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

/// One generated workload: a stored graph, two streams with disjoint
/// predicate alphabets, a tuple timeline, and conjunctive queries.
struct Scenario {
    strings: Arc<StringServer>,
    stored: Vec<Triple>,
    /// `(stream index 0/1, triple, raw timestamp)`, time-ordered.
    timeline: Vec<(usize, Triple, Timestamp)>,
    queries: Vec<String>,
    /// Largest RANGE over all queries (drives the flush horizon).
    max_range_ms: u64,
}

const STREAM_NAMES: [&str; 2] = ["SA", "SB"];

fn generate(seed: u64) -> Scenario {
    let mut rng = Rng(seed);
    let strings = Arc::new(StringServer::new());

    let entities: Vec<Vid> = (0..12)
        .map(|i| strings.intern_entity(&format!("e{i}")).expect("interns"))
        .collect();
    let stored_preds: Vec<Pid> = (0..3)
        .map(|i| {
            strings
                .intern_predicate(&format!("sp{i}"))
                .expect("interns")
        })
        .collect();
    // Each stream gets its own predicate alphabet, disjoint from the
    // stored one, so a pattern's matches can only come from the graph it
    // names — the oracle relies on that separation.
    let stream_preds: Vec<Vec<Pid>> = ["ta", "tb"]
        .iter()
        .map(|base| {
            (0..2)
                .map(|i| {
                    strings
                        .intern_predicate(&format!("{base}{i}"))
                        .expect("interns")
                })
                .collect()
        })
        .collect();

    let mut seen = std::collections::HashSet::new();
    let mut stored = Vec::new();
    for _ in 0..30 {
        let t = Triple::new(
            entities[rng.below(entities.len() as u64) as usize],
            stored_preds[rng.below(3) as usize],
            entities[rng.below(entities.len() as u64) as usize],
        );
        if seen.insert((t.s, t.p, t.o)) {
            stored.push(t);
        }
    }

    // The timeline: every triple is globally unique (across streams and
    // the stored graph, thanks to the predicate split), so window
    // contents are sets and row multiplicities stay trivially aligned
    // between the engine and the oracle.
    let mut timeline = Vec::new();
    for _ in 0..60 {
        let stream = rng.below(2) as usize;
        let t = Triple::new(
            entities[rng.below(entities.len() as u64) as usize],
            stream_preds[stream][rng.below(2) as usize],
            entities[rng.below(entities.len() as u64) as usize],
        );
        let ts = 1 + rng.below(MAX_TS);
        if seen.insert((t.s, t.p, t.o)) {
            timeline.push((stream, t, ts));
        }
    }
    timeline.sort_by_key(|(_, _, ts)| *ts);

    let mut queries = Vec::new();
    let mut max_range_ms = 0;
    for qi in 0..3 {
        let both = rng.chance(50);
        let used: Vec<usize> = if both {
            vec![0, 1]
        } else {
            vec![rng.below(2) as usize]
        };
        let step = [100u64, 200][rng.below(2) as usize];
        let ranges: Vec<u64> = used.iter().map(|_| 100 * (1 + rng.below(4))).collect();
        max_range_ms = max_range_ms.max(*ranges.iter().max().expect("non-empty"));

        // Patterns: one per used stream, plus up to two extra (stream or
        // stored). Variables chain through earlier ones often enough for
        // real joins; fresh variables and constants exercise index scans
        // and cartesian joins.
        let mut vars = 0u64;
        let fresh = |vars: &mut u64| {
            let v = *vars;
            *vars += 1;
            format!("?V{v}")
        };
        let subject = |rng: &mut Rng, vars: &mut u64| {
            if *vars > 0 && rng.chance(60) {
                format!("?V{}", rng.below(*vars))
            } else if rng.chance(30) {
                format!("e{}", rng.below(12))
            } else {
                fresh(vars)
            }
        };
        let mut body = Vec::new();
        let extra = rng.below(3);
        for k in 0..used.len() as u64 + extra {
            let graph = if (k as usize) < used.len() {
                Some(used[k as usize])
            } else if rng.chance(50) {
                Some(used[rng.below(used.len() as u64) as usize])
            } else {
                None
            };
            let s = subject(&mut rng, &mut vars);
            let o = if rng.chance(25) {
                format!("e{}", rng.below(12))
            } else {
                fresh(&mut vars)
            };
            match graph {
                Some(g) => {
                    let p = format!("t{}{}", ["a", "b"][g], rng.below(2));
                    body.push(format!("GRAPH {} {{ {s} {p} {o} }}", STREAM_NAMES[g]));
                }
                None => body.push(format!("{s} sp{} {o}", rng.below(3))),
            }
        }
        if vars == 0 {
            // All-constant bodies have nothing to SELECT; anchor one var.
            body.push(format!("e0 sp0 {}", fresh(&mut vars)));
        }

        let select: Vec<String> = (0..vars).map(|v| format!("?V{v}")).collect();
        let from: Vec<String> = used
            .iter()
            .zip(&ranges)
            .map(|(g, r)| format!("FROM {} [RANGE {r}ms STEP {step}ms]", STREAM_NAMES[*g]))
            .collect();
        queries.push(format!(
            "REGISTER QUERY D{qi} SELECT {} {} WHERE {{ {} }}",
            select.join(" "),
            from.join(" "),
            body.join(" ")
        ));
    }

    Scenario {
        strings,
        stored,
        timeline,
        queries,
        max_range_ms,
    }
}

// ---------------------------------------------------------------------
// Oracle: relational re-evaluation of one firing.
// ---------------------------------------------------------------------

/// The batched timestamp a raw tuple becomes visible at (Adaptor seals
/// mini-batches at interval ends).
fn batched(ts: Timestamp) -> Timestamp {
    ts.div_ceil(INTERVAL_MS) * INTERVAL_MS
}

/// Evaluates `q` over the stored table and the window contents ending at
/// `window_end`, returning rows projected in SELECT order, sorted.
fn oracle_rows(
    q: &Query,
    stored: &TripleTable,
    timeline: &[(usize, Triple, Timestamp)],
    window_end: Timestamp,
) -> Vec<Vec<Vid>> {
    let mut acc = Relation::unit();
    for pat in &q.patterns {
        let rel = match pat.graph {
            GraphName::Stored => stored.scan(pat).0,
            GraphName::Stream(i) => {
                let name = &q.streams[i].0;
                let range = q.streams[i].1.range_ms;
                let lo = window_end.saturating_sub(range) + 1;
                let in_window: Vec<Triple> = timeline
                    .iter()
                    .filter(|(s, _, ts)| {
                        STREAM_NAMES[*s] == name && (lo..=window_end).contains(&batched(*ts))
                    })
                    .map(|(_, t, _)| *t)
                    .collect();
                scan_pattern(in_window.iter(), pat)
            }
        };
        acc = hash_join(&acc, &rel);
        if acc.is_empty() {
            break;
        }
    }
    let mut rows: Vec<Vec<Vid>> = acc
        .rows
        .iter()
        .map(|row| {
            q.select
                .iter()
                .map(|v| {
                    let col = acc
                        .vars
                        .iter()
                        .position(|x| x == v)
                        .expect("selected var bound");
                    row[col]
                })
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

// ---------------------------------------------------------------------
// Driver + shrinking.
// ---------------------------------------------------------------------

struct Divergence {
    /// Which pair of the four implementations disagreed.
    kind: &'static str,
    query: usize,
    window_end: Timestamp,
    engine_rows: Vec<Vec<Vid>>,
    oracle_rows: Vec<Vec<Vid>>,
}

/// Runs the first `prefix` timeline tuples through a fresh engine
/// (delta-maintained or recomputing per `incremental`, re-planning on
/// drift per `adaptive`) and returns the firing sequence plus the
/// registered query IDs.
fn run_engine(
    sc: &Scenario,
    workers: usize,
    prefix: usize,
    incremental: bool,
    adaptive: bool,
) -> (Vec<Firing>, Vec<usize>) {
    let engine = WukongS::with_strings(
        EngineConfig::cluster(3)
            .with_workers(workers)
            .with_incremental(incremental)
            .with_adaptive(adaptive),
        Arc::clone(&sc.strings),
    );
    engine.load_base(sc.stored.iter().copied());
    let streams: Vec<StreamId> = STREAM_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| {
            engine.register_stream(StreamSchema::timeless(
                StreamId(i as u16),
                *name,
                INTERVAL_MS,
            ))
        })
        .collect();
    let ids: Vec<usize> = sc
        .queries
        .iter()
        .map(|text| engine.register_continuous(text).expect("registers"))
        .collect();

    let timeline = &sc.timeline[..prefix];
    let mut fed = 0;
    let mut firings: Vec<Firing> = Vec::new();
    let horizon = MAX_TS + sc.max_range_ms + 200;
    for tick in (INTERVAL_MS..=horizon).step_by(INTERVAL_MS as usize) {
        while fed < timeline.len() && timeline[fed].2 <= tick {
            let (stream, triple, ts) = timeline[fed];
            engine.ingest(streams[stream], triple, ts);
            fed += 1;
        }
        engine.advance_time(tick);
        firings.extend(engine.fire_ready());
    }
    (firings, ids)
}

/// Compares a candidate firing sequence byte-for-byte against the static
/// recompute baseline — same firing order, same unsorted row order, same
/// aggregates and variable names.
fn compare_firings(
    kind: &'static str,
    baseline: &[Firing],
    candidate: &[Firing],
    ids: &[usize],
) -> Result<(), Box<Divergence>> {
    let qi_of = |f: &Firing| ids.iter().position(|id| *id == f.query).expect("known");
    if baseline.len() != candidate.len() {
        let (f, rows_base, rows_cand) = if candidate.len() > baseline.len() {
            let f = &candidate[baseline.len()];
            (f, Vec::new(), f.results.rows.clone())
        } else {
            let f = &baseline[candidate.len()];
            (f, f.results.rows.clone(), Vec::new())
        };
        return Err(Box::new(Divergence {
            kind,
            query: qi_of(f),
            window_end: f.window_end,
            engine_rows: rows_cand,
            oracle_rows: rows_base,
        }));
    }
    for (base, cand) in baseline.iter().zip(candidate) {
        if base.query != cand.query
            || base.window_end != cand.window_end
            || base.results != cand.results
        {
            return Err(Box::new(Divergence {
                kind,
                query: qi_of(base),
                window_end: base.window_end,
                engine_rows: cand.results.rows.clone(),
                oracle_rows: base.results.rows.clone(),
            }));
        }
    }
    Ok(())
}

/// Runs the first `prefix` timeline tuples through all four engine modes
/// and cross-checks every firing: incremental ≡ recompute, adaptive
/// recompute ≡ static recompute, adaptive incremental ≡ static recompute
/// (all byte for byte, rows unsorted), and recompute ≡ relational oracle
/// (sorted). Returns `(firings checked, firings with at least one row)`
/// — the second count guards against vacuous agreement on
/// nothing-but-empty windows.
fn check_prefix(
    sc: &Scenario,
    workers: usize,
    prefix: usize,
) -> Result<(usize, usize), Box<Divergence>> {
    let (firings, ids) = run_engine(sc, workers, prefix, false, false);

    // Legs 1-3: every other engine mode against the static recompute
    // baseline. The adaptive legs may re-plan mid-stream and flip
    // execution modes per the cost model; none of that may perturb a
    // single emitted byte.
    let modes: [(&'static str, bool, bool); 3] = [
        ("incremental engine vs recompute engine", true, false),
        ("adaptive recompute engine vs static engine", false, true),
        ("adaptive incremental engine vs static engine", true, true),
    ];
    for (kind, incremental, adaptive) in modes {
        let (other, other_ids) = run_engine(sc, workers, prefix, incremental, adaptive);
        assert_eq!(ids, other_ids, "registration order must not depend on mode");
        compare_firings(kind, &firings, &other, &ids)?;
    }

    // Leg 4: the recompute engine vs the independent scan+join oracle.
    let timeline = &sc.timeline[..prefix];
    let asts: Vec<Query> = sc
        .queries
        .iter()
        .map(|text| parse_query(&sc.strings, text).expect("parses"))
        .collect();
    let mut stored_tt = TripleTable::new();
    stored_tt.load(sc.stored.iter().copied());
    let mut checked = 0;
    let mut nonempty = 0;
    for f in &firings {
        let qi = ids.iter().position(|id| *id == f.query).expect("known");
        let expect = oracle_rows(&asts[qi], &stored_tt, timeline, f.window_end);
        let mut got = f.results.rows.clone();
        got.sort();
        if got != expect {
            return Err(Box::new(Divergence {
                kind: "recompute engine vs relational oracle",
                query: qi,
                window_end: f.window_end,
                engine_rows: got,
                oracle_rows: expect,
            }));
        }
        checked += 1;
        nonempty += usize::from(!expect.is_empty());
    }
    Ok((checked, nonempty))
}

fn render_triple(sc: &Scenario, t: &Triple) -> String {
    let ss = &sc.strings;
    format!(
        "{} {} {}",
        ss.entity_name(t.s).unwrap_or_else(|_| format!("{:?}", t.s)),
        ss.predicate_name(t.p)
            .unwrap_or_else(|_| format!("{:?}", t.p)),
        ss.entity_name(t.o).unwrap_or_else(|_| format!("{:?}", t.o)),
    )
}

/// Runs the full workload; on divergence, shrinks to the minimal stream
/// prefix that still diverges and panics with a reproducible report.
fn check_seed(seed: u64, workers: usize) -> (usize, usize) {
    let sc = generate(seed);
    match check_prefix(&sc, workers, sc.timeline.len()) {
        Ok(counts) => counts,
        Err(_) => {
            // Minimal prefix: the first length that diverges. Every run
            // is deterministic, so the scan is exact, not heuristic.
            let (len, div) = (0..=sc.timeline.len())
                .find_map(|len| check_prefix(&sc, workers, len).err().map(|d| (len, d)))
                .expect("full run diverged, so some prefix does");
            let tuples: Vec<String> = sc.timeline[..len]
                .iter()
                .map(|(s, t, ts)| {
                    format!("  [{}] {} @ {ts}", STREAM_NAMES[*s], render_triple(&sc, t))
                })
                .collect();
            panic!(
                "differential divergence: {} (seed {seed}, workers {workers})\n\
                 minimal stream prefix: {len} tuples\n{}\n\
                 query {} = {}\n\
                 window_end {}\n  lhs rows: {:?}\n  rhs rows: {:?}",
                div.kind,
                tuples.join("\n"),
                div.query,
                sc.queries[div.query],
                div.window_end,
                div.engine_rows,
                div.oracle_rows,
            );
        }
    }
}

// ---------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------

#[test]
fn parallel_engine_agrees_with_relational_oracle() {
    let (mut checked, mut nonempty) = (0, 0);
    for seed in 1..=6 {
        let (c, n) = check_seed(seed, 4);
        checked += c;
        nonempty += n;
    }
    // Guard against the test silently going vacuous: the window math
    // guarantees hundreds of firings over six seeds, and the generator's
    // shared entity universe makes many of them carry rows.
    assert!(checked > 100, "only {checked} firings checked");
    assert!(nonempty > 20, "only {nonempty} firings had rows");
}

#[test]
fn oracle_agreement_holds_at_every_worker_count() {
    for workers in [1, 2, 4, 8] {
        let (checked, _) = check_seed(7, workers);
        assert!(checked > 10, "only {checked} firings at {workers} workers");
    }
}

/// Pins the window-overlap regimes that stress delta maintenance
/// differently: tumbling (range == step, zero survivors), 50% overlap,
/// 75% overlap with range 4× the batch interval, and disjoint slides
/// (step > range, everything retracted every firing). Each regime runs
/// the full four-way check over a seeded join-heavy timeline.
#[test]
fn four_way_agreement_sweeps_overlap_regimes() {
    for (range, step) in [(100u64, 100u64), (200, 100), (400, 100), (100, 300)] {
        let mut rng = Rng(0xA5A5 ^ (range << 4) ^ step);
        let strings = Arc::new(StringServer::new());
        let entities: Vec<Vid> = (0..10)
            .map(|i| strings.intern_entity(&format!("e{i}")).expect("interns"))
            .collect();
        let preds: Vec<Pid> = ["ta0", "ta1"]
            .iter()
            .map(|p| strings.intern_predicate(p).expect("interns"))
            .collect();
        let mut seen = std::collections::HashSet::new();
        let mut timeline = Vec::new();
        for _ in 0..80 {
            let t = Triple::new(
                entities[rng.below(10) as usize],
                preds[rng.below(2) as usize],
                entities[rng.below(10) as usize],
            );
            let ts = 1 + rng.below(MAX_TS);
            if seen.insert((t.s, t.p, t.o)) {
                timeline.push((0, t, ts));
            }
        }
        timeline.sort_by_key(|(_, _, ts)| *ts);
        let sc = Scenario {
            strings,
            stored: Vec::new(),
            timeline,
            queries: vec![format!(
                "REGISTER QUERY D0 SELECT ?V0 ?V1 ?V2 \
                 FROM SA [RANGE {range}ms STEP {step}ms] \
                 WHERE {{ GRAPH SA {{ ?V0 ta0 ?V1 }} GRAPH SA {{ ?V2 ta1 ?V1 }} }}"
            )],
            max_range_ms: range,
        };
        let (checked, nonempty) = check_prefix(&sc, 4, sc.timeline.len()).unwrap_or_else(|d| {
            panic!(
                "overlap regime range={range} step={step} diverged: {} \
                     at window {}\n  lhs rows: {:?}\n  rhs rows: {:?}",
                d.kind, d.window_end, d.engine_rows, d.oracle_rows
            )
        });
        assert!(
            checked > 3,
            "range={range} step={step}: only {checked} firings"
        );
        assert!(nonempty > 0, "range={range} step={step}: vacuous regime");
    }
}

/// A hand-built scenario with known answers: pins the oracle (and via
/// agreement, the engine) to absolute semantics, so both cannot drift
/// together unnoticed.
#[test]
fn hand_computed_scenario_pins_the_semantics() {
    let strings = Arc::new(StringServer::new());
    let e: Vec<Vid> = (0..12)
        .map(|i| strings.intern_entity(&format!("e{i}")).expect("interns"))
        .collect();
    let sp0 = strings.intern_predicate("sp0").expect("interns");
    let ta0 = strings.intern_predicate("ta0").expect("interns");
    for p in ["sp1", "sp2", "ta1", "tb0", "tb1"] {
        strings.intern_predicate(p).expect("interns");
    }

    let sc = Scenario {
        strings: Arc::clone(&strings),
        stored: vec![Triple::new(e[1], sp0, e[2])],
        // Raw ts 150 batches to 200.
        timeline: vec![(0, Triple::new(e[0], ta0, e[1]), 150)],
        queries: vec![
            "REGISTER QUERY D0 SELECT ?V0 ?V1 FROM SA [RANGE 200ms STEP 100ms] \
             WHERE { GRAPH SA { e0 ta0 ?V0 } ?V0 sp0 ?V1 }"
                .to_string(),
        ],
        max_range_ms: 200,
    };
    check_prefix(&sc, 4, 1).unwrap_or_else(|d| {
        panic!(
            "hand scenario diverged at window {}: engine {:?} vs oracle {:?}",
            d.window_end, d.engine_rows, d.oracle_rows
        )
    });

    // The tuple is visible exactly in the two windows whose [lo, hi]
    // covers batch time 200: hi=200 (lo=1) and hi=300 (lo=101).
    let q = parse_query(&strings, &sc.queries[0]).expect("parses");
    let mut tt = TripleTable::new();
    tt.load(sc.stored.iter().copied());
    let hit = vec![vec![e[1], e[2]]];
    assert_eq!(oracle_rows(&q, &tt, &sc.timeline, 200), hit);
    assert_eq!(oracle_rows(&q, &tt, &sc.timeline, 300), hit);
    assert!(oracle_rows(&q, &tt, &sc.timeline, 100).is_empty());
    assert!(oracle_rows(&q, &tt, &sc.timeline, 400).is_empty());
}

#[test]
fn generator_is_deterministic() {
    let a = generate(42);
    let b = generate(42);
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.stored.len(), b.stored.len());
    assert_eq!(
        a.timeline
            .iter()
            .map(|(s, t, ts)| (*s, t.s, t.p, t.o, *ts))
            .collect::<Vec<_>>(),
        b.timeline
            .iter()
            .map(|(s, t, ts)| (*s, t.s, t.p, t.o, *ts))
            .collect::<Vec<_>>(),
    );
}

#[test]
fn oracle_window_filter_matches_batching() {
    // Raw timestamps land in the mini-batch that *ends* at the next
    // interval boundary; boundary timestamps stay in their own batch.
    assert_eq!(batched(1), 100);
    assert_eq!(batched(100), 100);
    assert_eq!(batched(101), 200);
    assert_eq!(batched(1_000), 1_000);
}
