//! Fault tolerance end to end: checkpoints capture everything needed and
//! recovery reproduces the original deployment's answers (§5).

use std::sync::Arc;
use wukong_benchdata::{lsbench, LsBench, LsBenchConfig};
use wukong_core::checkpoint::Checkpoint;
use wukong_core::{EngineConfig, WukongS};
use wukong_rdf::{StringServer, Vid};

fn sorted(mut rows: Vec<Vec<Vid>>) -> Vec<Vec<Vid>> {
    rows.sort();
    rows
}

#[test]
fn recovery_reproduces_all_query_classes() {
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(LsBenchConfig::tiny(), Arc::clone(&strings));
    let cfg = EngineConfig {
        fault_tolerance: true,
        ..EngineConfig::cluster(3)
    };

    let engine = WukongS::with_strings(cfg.clone(), Arc::clone(&strings));
    let stored = gen.stored_triples();
    engine.load_base(stored.iter().copied());
    let schemas = gen.schemas();
    for s in schemas.clone() {
        engine.register_stream(s);
    }
    let ids: Vec<usize> = (1..=lsbench::CONTINUOUS_CLASSES)
        .map(|c| {
            engine
                .register_continuous(&lsbench::continuous_query(&gen, c, 0))
                .expect("register")
        })
        .collect();

    let timeline = gen.generate(0, 2_000);
    let mut cp_at = 700;
    for t in &timeline {
        engine.ingest(t.stream, t.triple, t.timestamp);
        if t.timestamp >= cp_at {
            engine.checkpoint();
            cp_at += 700;
        }
    }
    engine.advance_time(2_000);
    engine.checkpoint();

    let before: Vec<_> = ids
        .iter()
        .map(|&id| sorted(engine.execute_registered(id).0.rows))
        .collect();

    let recovered = WukongS::recover(
        cfg,
        stored.iter().copied(),
        schemas,
        &strings,
        &engine.checkpoints(),
    )
    .expect("recovery");
    assert_eq!(recovered.continuous_count(), ids.len());
    assert_eq!(recovered.stable_sn(), engine.stable_sn());

    for (i, &id) in ids.iter().enumerate() {
        let after = sorted(recovered.execute_registered(id).0.rows);
        assert_eq!(after, before[i], "class L{} diverged after recovery", i + 1);
    }

    // One-shot queries see the same evolved store too.
    for class in 1..=lsbench::ONESHOT_CLASSES {
        let q = lsbench::oneshot_query(&gen, class, 0);
        let a = sorted(engine.one_shot(&q).expect("one-shot").0.rows);
        let b = sorted(recovered.one_shot(&q).expect("one-shot").0.rows);
        assert_eq!(a, b, "one-shot S{class} diverged after recovery");
    }
}

#[test]
fn checkpoints_chain_incrementally() {
    // Every batch must appear in exactly one checkpoint.
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(LsBenchConfig::tiny(), Arc::clone(&strings));
    let engine = WukongS::with_strings(
        EngineConfig {
            fault_tolerance: true,
            ..EngineConfig::single_node()
        },
        Arc::clone(&strings),
    );
    engine.load_base(gen.stored_triples());
    for s in gen.schemas() {
        engine.register_stream(s);
    }
    for t in gen.generate(0, 1_000) {
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(500);
    let cp1 = Checkpoint::decode(&engine.checkpoint()).expect("decodes");
    engine.advance_time(1_000);
    let cp2 = Checkpoint::decode(&engine.checkpoint()).expect("decodes");
    let cp3 = Checkpoint::decode(&engine.checkpoint()).expect("decodes");

    assert!(!cp1.batches.is_empty());
    assert!(!cp2.batches.is_empty());
    assert!(cp3.batches.is_empty(), "no new batches since cp2");
    // Disjoint per-stream batch timestamps across checkpoints.
    for b1 in &cp1.batches {
        assert!(
            !cp2.batches
                .iter()
                .any(|b2| b2.stream == b1.stream && b2.timestamp == b1.timestamp),
            "batch logged twice"
        );
    }
}

#[test]
fn construct_pipeline_survives_recovery() {
    use wukong_rdf::{ntriples, StreamId};
    use wukong_stream::StreamSchema;

    let strings = Arc::new(StringServer::new());
    let cfg = EngineConfig {
        fault_tolerance: true,
        ..EngineConfig::cluster(2)
    };
    let engine = WukongS::with_strings(cfg.clone(), Arc::clone(&strings));
    let stored = ntriples::parse_document(&strings, "Logan fo Erik\n").expect("parses");
    engine.load_base(stored.iter().copied());
    let schemas = vec![
        StreamSchema::timeless(StreamId(0), "PO", 100),
        StreamSchema::timeless(StreamId(1), "Derived", 100),
    ];
    for s in schemas.clone() {
        engine.register_stream(s);
    }
    engine
        .register_construct(
            "REGISTER QUERY derive CONSTRUCT { Erik influences ?X } \
             FROM PO [RANGE 1s STEP 100ms] \
             WHERE { GRAPH PO { ?X po ?Z } . ?X fo Erik }",
            StreamId(1),
        )
        .expect("registers");

    let t = ntriples::parse_tuple(&strings, "Logan po T-1 50", 1).expect("tuple");
    engine.ingest(StreamId(0), t.triple, t.timestamp);
    engine.advance_time(200);
    let _ = engine.fire_ready();
    engine.checkpoint();

    // Crash and recover; the CONSTRUCT query must keep its derived-stream
    // target and continue feeding it after replay.
    let recovered = WukongS::recover(
        cfg,
        stored.iter().copied(),
        schemas,
        &strings,
        &engine.checkpoints(),
    )
    .expect("recovery");
    assert_eq!(recovered.continuous_count(), 1);

    let t = ntriples::parse_tuple(&strings, "Logan po T-2 650", 1).expect("tuple");
    recovered.ingest(StreamId(0), t.triple, t.timestamp);
    recovered.advance_time(900);
    let _ = recovered.fire_ready();
    recovered.advance_time(1_200);
    let (rs, _) = recovered
        .one_shot("SELECT ?W WHERE { Erik influences ?W }")
        .expect("runs");
    assert!(
        !rs.is_empty(),
        "recovered CONSTRUCT query must keep feeding its derived stream"
    );
}
