//! Integration tests for the observability layer: fabric-operation
//! accounting per execution mode, staged latency attribution, and the
//! machine-readable bench report.

use std::sync::Arc;
use wukong_bench::{feed_engine, ls_workload_seeded, BenchJson, Scale, JSON_SCHEMA_VERSION};
use wukong_benchdata::lsbench;
use wukong_core::{EngineConfig, ExecMode, WukongS};
use wukong_obs::{json, Json};
use wukong_rdf::{ntriples, StreamId};
use wukong_stream::StreamSchema;

/// Builds the Fig. 1 scenario on `nodes` nodes with `mode` forced.
fn fig1_engine(nodes: usize, mode: ExecMode) -> WukongS {
    let engine = WukongS::new(EngineConfig {
        exec_mode: mode,
        ..EngineConfig::cluster(nodes)
    });
    let ss = engine.strings().clone();
    let stored = "Logan fo Erik\nErik fo Logan\nLogan po T-13\nErik li T-13\nT-13 ht #sosp17\n";
    engine.load_base(ntriples::parse_document(&ss, stored).expect("parses"));
    let tweets = engine.register_stream(StreamSchema::timeless(StreamId(0), "Tweet_Stream", 100));
    let likes = engine.register_stream(StreamSchema::timeless(StreamId(1), "Like_Stream", 100));
    for line in [
        "Logan po T-15 150",
        "Erik li T-15 250",
        "Erik po T-16 300",
        "Logan li T-16 350",
    ] {
        let t = ntriples::parse_tuple(&ss, line, 1).expect("tuple");
        let sid = if line.contains(" po ") { tweets } else { likes };
        engine.ingest(sid, t.triple, t.timestamp);
    }
    engine.advance_time(1_000);
    engine
}

const QC: &str = "REGISTER QUERY QC SELECT ?X ?Y ?Z \
     FROM Tweet_Stream [RANGE 10s STEP 1s] \
     FROM Like_Stream [RANGE 5s STEP 1s] \
     FROM X-Lab \
     WHERE { GRAPH Tweet_Stream { ?X po ?Z } \
             GRAPH X-Lab { ?X fo ?Y } \
             GRAPH Like_Stream { ?Y li ?Z } }";

/// In-place execution of a selective query on a 4-node cluster uses
/// one-sided reads only: remote state is pulled, never shipped to.
#[test]
fn in_place_execution_uses_reads_not_messages() {
    let engine = fig1_engine(4, ExecMode::InPlace);
    let id = engine.register_continuous(QC).expect("register");
    let handle = engine.handle();

    let before = handle.fabric_metrics();
    let (results, _) = engine.execute_registered(id);
    let delta = before.delta(&handle.fabric_metrics());

    assert!(!results.rows.is_empty(), "query must match");
    assert!(
        delta.one_sided_reads > 0,
        "4-node in-place execution must read remote shards, got {delta:?}"
    );
    assert_eq!(
        delta.messages, 0,
        "in-place execution must not send messages, got {delta:?}"
    );
}

/// Forced fork-join execution on the same cluster ships sub-queries to
/// the data instead, so two-sided messages appear.
#[test]
fn forkjoin_execution_sends_messages() {
    let engine = fig1_engine(4, ExecMode::ForkJoin);
    let id = engine.register_continuous(QC).expect("register");
    let handle = engine.handle();

    let before = handle.fabric_metrics();
    let (results, _) = engine.execute_registered(id);
    let delta = before.delta(&handle.fabric_metrics());

    assert!(!results.rows.is_empty(), "query must match");
    assert!(
        delta.messages > 0,
        "fork-join execution must exchange messages, got {delta:?}"
    );
}

/// The disjoint query stages (window extract, pattern match, result
/// emit) account for the reported end-to-end latency to within 10%.
#[test]
fn stage_spans_sum_to_end_to_end_latency() {
    let w = ls_workload_seeded(Scale::Tiny, 42);
    let engine = WukongS::with_strings(EngineConfig::cluster(2), Arc::clone(&w.strings));
    engine.load_base(w.stored.iter().copied());
    for schema in w.schemas() {
        engine.register_stream(schema);
    }
    for c in 1..=lsbench::CONTINUOUS_CLASSES {
        engine
            .register_continuous(&lsbench::continuous_query(&w.bench, c, 0))
            .expect("register");
    }
    for t in &w.timeline {
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(w.duration);

    let firings = engine.fire_ready();
    assert!(!firings.is_empty(), "the workload must fire queries");

    let mut staged = 0u64;
    let mut total = 0u64;
    for f in &firings {
        let sum = f.stages.query_total_ns();
        let e2e = (f.latency_ms * 1e6) as u64;
        assert!(
            sum <= e2e + e2e / 100 + 1_000,
            "stage sum {sum} ns exceeds end-to-end {e2e} ns for {:?}",
            f.name
        );
        staged += sum;
        total += e2e;
    }
    assert!(total > 0, "latencies must be non-zero");
    let coverage = staged as f64 / total as f64;
    assert!(
        (0.9..=1.01).contains(&coverage),
        "stages cover {:.1}% of end-to-end latency (want >= 90%)",
        coverage * 100.0
    );
}

/// The overload path reports through the same staged-latency fabric as
/// everything else: `Shed` and `CatchUp` are batch-family stages (so the
/// query stage-sum invariant above is untouched by them), shed events
/// record a `Shed` span on the overflowing stream's series, and the
/// catch-up replay records a `CatchUp` span — all visible in a registry
/// snapshot.
#[test]
fn overload_stages_land_in_the_batch_family() {
    use wukong_obs::Stage;
    use wukong_stream::IngestBudget;

    assert!(Stage::Shed.is_batch_stage() && !Stage::Shed.counts_toward_query_total());
    assert!(Stage::CatchUp.is_batch_stage() && !Stage::CatchUp.counts_toward_query_total());

    let w = ls_workload_seeded(Scale::Tiny, 42);
    let mut cfg = EngineConfig::cluster(2).with_ingest_budget(Some(IngestBudget::tuples(8)));
    cfg.overload.catchup_quiet_ms = 300;
    cfg.overload.latency_budget_ms = 1e9;
    let engine = WukongS::with_strings(cfg, Arc::clone(&w.strings));
    engine.load_base(w.stored.iter().copied());
    for schema in w.schemas() {
        engine.register_stream(schema);
    }
    engine
        .register_continuous(&lsbench::continuous_query(&w.bench, 1, 0))
        .expect("register");
    for t in &w.timeline {
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(w.duration);
    // The budget overflows right up to the end of the timeline; push
    // stream time past the quiet period so catch-up actually replays.
    engine.advance_time(w.duration + 1_000);
    let firings = engine.fire_ready();
    assert!(engine.total_shed() > 0, "the tiny budget must overflow");

    let snap = engine.handle().obs().snapshot();
    let shed_spans: u64 = snap
        .streams
        .values()
        .filter_map(|s| s.stages.get(&Stage::Shed))
        .map(|h| h.count)
        .sum();
    assert!(shed_spans > 0, "shed events must record a Shed span");
    let catchup = &snap.streams["catch-up"];
    assert!(
        catchup.stages[&Stage::CatchUp].count >= 1,
        "the replay must record a CatchUp span"
    );

    // The firing-side invariant survives degradation: stage spans still
    // account for each firing's end-to-end latency.
    for f in &firings {
        let sum = f.stages.query_total_ns();
        let e2e = (f.latency_ms * 1e6) as u64;
        assert!(
            sum <= e2e + e2e / 100 + 1_000,
            "stage sum {sum} ns exceeds end-to-end {e2e} ns for {:?}",
            f.name
        );
    }
}

/// Re-planning and recovery report through the same staged fabric:
/// `Replan` lands on the tripped query's class (outside the disjoint
/// query total, like `Shed`/`CatchUp` above), `Recovery` on the
/// dedicated "recovery" stream series — and the firing-side stage-sum
/// invariant survives both a mid-stream plan switch and a full
/// crash-recovery drill.
#[test]
fn replan_and_recovery_stages_keep_the_invariant() {
    use wukong_obs::Stage;

    assert!(Stage::Replan.is_query_stage() && !Stage::Replan.counts_toward_query_total());
    assert!(Stage::Recovery.is_batch_stage() && !Stage::Recovery.counts_toward_query_total());

    let w = ls_workload_seeded(Scale::Tiny, 42);
    let cfg = EngineConfig {
        fault_tolerance: true,
        ..EngineConfig::cluster(2)
    };
    let mgr = wukong_core::RecoveryManager::new(
        cfg.clone(),
        w.stored.clone(),
        w.schemas(),
        Arc::clone(&w.strings),
    );
    let engine = WukongS::with_strings(cfg, Arc::clone(&w.strings));
    engine.load_base(w.stored.iter().copied());
    for schema in w.schemas() {
        engine.register_stream(schema);
    }
    let id = engine
        .register_continuous(&lsbench::continuous_query(&w.bench, 1, 0))
        .expect("register");

    let mid = w.timeline.len() / 2;
    for t in &w.timeline[..mid] {
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.checkpoint();
    engine.force_replan(id);
    for t in &w.timeline[mid..] {
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(w.duration);
    let mut firings = engine.fire_ready();
    assert!(!firings.is_empty(), "the workload must fire queries");

    let snap = engine.handle().obs().snapshot();
    let replans: u64 = snap
        .queries
        .values()
        .filter_map(|q| q.stages.get(&Stage::Replan))
        .map(|h| h.count)
        .sum();
    assert!(replans >= 1, "the forced re-plan must record a Replan span");

    // Crash-recover and fire the delayed windows on the fresh engine.
    let (recovered, _report) = mgr.drill_verified(&engine, None).expect("recovery");
    recovered.advance_time(w.duration);
    firings.extend(recovered.fire_ready());

    let rsnap = recovered.handle().obs().snapshot();
    assert!(
        rsnap.streams["recovery"].stages[&Stage::Recovery].count >= 1,
        "the drill must record a Recovery span"
    );

    // The firing-side invariant holds across the plan switch and the
    // recovery boundary: the disjoint query stages still account for
    // each firing's end-to-end latency, never exceeding it.
    let mut staged = 0u64;
    let mut total = 0u64;
    for f in &firings {
        let sum = f.stages.query_total_ns();
        let e2e = (f.latency_ms * 1e6) as u64;
        assert!(
            sum <= e2e + e2e / 100 + 1_000,
            "stage sum {sum} ns exceeds end-to-end {e2e} ns for {:?}",
            f.name
        );
        staged += sum;
        total += e2e;
    }
    assert!(total > 0, "latencies must be non-zero");
    // Post-recovery refires run on a cold engine (fresh caches, first
    // touch of every shard), so unattributed warm-up costs are larger
    // than in the steady-state test above — the floor is looser, the
    // per-firing upper bound stays strict.
    let coverage = staged as f64 / total as f64;
    assert!(
        (0.75..=1.01).contains(&coverage),
        "stages cover {:.1}% of end-to-end latency across replan+recovery (want >= 75%)",
        coverage * 100.0
    );
}

/// Golden test for the `--json` report: a tiny in-process experiment
/// written through `BenchJson` parses back with the expected schema,
/// percentile keys, and stage names.
#[test]
fn json_report_round_trips_with_stable_schema() {
    let w = ls_workload_seeded(Scale::Tiny, 42);
    let engine = feed_engine(
        EngineConfig::cluster(2),
        &w.strings,
        w.schemas(),
        &w.stored,
        &w.timeline,
        w.duration,
    );
    let id = engine
        .register_continuous(&lsbench::continuous_query(&w.bench, 1, 0))
        .expect("register");
    let mut rec = wukong_core::LatencyRecorder::new();
    for _ in 0..8 {
        let (_, ms) = engine.execute_registered(id);
        rec.record(ms);
    }

    let path = std::env::temp_dir().join("wukong_obs_golden.json");
    let mut jr = BenchJson::to_path("golden", &path);
    jr.series("L1/wukong_s", &rec);
    jr.counter("ops", 8.0);
    jr.engine(&engine);
    assert!(jr.active());
    jr.finish().expect("written");

    let text = std::fs::read_to_string(&path).expect("readable");
    let doc = json::parse(&text).expect("valid JSON");

    assert_eq!(
        doc.get("schema_version").and_then(Json::as_u64),
        Some(JSON_SCHEMA_VERSION)
    );
    assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("golden"));

    let series = doc
        .get("latency_ms")
        .and_then(|l| l.get("L1/wukong_s"))
        .expect("series present");
    assert_eq!(series.get("samples").and_then(Json::as_u64), Some(8));
    for key in ["p50", "p90", "p99", "p999", "mean"] {
        assert!(
            series.get(key).and_then(Json::as_f64).is_some(),
            "missing percentile {key}"
        );
    }

    let fabric = doc.get("fabric").expect("fabric section");
    for key in [
        "one_sided_reads",
        "messages",
        "bytes_read",
        "bytes_sent",
        "charged_ns",
    ] {
        assert!(fabric.get(key).is_some(), "missing fabric counter {key}");
    }

    // The executed query class must show up with the disjoint query
    // stages; the fed streams with the batch stages.
    let queries = doc
        .get("stages")
        .and_then(|s| s.get("queries"))
        .and_then(Json::as_obj)
        .expect("stage queries");
    let (_, entry) = queries.iter().next().expect("at least one query class");
    for stage in [
        "end_to_end_ns",
        "window_extract",
        "pattern_match",
        "result_emit",
    ] {
        assert!(entry.get(stage).is_some(), "missing query stage {stage}");
    }
    let streams = doc
        .get("stages")
        .and_then(|s| s.get("streams"))
        .and_then(Json::as_obj)
        .expect("stage streams");
    let (_, entry) = streams.iter().next().expect("at least one stream");
    for stage in ["adaptor", "dispatch", "injection", "stream_index"] {
        assert!(entry.get(stage).is_some(), "missing batch stage {stage}");
    }

    std::fs::remove_file(&path).ok();
}
