//! Regression pin: delta-state death timestamps survive a plan switch.
//!
//! PR 4 fixed row retraction to use the *registered* RANGE when stamping
//! a row's death timestamp (`min over contributing edges of ts + RANGE`)
//! rather than the clamped instance span, so rows materialized during
//! the window-filling phase are not retracted early. An adaptive re-plan
//! discards and rebuilds `DeltaState` mid-stream; if the rebuild (or the
//! rebuilt state's first sweep) stamped deaths from the clamped window
//! of the firing it rebuilt at, the old rows would vanish a firing early
//! — or, symmetrically, retracted rows could resurrect. This test forces
//! re-plans at the sensitive points and pins the firing sequence to
//! hand-computed absolute rows, plus byte-identity with a control engine
//! that never re-plans.

use std::sync::Arc;
use wukong_core::{EngineConfig, Firing, WukongS};
use wukong_rdf::{StreamId, StringServer, Timestamp, Triple, Vid};
use wukong_stream::StreamSchema;

const INTERVAL_MS: u64 = 100;

/// `SELECT ?V0 ?V1 ?V2` joining two stream predicates on the shared
/// object — incrementalizable, so the engine maintains delta state.
const QUERY: &str = "REGISTER QUERY RR SELECT ?V0 ?V1 ?V2 \
     FROM S [RANGE 300ms STEP 100ms] \
     WHERE { GRAPH S { ?V0 ta0 ?V1 } GRAPH S { ?V2 ta1 ?V1 } }";

fn vocab(strings: &Arc<StringServer>) -> Vec<Vid> {
    for p in ["ta0", "ta1"] {
        strings.intern_predicate(p).expect("interns");
    }
    (0..4)
        .map(|i| strings.intern_entity(&format!("e{i}")).expect("interns"))
        .collect()
}

/// The three-tuple timeline, hand-batched:
///
/// - `A = e0 ta0 e1` @ raw 50  → batch 100, death 100 + 300 = 400;
/// - `B = e2 ta1 e1` @ raw 50  → batch 100, death 400;
/// - `C = e3 ta1 e1` @ raw 250 → batch 300, death 600.
///
/// Expected rows per window end (row = [?V0 ?V1 ?V2]):
///
/// - 100, 200: `[e0 e1 e2]`            (A⋈B, window still filling);
/// - 300:      `[e0 e1 e2], [e0 e1 e3]` (C arrives, A and B still live);
/// - 400 on:   nothing                  (A and B retract at hi = 400).
fn timeline(e: &[Vid], strings: &Arc<StringServer>) -> Vec<(Triple, Timestamp)> {
    let ta0 = strings.predicate_id("ta0").expect("interned");
    let ta1 = strings.predicate_id("ta1").expect("interned");
    vec![
        (Triple::new(e[0], ta0, e[1]), 50),
        (Triple::new(e[2], ta1, e[1]), 50),
        (Triple::new(e[3], ta1, e[1]), 250),
    ]
}

/// `(window_end, sorted rows)` for one firing.
type FiringRows = (Timestamp, Vec<Vec<Vid>>);

/// Drives the maintained query over the timeline, forcing a re-plan
/// right after the firing at `force_at` (None = never), and returns
/// the per-firing rows plus the engine for counters.
fn run(force_at: Option<Timestamp>) -> (Vec<FiringRows>, WukongS) {
    let strings = Arc::new(StringServer::new());
    let e = vocab(&strings);
    let tl = timeline(&e, &strings);
    // Adaptive drift detection is pinned off (overriding WUKONG_ADAPTIVE)
    // so the forced switch is the only re-plan and the counter pins hold.
    let engine = WukongS::with_strings(
        EngineConfig::cluster(2)
            .with_workers(EngineConfig::worker_threads_from_env())
            .with_incremental(true)
            .with_adaptive(false),
        Arc::clone(&strings),
    );
    let s = engine.register_stream(StreamSchema::timeless(StreamId(0), "S", INTERVAL_MS));
    let id = engine.register_continuous(QUERY).expect("registers");

    let mut fed = 0;
    let mut firings: Vec<Firing> = Vec::new();
    for tick in (INTERVAL_MS..=700).step_by(INTERVAL_MS as usize) {
        while fed < tl.len() && tl[fed].1 <= tick {
            engine.ingest(s, tl[fed].0, tl[fed].1);
            fed += 1;
        }
        engine.advance_time(tick);
        firings.extend(engine.fire_ready());
        if force_at == Some(tick) {
            engine.force_replan(id);
        }
    }
    let rows = firings
        .into_iter()
        .map(|f| {
            let mut rows = f.results.rows;
            rows.sort();
            (f.window_end, rows)
        })
        .collect();
    (rows, engine)
}

fn expected(e: &[Vid]) -> Vec<FiringRows> {
    let ab = vec![e[0], e[1], e[2]];
    let ac = vec![e[0], e[1], e[3]];
    let mut out = vec![
        (100, vec![ab.clone()]),
        (200, vec![ab.clone()]),
        (300, {
            let mut v = vec![ab, ac];
            v.sort();
            v
        }),
    ];
    out.extend((4..=7).map(|k| (k * 100, Vec::new())));
    out
}

/// One assertion body shared by every forced switch point.
fn check_switch_point(force_at: Timestamp) {
    let (forced, engine) = run(Some(force_at));
    let (control, _) = run(None);
    let strings = Arc::new(StringServer::new());
    let e = vocab(&strings);

    assert_eq!(
        forced, control,
        "re-plan at {force_at} perturbed the firing sequence"
    );
    assert_eq!(
        forced,
        expected(&e),
        "re-plan at {force_at} broke absolute death-timestamp semantics"
    );
    let snap = engine.cluster().obs().plan().snapshot();
    assert_eq!(snap.replans, 1, "the forced re-plan must be recorded");
    assert_eq!(snap.delta_rebuilds, 1, "the switch must rebuild state");
}

#[test]
fn replan_during_window_filling_keeps_filling_phase_rows_alive() {
    // The switch lands right after the first firing, while the 300ms
    // window is still filling (the clamped instance span is shorter than
    // the registered RANGE). The rebuilt state must keep A⋈B alive
    // through window 300 — retracting it at 200 is the PR 4 bug the
    // death stamp fixed, now across a plan switch.
    check_switch_point(100);
}

#[test]
fn replan_at_retraction_boundary_neither_resurrects_nor_retracts_early() {
    // The switch lands right after the last firing that contains the old
    // rows; the very next sweep must retract them (hi = 400 ≥ death) and
    // never see them again — a rebuild that re-derived rows from the
    // full window with fresh (later) death stamps would resurrect them.
    check_switch_point(300);
}

#[test]
fn replan_after_retraction_leaves_the_tail_empty() {
    check_switch_point(400);
}
