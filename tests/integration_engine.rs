//! End-to-end engine tests: consistency, windows, snapshots, execution
//! modes, and cluster-size invariance.

use std::sync::Arc;
use wukong_benchdata::{lsbench, LsBench, LsBenchConfig};
use wukong_core::{EngineConfig, ExecMode, WukongS};
use wukong_rdf::{ntriples, StreamId, StringServer};
use wukong_stream::{StalenessBound, StreamSchema};

/// Builds the Fig. 1 scenario on `nodes` nodes.
fn fig1_engine(nodes: usize) -> (WukongS, StreamId, StreamId) {
    let engine = WukongS::new(EngineConfig::cluster(nodes));
    let ss = engine.strings();
    let stored = "Logan fo Erik\nErik fo Logan\nLogan po T-13\nErik li T-13\nT-13 ht #sosp17\n";
    engine.load_base(ntriples::parse_document(ss, stored).expect("parses"));
    let tweets = engine.register_stream(StreamSchema::timeless(StreamId(0), "Tweet_Stream", 100));
    let likes = engine.register_stream(StreamSchema::timeless(StreamId(1), "Like_Stream", 100));
    (engine, tweets, likes)
}

const QC: &str = "REGISTER QUERY QC SELECT ?X ?Y ?Z \
     FROM Tweet_Stream [RANGE 10s STEP 1s] \
     FROM Like_Stream [RANGE 5s STEP 1s] \
     FROM X-Lab \
     WHERE { GRAPH Tweet_Stream { ?X po ?Z } \
             GRAPH X-Lab { ?X fo ?Y } \
             GRAPH Like_Stream { ?Y li ?Z } }";

#[test]
fn results_appear_only_after_stable_vts() {
    let (engine, tweets, likes) = fig1_engine(2);
    let ss = engine.strings().clone();
    engine.register_continuous(QC).expect("register");

    let tup = |line: &str| ntriples::parse_tuple(&ss, line, 1).expect("tuple");
    let t = tup("Logan po T-15 150");
    engine.ingest(tweets, t.triple, t.timestamp);
    let t = tup("Erik li T-15 250");
    engine.ingest(likes, t.triple, t.timestamp);

    // Only the tweet stream advanced past the batch; the like stream's
    // batch is sealed but the window end (next second) is not stable yet,
    // so the query must not fire.
    assert!(engine.fire_ready().is_empty());

    // Heartbeat both streams to 1 s: windows become ready and the match
    // appears exactly once.
    engine.advance_time(1_000);
    let firings = engine.fire_ready();
    assert_eq!(firings.len(), 1);
    assert_eq!(firings[0].results.rows.len(), 1);
    let names: Vec<String> = firings[0].results.rows[0]
        .iter()
        .map(|v| ss.entity_name(*v).expect("known"))
        .collect();
    assert_eq!(names, ["Logan", "Erik", "T-15"]);
}

#[test]
fn oneshot_sees_timeless_stream_data_at_stable_snapshot() {
    let (engine, tweets, _) = fig1_engine(2);
    let ss = engine.strings().clone();
    let q = "SELECT ?X WHERE { Logan po ?X }";

    let (rs, _) = engine.one_shot(q).expect("runs");
    assert_eq!(rs.rows.len(), 1, "initially only T-13");

    let t = ntriples::parse_tuple(&ss, "Logan po T-15 50", 1).expect("tuple");
    engine.ingest(tweets, t.triple, t.timestamp);
    // The batch is still open: not yet visible.
    let (rs, _) = engine.one_shot(q).expect("runs");
    assert_eq!(rs.rows.len(), 1, "open batch must be invisible");

    engine.advance_time(100);
    let (rs, _) = engine.one_shot(q).expect("runs");
    assert_eq!(rs.rows.len(), 2, "sealed + stable batch becomes visible");
}

#[test]
fn windows_expire_old_matches() {
    let (engine, tweets, likes) = fig1_engine(1);
    let ss = engine.strings().clone();
    let id = engine.register_continuous(QC).expect("register");

    let t = ntriples::parse_tuple(&ss, "Logan po T-15 100", 1).expect("tuple");
    engine.ingest(tweets, t.triple, t.timestamp);
    let t = ntriples::parse_tuple(&ss, "Erik li T-15 200", 1).expect("tuple");
    engine.ingest(likes, t.triple, t.timestamp);

    engine.advance_time(1_000);
    let (rs, _) = engine.execute_registered(id);
    assert_eq!(rs.rows.len(), 1);

    // 6 s later the like (5 s window) has expired; the post (10 s) later.
    engine.advance_time(6_000);
    let (rs, _) = engine.execute_registered(id);
    assert!(rs.is_empty(), "expired like must drop the match");
}

#[test]
fn cluster_size_does_not_change_results() {
    let mut reference: Option<Vec<Vec<wukong_rdf::Vid>>> = None;
    for nodes in [1usize, 3, 8] {
        let strings = Arc::new(StringServer::new());
        let mut gen = LsBench::new(LsBenchConfig::tiny(), Arc::clone(&strings));
        let engine = WukongS::with_strings(EngineConfig::cluster(nodes), Arc::clone(&strings));
        engine.load_base(gen.stored_triples());
        for s in gen.schemas() {
            engine.register_stream(s);
        }
        let timeline = gen.generate(0, 1_500);
        for t in &timeline {
            engine.ingest(t.stream, t.triple, t.timestamp);
        }
        engine.advance_time(1_500);

        let mut all_rows = Vec::new();
        for class in 1..=lsbench::CONTINUOUS_CLASSES {
            let id = engine
                .register_continuous(&lsbench::continuous_query(&gen, class, 0))
                .expect("register");
            let (rs, _) = engine.execute_registered(id);
            let mut rows = rs.rows;
            rows.sort();
            all_rows.push(rows);
        }
        match &reference {
            None => reference = Some(all_rows.concat()),
            Some(r) => assert_eq!(
                &all_rows.concat(),
                r,
                "results must be identical on {nodes} nodes"
            ),
        }
    }
}

#[test]
fn exec_modes_agree() {
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(LsBenchConfig::tiny(), Arc::clone(&strings));
    let stored = gen.stored_triples();
    let timeline = gen.generate(0, 1_500);

    let mut reference: Option<Vec<Vec<wukong_rdf::Vid>>> = None;
    for mode in [ExecMode::Auto, ExecMode::InPlace, ExecMode::ForkJoin] {
        let engine = WukongS::with_strings(
            EngineConfig {
                exec_mode: mode,
                ..EngineConfig::cluster(4)
            },
            Arc::clone(&strings),
        );
        engine.load_base(stored.iter().copied());
        for s in gen.schemas() {
            engine.register_stream(s);
        }
        for t in &timeline {
            engine.ingest(t.stream, t.triple, t.timestamp);
        }
        engine.advance_time(1_500);

        let mut all_rows = Vec::new();
        for class in 1..=lsbench::CONTINUOUS_CLASSES {
            let id = engine
                .register_continuous(&lsbench::continuous_query(&gen, class, 0))
                .expect("register");
            let (rs, _) = engine.execute_registered(id);
            let mut rows = rs.rows;
            rows.sort();
            all_rows.push(rows);
        }
        match &reference {
            None => reference = Some(all_rows.concat()),
            Some(r) => assert_eq!(&all_rows.concat(), r, "mode {mode:?} must agree"),
        }
    }
}

#[test]
fn replication_flag_does_not_change_results() {
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(LsBenchConfig::tiny(), Arc::clone(&strings));
    let stored = gen.stored_triples();
    let timeline = gen.generate(0, 1_500);

    let mut reference: Option<Vec<Vec<wukong_rdf::Vid>>> = None;
    for replicate in [true, false] {
        let engine = WukongS::with_strings(
            EngineConfig {
                replicate_stream_indexes: replicate,
                ..EngineConfig::cluster(4)
            },
            Arc::clone(&strings),
        );
        engine.load_base(stored.iter().copied());
        for s in gen.schemas() {
            engine.register_stream(s);
        }
        for t in &timeline {
            engine.ingest(t.stream, t.triple, t.timestamp);
        }
        engine.advance_time(1_500);
        let id = engine
            .register_continuous(&lsbench::continuous_query(&gen, 5, 0))
            .expect("register");
        let (rs, _) = engine.execute_registered(id);
        let mut rows = rs.rows;
        rows.sort();
        match &reference {
            None => reference = Some(rows),
            Some(r) => assert_eq!(&rows, r),
        }
    }
}

#[test]
fn gc_bounds_transient_memory_under_load() {
    let engine = WukongS::new(EngineConfig {
        gc_every_batches: 4,
        gc_slack_ms: 200,
        ..EngineConfig::single_node()
    });
    let ss = engine.strings().clone();
    let mut schema = StreamSchema::timeless(StreamId(0), "GPS", 100);
    schema
        .timing_predicates
        .insert(ss.intern_predicate("ga").expect("id"));
    let gps = engine.register_stream(schema);
    engine
        .register_continuous(
            "REGISTER QUERY g SELECT ?C FROM GPS [RANGE 500ms STEP 100ms] \
             WHERE { GRAPH GPS { u0 ga ?C } }",
        )
        .expect("register");

    let u0 = ss.intern_entity("u0").expect("id");
    let ga = ss.intern_predicate("ga").expect("id");
    for ts in 1..5_000u64 {
        let cell = ss.intern_entity(&format!("cell{}", ts % 7)).expect("id");
        engine.ingest(gps, wukong_rdf::Triple::new(u0, ga, cell), ts);
    }
    engine.advance_time(5_000);

    let stream = engine.cluster().stream(0);
    let t = stream.transients[0].read();
    // 50 batches were injected; only the window + slack may survive.
    assert!(
        t.evicted_slices() > 30,
        "GC barely ran: {}",
        t.evicted_slices()
    );
    assert!(
        t.slice_count() < 15,
        "too many live slices: {}",
        t.slice_count()
    );
}

#[test]
fn snapshot_bound_holds_under_continuous_injection() {
    let engine = WukongS::new(EngineConfig {
        staleness: StalenessBound(1),
        ..EngineConfig::cluster(2)
    });
    let ss = engine.strings().clone();
    let s = engine.register_stream(StreamSchema::timeless(StreamId(0), "S", 100));
    let p = ss.intern_predicate("p").expect("id");
    for ts in 1..3_000u64 {
        let a = ss.intern_entity(&format!("a{}", ts % 50)).expect("id");
        let b = ss.intern_entity(&format!("b{ts}")).expect("id");
        engine.ingest(s, wukong_rdf::Triple::new(a, p, b), ts);
    }
    engine.advance_time(3_000);
    // Injection-time consolidation keeps the per-key snapshot count
    // bounded ("one for using and another is for inserting" + in-flight).
    for n in 0..2u16 {
        assert!(
            engine.cluster().shard(n).max_retained_snapshots() <= 3,
            "snapshot bound violated on node {n}"
        );
    }
    assert!(
        engine.stable_sn().0 >= 25,
        "snapshots advanced with batches"
    );
}

#[test]
fn shards_hold_only_owned_keys() {
    // Ownership routing invariant: after a full workload (base load +
    // stream injection + index updates), every key lives exactly on the
    // shard the shard map assigns it to — no duplication anywhere.
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(LsBenchConfig::tiny(), Arc::clone(&strings));
    let engine = WukongS::with_strings(EngineConfig::cluster(5), Arc::clone(&strings));
    engine.load_base(gen.stored_triples());
    for s in gen.schemas() {
        engine.register_stream(s);
    }
    for t in gen.generate(0, 1_500) {
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(1_500);

    let cluster = engine.cluster();
    let mut total_keys = 0usize;
    for n in 0..5u16 {
        cluster.shard(n).for_each_key(|k, len| {
            total_keys += 1;
            assert!(len > 0, "empty cell materialised for {k:?}");
            assert_eq!(
                cluster.shard_map().node_of_key(k),
                n,
                "shard {n} holds foreign key {k:?}"
            );
        });
    }
    assert!(total_keys > 1_000, "workload too small: {total_keys} keys");
}

#[test]
fn client_proxy_end_to_end_with_streams() {
    use wukong_core::{Client, ProxyPool, Submitted};
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(LsBenchConfig::tiny(), Arc::clone(&strings));
    let engine = Arc::new(WukongS::with_strings(
        EngineConfig::cluster(2),
        Arc::clone(&strings),
    ));
    engine.load_base(gen.stored_triples());
    for s in gen.schemas() {
        engine.register_stream(s);
    }
    let pool = Arc::new(ProxyPool::new(Arc::clone(&engine), 4));
    let client = Client::connect(Arc::clone(&pool));

    // Register through the client, stream, then execute through it.
    let id = match client
        .query(&lsbench::continuous_query(&gen, 4, 0))
        .expect("registers")
    {
        Submitted::Registered(id) => id,
        other => panic!("expected registration, got {other:?}"),
    };
    for t in gen.generate(0, 1_200) {
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(1_200);

    let (rs, ms) = client.execute(id);
    assert!(!rs.rows.is_empty(), "L4 over a busy window has posts");
    assert!(ms > 0.0);

    // One-shot through the client sees absorbed stream posts.
    match client
        .query("SELECT DISTINCT ?T WHERE { ?Z ht ?T } LIMIT 5")
        .expect("runs")
    {
        Submitted::Results { results, .. } => assert!(!results.rows.is_empty()),
        other => panic!("expected results, got {other:?}"),
    }
    // All four proxies saw traffic.
    assert!(pool.load().iter().filter(|&&l| l > 0).count() >= 2);
}

#[test]
fn mixed_batch_intervals_stay_consistent() {
    // One 100 ms stream and one 1 s stream (the LSBench / CityBench
    // cadences) joined by one query: the SN-VTS plan must keep both
    // visible and consistent despite the interval mismatch.
    let engine = WukongS::new(EngineConfig::cluster(2));
    let ss = engine.strings().clone();
    engine.load_base(ntriples::parse_document(&ss, "r1 conn place1\n").expect("parses"));
    let fast = engine.register_stream(StreamSchema::timeless(StreamId(0), "Fast", 100));
    let slow = engine.register_stream(StreamSchema::timeless(StreamId(0), "Slow", 1_000));

    let id = engine
        .register_continuous(
            "REGISTER QUERY q SELECT ?V ?W \
             FROM Fast [RANGE 2s STEP 1s] FROM Slow [RANGE 2s STEP 1s] \
             WHERE { GRAPH Fast { r1 fastval ?V } . GRAPH Slow { r1 slowval ?W } }",
        )
        .expect("register");

    // Fire promptly as data arrives (a live deployment's loop); firing
    // long after ingestion would read windows the GC has already swept.
    let mut firings = Vec::new();
    for ts in (50..5_000).step_by(100) {
        let t = ntriples::parse_tuple(&ss, &format!("r1 fastval f{ts} {ts}"), 1).expect("tuple");
        engine.ingest(fast, t.triple, t.timestamp);
        if ts % 1_000 == 50 {
            let t =
                ntriples::parse_tuple(&ss, &format!("r1 slowval s{ts} {ts}"), 1).expect("tuple");
            engine.ingest(slow, t.triple, t.timestamp);
        }
        engine.advance_time(ts);
        firings.extend(engine.fire_ready());
    }
    engine.advance_time(5_000);
    firings.extend(engine.fire_ready());

    // Both streams reach the same stable horizon.
    assert_eq!(engine.stable_ts(fast), 5_000);
    assert_eq!(engine.stable_ts(slow), 5_000);

    let (rs, _) = engine.execute_registered(id);
    // 2 s windows: 20 fast values × 2 slow values.
    assert_eq!(rs.rows.len(), 40);

    // Data-driven firing advanced through every 1 s step, each with a
    // live window.
    assert!(
        firings.len() >= 4,
        "expected ≥4 firings, got {}",
        firings.len()
    );
    assert!(firings.iter().all(|f| !f.results.is_empty()));
}

#[test]
fn language_features_agree_across_exec_modes() {
    // OPTIONAL / UNION / NOT EXISTS / GROUP BY / ORDER BY / DISTINCT on a
    // multi-node deployment must answer identically in-place and
    // fork-join (both drivers wire the extended operators).
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(LsBenchConfig::tiny(), Arc::clone(&strings));
    let stored = gen.stored_triples();
    let timeline = gen.generate(0, 1_500);

    let queries = [
        // OPTIONAL over a stream window.
        "REGISTER QUERY q1 SELECT ?X ?Z ?T FROM PO [RANGE 1s STEP 100ms] \
         WHERE { GRAPH PO { ?X po ?Z } OPTIONAL { GRAPH PO { ?Z ht ?T } } }",
        // UNION of two stream alternatives.
        "REGISTER QUERY q2 SELECT ?X ?Z FROM PO [RANGE 1s STEP 100ms] \
         FROM PH [RANGE 1s STEP 100ms] \
         WHERE { GRAPH PO { ?X po ?Z } UNION { GRAPH PH { ?X ph ?Z } } }",
        // NOT EXISTS against the stored graph.
        "REGISTER QUERY q3 SELECT ?X ?Z FROM PO [RANGE 1s STEP 100ms] \
         WHERE { GRAPH PO { ?X po ?Z } FILTER NOT EXISTS { ?X ty User } }",
        // GROUP BY + COUNT over a window.
        "REGISTER QUERY q4 SELECT ?X COUNT(?Z) FROM PO-L [RANGE 1s STEP 100ms] \
         WHERE { GRAPH PO-L { ?X li ?Z } } GROUP BY ?X",
        // DISTINCT + ORDER BY + LIMIT.
        "REGISTER QUERY q5 SELECT DISTINCT ?X FROM PO [RANGE 1s STEP 100ms] \
         WHERE { GRAPH PO { ?X po ?Z } } ORDER BY ?X LIMIT 5",
    ];

    type QueryOutput = (Vec<Vec<wukong_rdf::Vid>>, Vec<Vec<Option<f64>>>);
    let mut reference: Option<Vec<QueryOutput>> = None;
    for mode in [ExecMode::InPlace, ExecMode::ForkJoin] {
        let engine = WukongS::with_strings(
            EngineConfig {
                exec_mode: mode,
                ..EngineConfig::cluster(4)
            },
            Arc::clone(&strings),
        );
        engine.load_base(stored.iter().copied());
        for s in gen.schemas() {
            engine.register_stream(s);
        }
        for t in &timeline {
            engine.ingest(t.stream, t.triple, t.timestamp);
        }
        engine.advance_time(1_500);

        let mut all = Vec::new();
        for q in &queries {
            let id = engine.register_continuous(q).expect("register");
            let (rs, _) = engine.execute_registered(id);
            let mut rows = rs.rows;
            // ORDER BY output order is part of the contract; others sort
            // for comparison.
            if !q.contains("ORDER BY") {
                rows.sort();
            }
            all.push((rows, rs.group_aggregates));
        }
        match &reference {
            None => reference = Some(all),
            Some(r) => {
                for (i, (got, exp)) in all.iter().zip(r.iter()).enumerate() {
                    assert_eq!(got, exp, "query #{i} diverged in {mode:?}");
                }
            }
        }
    }
    // The queries actually produced data (non-vacuous comparison).
    let r = reference.expect("ran");
    assert!(r.iter().filter(|(rows, _)| !rows.is_empty()).count() >= 3);
}
