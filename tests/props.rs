//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use wukong_core::checkpoint::{Checkpoint, LoggedBatch, LoggedQuery};
use wukong_rdf::{Dir, Key, Pid, StreamTuple, Triple, Vid};
use wukong_store::{
    BaseStore, IndexBatch, SnapshotId, StreamIndex, TransientSlice, TransientStore,
};
use wukong_stream::{SnVtsPlanner, StalenessBound, Vts};

fn arb_triple() -> impl Strategy<Value = Triple> {
    (1..200u64, 1..8u64, 1..200u64).prop_map(|(s, p, o)| Triple::new(Vid(s), Pid(p), Vid(o)))
}

/// The committed regression file must be found from the integration-test
/// context (cwd is the package root, `file!()` is workspace-relative) and
/// parse to at least the replay smoke seed — otherwise persisted failure
/// seeds would silently stop replaying.
#[test]
fn regression_file_resolves_and_parses() {
    let path = proptest::regressions_path(file!(), env!("CARGO_MANIFEST_DIR"))
        .expect("tests/props.proptest-regressions must be discoverable");
    let seeds = proptest::parse_regressions(&std::fs::read_to_string(path).unwrap());
    assert!(!seeds.is_empty(), "smoke seed must parse");
}

proptest! {
    /// Key packing is a bijection over its domain.
    #[test]
    fn key_roundtrip(vid in 0..=wukong_rdf::MAX_VID, pid in 0..=wukong_rdf::MAX_PID, dir in 0..2u8) {
        let d = if dir == 0 { Dir::In } else { Dir::Out };
        let k = Key::new(Vid(vid), Pid(pid), d);
        prop_assert_eq!(k.vid(), Vid(vid));
        prop_assert_eq!(k.pid(), Pid(pid));
        prop_assert_eq!(k.dir(), d);
        prop_assert_eq!(Key::from_raw(k.raw()), k);
    }

    /// Out-edges and in-edges always mirror each other, and index
    /// vertices stay duplicate-free, for any insertion sequence.
    #[test]
    fn store_out_in_symmetry(triples in proptest::collection::vec(arb_triple(), 1..200)) {
        let mut st = BaseStore::new();
        for &t in &triples {
            st.insert_base(t);
        }
        let sn = SnapshotId::BASE;
        for &t in &triples {
            // Every (s,p,o) insertion is visible from both sides with the
            // same multiplicity.
            let outs = st.neighbors_at(t.out_key(), sn);
            let ins = st.neighbors_at(t.in_key(), sn);
            let m_out = outs.iter().filter(|&&v| v == t.o).count();
            let m_in = ins.iter().filter(|&&v| v == t.s).count();
            prop_assert_eq!(m_out, m_in);
            prop_assert!(m_out >= 1);
            // The index vertices mention both endpoints exactly once.
            let idx_out = st.neighbors_at(Key::index(t.p, Dir::Out), sn);
            prop_assert_eq!(idx_out.iter().filter(|&&v| v == t.s).count(), 1);
            let idx_in = st.neighbors_at(Key::index(t.p, Dir::In), sn);
            prop_assert_eq!(idx_in.iter().filter(|&&v| v == t.o).count(), 1);
        }
    }

    /// Snapshot visibility is monotone and consolidation changes neither
    /// visibility at live snapshots nor logical offsets.
    #[test]
    fn snapshot_monotonicity_and_consolidation(
        batches in proptest::collection::vec(proptest::collection::vec(arb_triple(), 1..20), 1..8),
        consolidate_upto in 0..8u64,
    ) {
        let mut st = BaseStore::new();
        let mut rc = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            for &t in batch {
                st.insert_at(t, SnapshotId(i as u64 + 1), &mut rc);
            }
        }
        let last = SnapshotId(batches.len() as u64);
        // Record visibility at the final snapshot, per key length.
        let key = batches[0][0].out_key();
        let full_before = st.neighbors_at(key, last);
        let mut lens = Vec::new();
        for snv in 0..=batches.len() as u64 {
            lens.push(st.len_at(key, SnapshotId(snv)));
        }
        // Monotone in the snapshot number.
        for w in lens.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        st.consolidate(SnapshotId(consolidate_upto));
        // Everything at or above the consolidation point is unchanged.
        prop_assert_eq!(st.neighbors_at(key, last), full_before);
        for snv in consolidate_upto..=batches.len() as u64 {
            prop_assert_eq!(st.len_at(key, SnapshotId(snv)), lens[snv as usize]);
        }
    }

    /// Reading any fat-pointer range equals the matching slice of the
    /// full logical value, before and after consolidation.
    #[test]
    fn read_range_matches_logical_slice(
        n in 1..100u32,
        start in 0..100u32,
        len in 0..100u32,
        upto in 0..5u64,
    ) {
        let mut st = BaseStore::new();
        let mut rc = Vec::new();
        for i in 0..n {
            // Snapshots must be non-decreasing per key (the injector's
            // ordering guarantee).
            st.insert_at(
                Triple::new(Vid(1), Pid(2), Vid(i as u64 + 10)),
                SnapshotId((i as u64) / 20),
                &mut rc,
            );
        }
        let key = Key::new(Vid(1), Pid(2), Dir::Out);
        let full = st.neighbors_at(key, SnapshotId(5));
        let expect: Vec<Vid> = full
            .iter()
            .copied()
            .skip(start as usize)
            .take(len as usize)
            .collect();
        let mut got = Vec::new();
        st.read_range(key, start, len, &mut got);
        prop_assert_eq!(&got, &expect);
        st.consolidate(SnapshotId(upto));
        let mut got2 = Vec::new();
        st.read_range(key, start, len, &mut got2);
        prop_assert_eq!(&got2, &expect);
    }

    /// The stream index finds exactly the per-window appends that a naive
    /// timestamp scan finds.
    #[test]
    fn stream_index_agrees_with_timestamp_scan(
        events in proptest::collection::vec((arb_triple(), 1..50u64), 1..100),
        lo in 0..60u64,
        span in 0..30u64,
    ) {
        // Group events into batches by timestamp (sorted).
        let mut events = events;
        events.sort_by_key(|(_, ts)| *ts);
        let mut store = BaseStore::new();
        let mut index = StreamIndex::new();
        let mut log: Vec<(Key, Vid, u64)> = Vec::new();
        let mut i = 0;
        while i < events.len() {
            let ts = events[i].1;
            let mut rc = Vec::new();
            while i < events.len() && events[i].1 == ts {
                let t = events[i].0;
                store.insert_at(t, SnapshotId(1), &mut rc);
                log.push((t.out_key(), t.o, ts));
                log.push((t.in_key(), t.s, ts));
                i += 1;
            }
            index.push_batch(IndexBatch::from_receipts(ts, &rc));
        }
        let hi = lo + span;
        // Check every data key that appears.
        for (key, _, _) in &log {
            let mut got = Vec::new();
            index.neighbors_in(&store, *key, lo, hi, &mut got);
            let mut expect: Vec<Vid> = log
                .iter()
                .filter(|(k, _, ts)| k == key && *ts >= lo && *ts <= hi)
                .map(|(_, v, _)| *v)
                .collect();
            got.sort();
            expect.sort();
            prop_assert_eq!(got, expect);
        }
    }

    /// The transient ring returns exactly the in-window timing tuples and
    /// never exceeds its memory budget by more than one slice.
    #[test]
    fn transient_window_and_budget(
        batches in proptest::collection::vec(proptest::collection::vec(arb_triple(), 0..10), 1..20),
        lo in 0..20u64,
        span in 0..10u64,
    ) {
        let mut store = TransientStore::new(1 << 16);
        let mut log: Vec<(Key, Vid, u64)> = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            let ts = (i as u64 + 1) * 10;
            let tuples: Vec<StreamTuple> = batch
                .iter()
                .map(|&t| StreamTuple::timing(t, ts))
                .collect();
            for t in &tuples {
                log.push((t.triple.out_key(), t.triple.o, ts));
            }
            store.push_batch(TransientSlice::from_batch(ts, &tuples));
        }
        let hi = (lo + span) * 10;
        let lo = lo * 10;
        let evicted = store.evicted_slices();
        for (key, _, _) in &log {
            let mut got = store.neighbors_in(*key, lo, hi);
            let mut expect: Vec<Vid> = log
                .iter()
                .filter(|(k, _, ts)| k == key && *ts >= lo && *ts <= hi
                        // Budget eviction may have dropped old slices.
                        && *ts > evicted * 10)
                .map(|(_, v, _)| *v)
                .collect();
            got.sort();
            expect.sort();
            prop_assert_eq!(got, expect);
        }
    }

    /// Stable VTS is the greatest lower bound of the nodes' local VTS.
    #[test]
    fn stable_vts_is_glb(
        entries in proptest::collection::vec(
            proptest::collection::vec(0..1_000u64, 3),
            1..8,
        )
    ) {
        let vts: Vec<Vts> = entries.iter().map(|e| Vts::from_entries(e.clone())).collect();
        let stable = Vts::stable(vts.iter());
        for v in &vts {
            prop_assert!(v.dominates(&stable));
        }
        for s in 0..3 {
            prop_assert!(vts.iter().any(|v| v.get(s) == stable.get(s)));
        }
    }

    /// Snapshot assignment respects plan order: later batches never get
    /// smaller snapshot numbers.
    #[test]
    fn snapshot_assignment_is_monotone(steps in proptest::collection::vec(0..3usize, 1..40)) {
        let mut planner = SnVtsPlanner::new(vec![10, 10, 10], StalenessBound(1));
        planner.announce_next(&Vts::new(3));
        let mut local = Vts::new(3);
        let mut last_sn = [SnapshotId(0); 3];
        for s in steps {
            let next = local.get(s) + 10;
            if let Some(sn) = planner.snapshot_for(s, next) {
                prop_assert!(sn >= last_sn[s]);
                last_sn[s] = sn;
                local.advance(s, next);
                planner.on_vts_update(std::slice::from_ref(&local));
            }
        }
    }

    /// The adaptor conserves tuples: every relevant tuple lands in
    /// exactly one batch, batches are time-ordered with timestamps at
    /// interval boundaries, and heartbeats lose nothing.
    #[test]
    fn adaptor_conserves_tuples(
        deltas in proptest::collection::vec(0..40u64, 1..120),
        interval in 1..5u64,
    ) {
        use wukong_stream::{Adaptor, StreamSchema};
        let interval = interval * 50;
        let schema = StreamSchema::timeless(wukong_rdf::StreamId(0), "S", interval);
        let mut adaptor = Adaptor::new(schema);
        let mut ts = 0u64;
        let mut batches = Vec::new();
        let mut fed = 0usize;
        for (i, d) in deltas.iter().enumerate() {
            ts += d;
            let t = Triple::new(Vid(i as u64 + 1), Pid(1), Vid(1));
            batches.extend(adaptor.push(t, ts));
            fed += 1;
        }
        batches.extend(adaptor.advance_to(ts + interval));

        let collected: usize = batches.iter().map(|b| b.tuples.len()).sum();
        prop_assert_eq!(collected, fed, "tuples lost or duplicated");
        // Batch timestamps are strictly increasing interval multiples.
        for w in batches.windows(2) {
            prop_assert!(w[0].timestamp < w[1].timestamp);
        }
        for b in &batches {
            prop_assert_eq!(b.timestamp % interval, 0);
            // Every tuple's (clamped) timestamp is within its batch.
            for t in &b.tuples {
                prop_assert!(t.timestamp <= b.timestamp);
            }
        }
    }

    /// The parser never panics: arbitrary input produces Ok or Err.
    #[test]
    fn parser_total_on_arbitrary_input(input in ".{0,200}") {
        let ss = wukong_rdf::StringServer::new();
        let _ = wukong_query::parse_query(&ss, &input);
    }

    /// The parser never panics on query-shaped token soup either.
    #[test]
    fn parser_total_on_query_like_input(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()),
                Just("WHERE".to_string()),
                Just("FROM".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("?x".to_string()),
                Just("?y".to_string()),
                Just("po".to_string()),
                Just("Logan".to_string()),
                Just("OPTIONAL".to_string()),
                Just("UNION".to_string()),
                Just("FILTER".to_string()),
                Just("NOT".to_string()),
                Just("EXISTS".to_string()),
                Just("GROUP".to_string()),
                Just("BY".to_string()),
                Just("ORDER".to_string()),
                Just("LIMIT".to_string()),
                Just("CONSTRUCT".to_string()),
                Just("GRAPH".to_string()),
                Just("[RANGE 1s STEP 1s]".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(".".to_string()),
                Just("5".to_string()),
                Just(">".to_string()),
            ],
            0..25,
        )
    ) {
        let ss = wukong_rdf::StringServer::new();
        let _ = wukong_query::parse_query(&ss, &tokens.join(" "));
    }

    /// Checkpoint encode/decode is the identity.
    #[test]
    fn checkpoint_roundtrip(
        vts in proptest::collection::vec(proptest::collection::vec(0..10_000u64, 3), 1..5),
        queries in proptest::collection::vec(
            ("[a-zA-Z ?{}.]{0,60}", proptest::option::of(0..100u16)),
            0..4,
        ),
        batches in proptest::collection::vec((0..5u16, 0..10_000u64, proptest::collection::vec(arb_triple(), 0..10)), 0..10),
    ) {
        let cp = Checkpoint {
            local_vts: vts,
            queries: queries
                .into_iter()
                .map(|(text, construct_target)| LoggedQuery {
                    text,
                    construct_target,
                })
                .collect(),
            batches: batches
                .into_iter()
                .map(|(stream, timestamp, ts)| LoggedBatch {
                    stream,
                    timestamp,
                    tuples: ts.into_iter().map(|t| StreamTuple::timeless(t, timestamp)).collect(),
                })
                .collect(),
        };
        prop_assert_eq!(Checkpoint::decode(&cp.encode()).unwrap(), cp);
    }
}
