//! Worker-count invariance end to end: the same seeded workload produces
//! identical firing sets at 1, 2, 4, and 8 workers, one-shot batches
//! match sequential execution, and crash recovery behaves the same under
//! a parallel engine as under the serial baseline.
//!
//! These are the engine-level determinism guarantees the worker pools
//! promise by construction (list-schedule cost model, index-ordered result
//! merge); here they are checked through the public API with nothing
//! mocked out.

use std::sync::Arc;
use wukong_benchdata::{lsbench, LsBench, LsBenchConfig};
use wukong_core::{EngineConfig, WukongS};
use wukong_rdf::{StringServer, Timestamp, Triple, Vid};
use wukong_stream::StreamSchema;

/// One seeded LSBench workload, generated once and replayed into any
/// number of engines.
struct Workload {
    strings: Arc<StringServer>,
    stored: Vec<Triple>,
    schemas: Vec<StreamSchema>,
    queries: Vec<String>,
    timeline: Vec<(wukong_rdf::StreamId, Triple, Timestamp)>,
    end: Timestamp,
}

fn workload(seed: u64) -> Workload {
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(LsBenchConfig::tiny_seeded(seed), Arc::clone(&strings));
    let stored = gen.stored_triples();
    let schemas = gen.schemas();
    let queries: Vec<String> = (1..=lsbench::CONTINUOUS_CLASSES)
        .map(|c| lsbench::continuous_query(&gen, c, 0))
        .collect();
    let end = 2_000;
    let timeline = gen
        .generate(0, end)
        .into_iter()
        .map(|t| (t.stream, t.triple, t.timestamp))
        .collect();
    Workload {
        strings,
        stored,
        schemas,
        queries,
        timeline,
        end,
    }
}

/// A firing, canonicalized for comparison: `(query registration index,
/// window end, result rows)`. Rows are kept in engine order — the claim
/// under test is byte-identical output, not merely equal row sets.
type Canon = (usize, Timestamp, Vec<Vec<Vid>>);

fn run_at(w: &Workload, workers: usize) -> (Vec<Canon>, wukong_obs::PoolSnapshot) {
    let engine = WukongS::with_strings(
        EngineConfig::cluster(3).with_workers(workers),
        Arc::clone(&w.strings),
    );
    engine.load_base(w.stored.iter().copied());
    for s in w.schemas.clone() {
        engine.register_stream(s);
    }
    let ids: Vec<_> = w
        .queries
        .iter()
        .map(|q| engine.register_continuous(q).expect("registers"))
        .collect();

    let before = engine.cluster().obs().pool().snapshot();
    let mut fed = 0;
    let mut canon = Vec::new();
    for tick in (100..=w.end + 2_000).step_by(100) {
        while fed < w.timeline.len() && w.timeline[fed].2 <= tick {
            let (stream, triple, ts) = w.timeline[fed];
            engine.ingest(stream, triple, ts);
            fed += 1;
        }
        engine.advance_time(tick);
        for f in engine.fire_ready() {
            let qi = ids
                .iter()
                .position(|id| *id == f.query)
                .expect("registered");
            canon.push((qi, f.window_end, f.results.rows));
        }
    }
    let after = engine.cluster().obs().pool().snapshot();
    (canon, before.delta(&after))
}

#[test]
fn same_seed_runs_are_identical_across_worker_counts() {
    let w = workload(17);
    let (baseline, _) = run_at(&w, 1);
    assert!(
        baseline.iter().any(|(_, _, rows)| !rows.is_empty()),
        "workload must produce non-trivial firings for the comparison to mean anything"
    );
    for workers in [2, 4, 8] {
        let (run, _) = run_at(&w, workers);
        assert_eq!(
            run.len(),
            baseline.len(),
            "firing count changed at {workers} workers"
        );
        for (a, b) in baseline.iter().zip(run.iter()) {
            assert_eq!(a, b, "firing diverged at {workers} workers");
        }
    }
}

#[test]
fn parallel_runs_record_pool_activity() {
    let w = workload(18);
    let (_, pool) = run_at(&w, 4);
    assert!(pool.regions > 0, "no parallel regions recorded");
    assert!(pool.tasks >= pool.regions, "regions without tasks");
    assert!(
        pool.modeled_busy_ns <= pool.serial_busy_ns,
        "modeled parallel time can never exceed the serial sum"
    );
}

#[test]
fn one_shot_batch_matches_sequential_execution() {
    let strings = Arc::new(StringServer::new());
    let mut gen = LsBench::new(LsBenchConfig::tiny_seeded(21), Arc::clone(&strings));
    let engine = WukongS::with_strings(
        EngineConfig::cluster(3).with_workers(4),
        Arc::clone(&strings),
    );
    engine.load_base(gen.stored_triples());
    for s in gen.schemas() {
        engine.register_stream(s);
    }
    for t in gen.generate(0, 800) {
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(1_000);

    let texts: Vec<String> = (1..=lsbench::ONESHOT_CLASSES)
        .map(|c| lsbench::oneshot_query(&gen, c, 0))
        .collect();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let batched = engine.one_shot_batch(&refs);
    assert_eq!(batched.len(), refs.len());
    for (text, outcome) in refs.iter().zip(batched) {
        let (batch_rs, _) = outcome.expect("batch query runs");
        let (seq_rs, _) = engine.one_shot(text).expect("sequential query runs");
        assert_eq!(batch_rs.rows, seq_rs.rows, "one-shot diverged: {text}");
        assert_eq!(batch_rs.var_names, seq_rs.var_names);
    }
}

/// The PR 2 recovery drill, replayed under a parallel engine: checkpoint
/// mid-stream, crash, recover, and require the recovered deployment to
/// answer exactly like the original — with the same result at every
/// worker count.
#[test]
fn recovery_outcome_is_worker_count_invariant() {
    fn drill(workers: usize) -> Vec<Vec<Vec<Vid>>> {
        let strings = Arc::new(StringServer::new());
        let mut gen = LsBench::new(LsBenchConfig::tiny_seeded(29), Arc::clone(&strings));
        let cfg = EngineConfig {
            fault_tolerance: true,
            ..EngineConfig::cluster(3).with_workers(workers)
        };
        let engine = WukongS::with_strings(cfg.clone(), Arc::clone(&strings));
        let stored = gen.stored_triples();
        engine.load_base(stored.iter().copied());
        let schemas = gen.schemas();
        for s in schemas.clone() {
            engine.register_stream(s);
        }
        let ids: Vec<usize> = (1..=lsbench::CONTINUOUS_CLASSES)
            .map(|c| {
                engine
                    .register_continuous(&lsbench::continuous_query(&gen, c, 0))
                    .expect("registers")
            })
            .collect();
        let mut cp_at = 700;
        for t in gen.generate(0, 1_500) {
            engine.ingest(t.stream, t.triple, t.timestamp);
            if t.timestamp >= cp_at {
                engine.checkpoint();
                cp_at += 700;
            }
        }
        engine.advance_time(1_500);
        engine.checkpoint();

        let before: Vec<_> = ids
            .iter()
            .map(|&id| engine.execute_registered(id).0.rows)
            .collect();
        let recovered = WukongS::recover(
            cfg,
            stored.iter().copied(),
            schemas,
            &strings,
            &engine.checkpoints(),
        )
        .expect("recovery succeeds");
        assert_eq!(recovered.continuous_count(), ids.len());
        assert_eq!(recovered.stable_sn(), engine.stable_sn());
        for (i, &id) in ids.iter().enumerate() {
            let after = recovered.execute_registered(id).0.rows;
            assert_eq!(
                sorted(after.clone()),
                sorted(before[i].clone()),
                "class L{} diverged after recovery at {workers} workers",
                i + 1
            );
        }
        before
    }

    fn sorted(mut rows: Vec<Vec<Vid>>) -> Vec<Vec<Vid>> {
        rows.sort();
        rows
    }

    let serial = drill(1);
    let parallel = drill(4);
    assert_eq!(
        serial, parallel,
        "pre-crash answers diverged between worker counts"
    );
}
