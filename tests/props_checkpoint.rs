//! Checkpoint wire-format robustness: decoding is *total*. Arbitrary
//! bytes, truncations, and single-byte corruptions must come back as a
//! [`CheckpointError`] (or a benign reinterpretation) — never a panic,
//! never an attacker-sized allocation.

use proptest::prelude::*;
use wukong_core::checkpoint::{Checkpoint, CheckpointError, LoggedBatch, LoggedQuery};
use wukong_rdf::{Pid, StreamTuple, Triple, Vid};

fn arb_query() -> impl Strategy<Value = LoggedQuery> {
    (
        proptest::collection::vec(32..127u8, 0..40),
        proptest::option::of(0..8u16),
    )
        .prop_map(|(text, construct_target)| LoggedQuery {
            text: String::from_utf8(text).expect("ascii"),
            construct_target,
        })
}

fn arb_batch() -> impl Strategy<Value = LoggedBatch> {
    (
        0..4u16,
        0..10_000u64,
        proptest::collection::vec((1..500u64, 1..8u64, 1..500u64, 0..10_000u64, 0..2u8), 0..12),
    )
        .prop_map(|(stream, timestamp, raw)| LoggedBatch {
            stream,
            timestamp,
            tuples: raw
                .into_iter()
                .map(|(s, p, o, ts, kind)| {
                    let t = Triple::new(Vid(s), Pid(p), Vid(o));
                    if kind == 0 {
                        StreamTuple::timeless(t, ts)
                    } else {
                        StreamTuple::timing(t, ts)
                    }
                })
                .collect(),
        })
}

fn arb_checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        // Rectangular local VTS: dims plus a flat pool of timestamps.
        (0..4usize, 0..4usize),
        proptest::collection::vec(0..5_000u64, 16),
        proptest::collection::vec(arb_query(), 0..4),
        proptest::collection::vec(arb_batch(), 0..5),
    )
        .prop_map(|((nodes, streams), pool, queries, batches)| Checkpoint {
            local_vts: (0..nodes)
                .map(|n| {
                    (0..streams)
                        .map(|s| pool[(n * streams + s) % pool.len()])
                        .collect()
                })
                .collect(),
            queries,
            batches,
        })
}

proptest! {
    /// Any checkpoint the engine can produce survives the wire format.
    #[test]
    fn roundtrip_arbitrary(cp in arb_checkpoint()) {
        prop_assert_eq!(Checkpoint::decode(&cp.encode()).as_ref(), Ok(&cp));
    }

    /// Decoding random garbage returns an error (or, in the astronomically
    /// unlikely well-formed case, a value the format round-trips) — it
    /// never panics.
    #[test]
    fn decode_random_bytes_is_total(bytes in proptest::collection::vec(0..=255u8, 0..200)) {
        match Checkpoint::decode(&bytes) {
            Err(_) => {}
            Ok(cp) => prop_assert_eq!(Checkpoint::decode(&cp.encode()).as_ref(), Ok(&cp)),
        }
    }

    /// Every strict prefix of a valid encoding is rejected: each section
    /// guards its reads, so a crash mid-write can never decode.
    #[test]
    fn truncation_always_detected(cp in arb_checkpoint(), at in 0..100_000usize) {
        let bytes = cp.encode();
        let cut = at % bytes.len();
        prop_assert!(Checkpoint::decode(&bytes[..cut]).is_err());
    }

    /// Flip any single byte of a valid encoding: decode must return — a
    /// header flip is detected by name, a payload flip may reinterpret,
    /// but nothing panics or over-allocates.
    #[test]
    fn single_byte_corruption_is_total(
        cp in arb_checkpoint(),
        at in 0..100_000usize,
        mask in 1..=255u8,
    ) {
        let mut bytes = cp.encode().to_vec();
        let i = at % bytes.len();
        bytes[i] ^= mask;
        match Checkpoint::decode(&bytes) {
            Err(e) => {
                if i < 4 {
                    prop_assert_eq!(e, CheckpointError::BadMagic);
                }
            }
            Ok(d) => {
                prop_assert!(i >= 5, "header corruption must not decode");
                prop_assert_eq!(Checkpoint::decode(&d.encode()).as_ref(), Ok(&d));
            }
        }
        if i == 4 {
            prop_assert_eq!(
                Checkpoint::decode(&bytes),
                Err(CheckpointError::BadVersion(2 ^ mask))
            );
        }
    }
}

/// A corrupt record count must fail as `Truncated` immediately, without
/// first allocating count-many records.
#[test]
fn huge_counts_fail_fast_without_allocation() {
    // magic, version, nodes=0, streams=0, then nq = u32::MAX.
    let mut b = vec![0x57, 0x4b, 0x53, 0x43, 2, 0, 0, 0, 0];
    b.extend_from_slice(&u32::MAX.to_be_bytes());
    assert_eq!(Checkpoint::decode(&b), Err(CheckpointError::Truncated));

    // Same with nq = 0 and nb = u32::MAX.
    let mut b = vec![0x57, 0x4b, 0x53, 0x43, 2, 0, 0, 0, 0, 0, 0, 0, 0];
    b.extend_from_slice(&u32::MAX.to_be_bytes());
    assert_eq!(Checkpoint::decode(&b), Err(CheckpointError::Truncated));
}
