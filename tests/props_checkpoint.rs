//! Checkpoint wire-format robustness: decoding is *total* and, since the
//! v3 integrity layout, *tamper-evident*. Arbitrary bytes, truncations,
//! appended garbage, and single-byte corruptions must come back as a
//! [`CheckpointError`] — never a panic, never a silent reinterpretation,
//! never an attacker-sized allocation.

use proptest::prelude::*;
use wukong_core::checkpoint::{Checkpoint, CheckpointError, LoggedBatch, LoggedQuery};
use wukong_rdf::{Pid, StreamTuple, Triple, Vid};

/// v3 header: magic u32 | version u8 | three section lengths u32 |
/// header FNV u64.
const HEADER_LEN: usize = 25;
const VERSION: u8 = 3;

/// FNV-1a, mirroring the encoder's checksum (needed to hand-craft
/// sections that pass integrity but carry malicious payloads).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Assembles a v3 image from raw section payloads, with valid checksums.
fn craft(vts: &[u8], queries: &[u8], batches: &[u8]) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(&0x574b_5343u32.to_be_bytes()); // "WKSC"
    b.push(VERSION);
    for s in [vts, queries, batches] {
        b.extend_from_slice(&(s.len() as u32).to_be_bytes());
    }
    let h = fnv1a(&b);
    b.extend_from_slice(&h.to_be_bytes());
    for s in [vts, queries, batches] {
        b.extend_from_slice(s);
        b.extend_from_slice(&fnv1a(s).to_be_bytes());
    }
    b
}

fn arb_query() -> impl Strategy<Value = LoggedQuery> {
    (
        proptest::collection::vec(32..127u8, 0..40),
        proptest::option::of(0..8u16),
    )
        .prop_map(|(text, construct_target)| LoggedQuery {
            text: String::from_utf8(text).expect("ascii"),
            construct_target,
        })
}

fn arb_batch() -> impl Strategy<Value = LoggedBatch> {
    (
        0..4u16,
        0..10_000u64,
        proptest::collection::vec((1..500u64, 1..8u64, 1..500u64, 0..10_000u64, 0..2u8), 0..12),
    )
        .prop_map(|(stream, timestamp, raw)| LoggedBatch {
            stream,
            timestamp,
            tuples: raw
                .into_iter()
                .map(|(s, p, o, ts, kind)| {
                    let t = Triple::new(Vid(s), Pid(p), Vid(o));
                    if kind == 0 {
                        StreamTuple::timeless(t, ts)
                    } else {
                        StreamTuple::timing(t, ts)
                    }
                })
                .collect(),
        })
}

fn arb_checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        // Rectangular local VTS: dims plus a flat pool of timestamps.
        (0..4usize, 0..4usize),
        proptest::collection::vec(0..5_000u64, 16),
        proptest::collection::vec(arb_query(), 0..4),
        proptest::collection::vec(arb_batch(), 0..5),
    )
        .prop_map(|((nodes, streams), pool, queries, batches)| Checkpoint {
            local_vts: (0..nodes)
                .map(|n| {
                    (0..streams)
                        .map(|s| pool[(n * streams + s) % pool.len()])
                        .collect()
                })
                .collect(),
            queries,
            batches,
        })
}

proptest! {
    /// Any checkpoint the engine can produce survives the wire format.
    #[test]
    fn roundtrip_arbitrary(cp in arb_checkpoint()) {
        prop_assert_eq!(Checkpoint::decode(&cp.encode()).as_ref(), Ok(&cp));
    }

    /// Decoding random garbage returns an error (or, in the astronomically
    /// unlikely well-formed case, a value the format round-trips) — it
    /// never panics.
    #[test]
    fn decode_random_bytes_is_total(bytes in proptest::collection::vec(0..=255u8, 0..200)) {
        match Checkpoint::decode(&bytes) {
            Err(_) => {}
            Ok(cp) => prop_assert_eq!(Checkpoint::decode(&cp.encode()).as_ref(), Ok(&cp)),
        }
    }

    /// Every strict prefix of a valid encoding is rejected: each section
    /// guards its reads, so a crash mid-write can never decode.
    #[test]
    fn truncation_always_detected(cp in arb_checkpoint(), at in 0..100_000usize) {
        let bytes = cp.encode();
        let cut = at % bytes.len();
        prop_assert!(Checkpoint::decode(&bytes[..cut]).is_err());
    }

    /// Bytes appended after the final section are rejected, whatever they
    /// are — a torn write that spliced two images can never decode as the
    /// first one.
    #[test]
    fn trailing_garbage_always_detected(
        cp in arb_checkpoint(),
        tail in proptest::collection::vec(0..=255u8, 1..64),
    ) {
        let mut bytes = cp.encode().to_vec();
        bytes.extend_from_slice(&tail);
        prop_assert_eq!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::TrailingGarbage)
        );
    }

    /// v3 integrity: flip any single byte of a valid encoding and decode
    /// MUST reject it — the header is covered by its own checksum, every
    /// section by one FNV-1a each, so no corruption can silently
    /// reinterpret (the pre-v3 format only promised totality here).
    #[test]
    fn single_byte_corruption_always_rejected(
        cp in arb_checkpoint(),
        at in 0..100_000usize,
        mask in 1..=255u8,
    ) {
        let mut bytes = cp.encode().to_vec();
        let i = at % bytes.len();
        bytes[i] ^= mask;
        match Checkpoint::decode(&bytes) {
            Err(e) => {
                if i < 4 {
                    prop_assert_eq!(e, CheckpointError::BadMagic);
                } else if i == 4 {
                    prop_assert_eq!(e, CheckpointError::BadVersion(VERSION ^ mask));
                } else if i < HEADER_LEN {
                    // Length fields and the header FNV itself.
                    prop_assert_eq!(e, CheckpointError::ChecksumMismatch("header"));
                }
            }
            Ok(d) => panic!("byte {i} xor {mask:#04x} decoded cleanly: {d:?}"),
        }
    }
}

/// A corrupt record count must fail as `Truncated` immediately, without
/// first allocating count-many records. v3 verifies checksums before any
/// parsing, so the hostile count has to arrive inside a section whose
/// checksum is *valid* — exactly what a compromised (not merely bit-rotted)
/// image would carry.
#[test]
fn huge_counts_fail_fast_without_allocation() {
    // Queries section claims u32::MAX records but holds none.
    let b = craft(
        &[0, 0, 0, 0],           // vts: 0 nodes, 0 streams
        &u32::MAX.to_be_bytes(), // queries: nq = u32::MAX
        &0u32.to_be_bytes(),     // batches: none
    );
    assert_eq!(Checkpoint::decode(&b), Err(CheckpointError::Truncated));

    // Same for the batches section.
    let b = craft(&[0, 0, 0, 0], &0u32.to_be_bytes(), &u32::MAX.to_be_bytes());
    assert_eq!(Checkpoint::decode(&b), Err(CheckpointError::Truncated));
}

/// Garbage *inside* a section — after its last record but covered by a
/// valid section checksum — is still rejected: each section decoder
/// requires exhaustion.
#[test]
fn intra_section_garbage_rejected() {
    let b = craft(
        &[0, 0, 0, 0, 0xAB], // vts: 0×0 dims, then a stray byte
        &0u32.to_be_bytes(),
        &0u32.to_be_bytes(),
    );
    assert_eq!(
        Checkpoint::decode(&b),
        Err(CheckpointError::TrailingGarbage)
    );
}

/// An unknown version byte is named in the error even when everything
/// else is plausible.
#[test]
fn future_version_rejected_by_name() {
    let mut b = craft(&[0, 0, 0, 0], &0u32.to_be_bytes(), &0u32.to_be_bytes());
    assert!(Checkpoint::decode(&b).is_ok());
    b[4] = 9;
    assert_eq!(Checkpoint::decode(&b), Err(CheckpointError::BadVersion(9)));
}
