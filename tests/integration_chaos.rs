//! Composed-fault chaos, end to end (DESIGN.md §13): corruption is
//! detected before any result leaves poisoned state, quarantined shards
//! rebuild from the checkpoint chain, a bit-rotted chain routes to the
//! pristine backup, a recovery drill converges even while the shedder is
//! actively dropping load, faulted runs are replay-deterministic, and
//! the schedule shrinker returns 1-minimal reproducers.

use std::collections::BTreeMap;
use std::sync::Arc;
use wukong_bench::{ls_workload_seeded, LsWorkload, Scale};
use wukong_benchdata::lsbench;
use wukong_core::{EngineConfig, OverloadPolicy, OverloadState, RecoveryManager, WukongS};
use wukong_net::{shrink_schedule, ChaosEvent, ChaosSchedule, FaultPlan, NodeId};
use wukong_rdf::{Timestamp, Vid};
use wukong_stream::IngestBudget;

const NODES: usize = 4;
const FIRE_EVERY: usize = 250;

fn sorted(mut rows: Vec<Vec<Vid>>) -> Vec<Vec<Vid>> {
    rows.sort();
    rows
}

/// Boots an FT deployment over the shared workload and registers the
/// three continuous LSBench classes.
fn boot(w: &LsWorkload, cfg: EngineConfig) -> WukongS {
    let engine = WukongS::with_strings(cfg, Arc::clone(&w.strings));
    engine.load_base(w.stored.iter().copied());
    for schema in w.schemas() {
        engine.register_stream(schema);
    }
    for c in 1..=3 {
        engine
            .register_continuous(&lsbench::continuous_query(&w.bench, c, 0))
            .expect("register");
    }
    engine
}

fn ft_cluster() -> EngineConfig {
    EngineConfig {
        fault_tolerance: true,
        ..EngineConfig::cluster(NODES)
    }
}

/// Drives the timeline on the exp_chaos cadence and folds every firing
/// into `(query, window_end) -> sorted rows` (keeping the latest firing
/// per key, at-least-once style).
fn drive(engine: &WukongS, w: &LsWorkload) -> BTreeMap<(usize, Timestamp), Vec<Vec<Vid>>> {
    let mut fired = BTreeMap::new();
    let mut fold = |firings: Vec<wukong_core::Firing>| {
        for f in firings {
            fired.insert((f.query, f.window_end), sorted(f.results.rows));
        }
    };
    for (i, t) in w.timeline.iter().enumerate() {
        if i > 0 && i % FIRE_EVERY == 0 {
            fold(engine.fire_ready());
        }
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(w.duration);
    fold(engine.fire_ready());
    fired
}

/// The per-query rows of the recovered engine's current windows, against
/// the fault-free control's — convergence after the drill.
fn assert_rows_match(control: &WukongS, recovered: &WukongS) {
    assert_eq!(recovered.continuous_count(), control.continuous_count());
    for id in 0..control.continuous_count() {
        assert_eq!(
            sorted(recovered.execute_registered(id).0.rows),
            sorted(control.execute_registered(id).0.rows),
            "query {id} diverged after recovery"
        );
    }
}

/// Every injected message corruption is caught at the install site
/// before any result is emitted from the poisoned shard; the shard is
/// quarantined; rebuilding from the (pristine) log converges back to the
/// fault-free answers.
#[test]
fn message_corruption_detected_quarantined_and_rebuilt() {
    let w = ls_workload_seeded(Scale::Tiny, 911);
    let control = boot(&w, ft_cluster());
    drive(&control, &w);

    let cfg = EngineConfig {
        fault_plan: Some(FaultPlan::seeded(911).corrupt_messages(1.0)),
        ..ft_cluster()
    };
    let mgr = RecoveryManager::new(
        cfg.clone(),
        w.stored.clone(),
        w.schemas(),
        Arc::clone(&w.strings),
    );
    let engine = boot(&w, cfg);
    drive(&engine, &w);

    let faults = engine.handle().fault_counters();
    let integrity = engine.handle().obs().integrity().snapshot();
    assert!(faults.msgs_corrupted > 0, "plan injected nothing");
    assert_eq!(
        integrity.checksum_fail_message, faults.msgs_corrupted,
        "every corrupted sub-batch must be detected at install"
    );
    assert!(
        !engine.quarantined_nodes().is_empty(),
        "no shard quarantined"
    );
    // Detection-before-emission: anything fired off poisoned state says so.
    for f in engine.fire_ready() {
        assert_eq!(
            f.results.quarantined_shards,
            engine.quarantined_nodes(),
            "firing under quarantine must carry the containment marker"
        );
    }

    let (recovered, report) = mgr.drill_verified(&engine, None).expect("recovery");
    assert!(
        report.quarantined_shards > 0,
        "drill must account the rebuild"
    );
    assert!(
        recovered.quarantined_nodes().is_empty(),
        "rebuild clears quarantine"
    );
    recovered.advance_time(w.duration);
    recovered.fire_ready();
    assert_rows_match(&control, &recovered);
    assert!(
        recovered.scrub().is_empty(),
        "rebuilt state must scrub clean"
    );
}

/// A bit-rotted checkpoint chain fails its section checksums, recovery
/// falls back to the pristine upstream copy, and the violation is
/// reported — never silently decoded.
#[test]
fn corrupted_checkpoint_chain_falls_back_to_backup() {
    let w = ls_workload_seeded(Scale::Tiny, 912);
    let control = boot(&w, ft_cluster());
    drive(&control, &w);

    let cfg = EngineConfig {
        fault_plan: Some(FaultPlan::seeded(912).corrupt_checkpoints(1.0)),
        ..ft_cluster()
    };
    let mgr = RecoveryManager::new(
        cfg.clone(),
        w.stored.clone(),
        w.schemas(),
        Arc::clone(&w.strings),
    );
    let engine = boot(&w, cfg);
    // Checkpoint mid-run so the chain has a non-empty image to rot.
    let half = w.duration / 2;
    let mut checkpointed = false;
    for (i, t) in w.timeline.iter().enumerate() {
        if i > 0 && i % FIRE_EVERY == 0 {
            engine.fire_ready();
        }
        if !checkpointed && t.timestamp >= half {
            engine.checkpoint();
            checkpointed = true;
        }
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(w.duration);
    engine.fire_ready();

    let (recovered, report) = mgr.drill_verified(&engine, None).expect("recovery");
    let faults = engine.handle().fault_counters();
    assert!(faults.checkpoints_corrupted > 0, "plan rotted nothing");
    assert!(
        report.integrity_violations > 0,
        "checksum rejection must be reported, not silent"
    );
    recovered.advance_time(w.duration);
    recovered.fire_ready();
    assert_rows_match(&control, &recovered);
}

/// PR2 × PR5 interaction: a node outage piles the pending queues past a
/// tight ingest budget, the shedder trips to `Shedding`, and the drill
/// fires *while the engine is actively shedding*. The durable log holds
/// every tuple (logging precedes shedding), so the rebuilt engine
/// converges to the fault-free answers with no outage and no budget
/// pressure during replay.
#[test]
fn recovery_drill_while_shedding_converges() {
    let w = ls_workload_seeded(Scale::Tiny, 913);
    let control = boot(&w, ft_cluster());
    drive(&control, &w);

    let half = w.duration / 2;
    let cfg = EngineConfig {
        // The scheduled outage stalls the stable VTS, so pending piles
        // up behind the dead node and the budget starts shedding.
        fault_plan: Some(FaultPlan::seeded(913).kill_at(NodeId(2), half)),
        overload: OverloadPolicy {
            catchup_quiet_ms: 1_000_000, // never catch up: stay in Shedding
            ..OverloadPolicy::default()
        },
        ..ft_cluster()
    }
    // Wider than any single batch (replay drains batch-by-batch and must
    // not re-shed) but narrower than the outage pileup.
    .with_ingest_budget(Some(IngestBudget::tuples(24)));
    let mgr = RecoveryManager::new(
        cfg.clone(),
        w.stored.clone(),
        w.schemas(),
        Arc::clone(&w.strings),
    );
    let engine = boot(&w, cfg);

    let mut checkpointed = false;
    for t in &w.timeline {
        if !checkpointed && t.timestamp >= half {
            engine.checkpoint();
            checkpointed = true;
        }
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    assert_eq!(
        engine.overload_state(),
        OverloadState::Shedding,
        "budget must have tripped during the outage"
    );
    assert!(engine.total_shed() > 0, "nothing was shed");

    let (recovered, report) = mgr.drill_verified(&engine, None).expect("recovery");
    assert!(report.replayed_batches > 0);
    recovered.advance_time(w.duration);
    recovered.fire_ready();
    assert_eq!(recovered.overload_state(), OverloadState::Normal);
    assert_rows_match(&control, &recovered);
    assert!(recovered.scrub().is_empty());
}

/// The invariant scrubber stays silent on a healthy, fault-free run —
/// its findings under chaos are signal, not noise.
#[test]
fn healthy_run_scrubs_clean() {
    let w = ls_workload_seeded(Scale::Tiny, 914);
    let engine = boot(&w, ft_cluster());
    for (i, t) in w.timeline.iter().enumerate() {
        if i > 0 && i % FIRE_EVERY == 0 {
            engine.fire_ready();
            assert!(
                engine.scrub().is_empty(),
                "healthy run tripped the scrubber"
            );
        }
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(w.duration);
    engine.fire_ready();
    assert!(engine.scrub().is_empty());
}

/// A faulted cell is replay-deterministic: the same schedule over the
/// same workload produces byte-identical firing maps — the property the
/// shrinker's re-runs (and any bug report carrying a seed) depend on.
#[test]
fn faulted_run_is_deterministic() {
    let w = ls_workload_seeded(Scale::Tiny, 915);
    let run = || {
        let cfg = EngineConfig {
            fault_plan: Some(
                FaultPlan::seeded(915)
                    .kill_at(NodeId(1), w.duration / 3)
                    .lossy(0.05, 0.05)
                    .corrupt_messages(0.01),
            ),
            ..ft_cluster()
        };
        let engine = boot(&w, cfg);
        drive(&engine, &w)
    };
    assert_eq!(
        run(),
        run(),
        "same schedule, same workload, different firings"
    );
}

/// The shrinker returns a 1-minimal schedule: the failure survives every
/// step of the reduction, and no single event can be removed from the
/// result without losing it.
#[test]
fn shrinker_is_one_minimal() {
    let schedule = ChaosSchedule::generate(42, NODES as u16, 4_000);
    assert!(!schedule.events.is_empty());
    // Synthetic failure: any schedule still carrying a kill *or* lossy
    // links "fails" — the minimal reproducer is a single such event.
    let fails = |s: &ChaosSchedule| {
        s.events
            .iter()
            .any(|e| matches!(e, ChaosEvent::Kill { .. } | ChaosEvent::LossyLinks { .. }))
    };
    let mut seeded = schedule;
    if !fails(&seeded) {
        seeded.events.push(ChaosEvent::Kill { node: 1, at_ms: 10 });
    }
    let minimal = shrink_schedule(seeded, fails);
    assert!(fails(&minimal), "shrinking lost the failure");
    assert_eq!(
        minimal.events.len(),
        1,
        "reproducer is not minimal: {minimal:?}"
    );
    for i in 0..minimal.events.len() {
        assert!(
            !fails(&minimal.without(i)),
            "event {i} is removable — not 1-minimal"
        );
    }
}

/// Schedule generation is a pure function of the seed, and distinct
/// seeds explore distinct compositions.
#[test]
fn chaos_generation_is_deterministic_and_diverse() {
    let a = ChaosSchedule::generate(1234, NODES as u16, 10_000);
    let b = ChaosSchedule::generate(1234, NODES as u16, 10_000);
    assert_eq!(a, b);
    assert_eq!(a.describe(), b.describe());
    let distinct = (0..16)
        .map(|s| ChaosSchedule::generate(s, NODES as u16, 10_000).describe())
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    assert!(
        distinct >= 12,
        "seeds barely vary the schedules: {distinct}/16"
    );
}
