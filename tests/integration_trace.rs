//! Integration tests for the causal tracing layer (DESIGN.md §14):
//! ring wraparound accounting, same-seed trace determinism at the
//! engine level, and the `trace_dump` schema-v8 golden round-trip.

use std::sync::Arc;
use wukong_bench::{ls_workload_seeded, Scale, JSON_SCHEMA_VERSION};
use wukong_benchdata::lsbench;
use wukong_core::{EngineConfig, WukongS};
use wukong_obs::trace::{
    firing_meta_json, BatchId, EventKind, FiringId, Marker, TraceEvent, TraceRecorder,
};
use wukong_obs::{json, Stage};

/// A full thread ring overwrites oldest-first, keeps the newest
/// `capacity` events in causal order, and counts every eviction.
#[test]
fn ring_wraparound_keeps_newest_events() {
    let rec = Arc::new(TraceRecorder::with_capacity(8));
    for i in 0..20u64 {
        rec.marker(Marker::Hold, FiringId::NONE, BatchId::mint(0, i), i);
    }
    let snap = rec.snapshot();
    assert_eq!(snap.events, 20, "every emission counts");
    assert_eq!(snap.evicted, 12, "overwritten slots count as evicted");

    let events = rec.merged_events();
    assert_eq!(events.len(), 8, "ring retains exactly its capacity");
    let args: Vec<u64> = events.iter().map(|e| e.arg).collect();
    assert_eq!(args, (12..20).collect::<Vec<_>>(), "newest events survive");
    assert!(
        events.windows(2).all(|w| w[0].seq < w[1].seq),
        "merged events stay in causal order"
    );
}

/// A [`TraceEvent`] flattened to its deterministic fields:
/// `(seq, kind, code, firing, batch, arg)`.
type FlatEvent = (u64, u8, u8, u64, u64, u64);

/// Normalizes a recorder's merged events for cross-run comparison:
/// everything is deterministic except an Exit's elapsed-ns payload.
fn normalized_events(rec: &Arc<TraceRecorder>) -> Vec<FlatEvent> {
    rec.merged_events()
        .iter()
        .map(|e| {
            let arg = if e.event_kind() == Some(EventKind::Exit) {
                0
            } else {
                e.arg
            };
            (e.seq, e.kind, e.code, e.firing.0, e.batch.raw(), arg)
        })
        .collect()
}

fn traced_run(seed: u64) -> (Vec<FlatEvent>, Vec<String>, u64) {
    let w = ls_workload_seeded(Scale::Tiny, seed);
    let engine = WukongS::with_strings(
        EngineConfig::cluster(2).with_workers(1),
        Arc::clone(&w.strings),
    );
    engine.load_base(w.stored.iter().copied());
    for schema in w.schemas() {
        engine.register_stream(schema);
    }
    engine
        .register_continuous(&lsbench::continuous_query(&w.bench, 1, 0))
        .expect("register");
    for t in &w.timeline {
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(w.duration);
    let firings = engine.fire_ready();
    assert!(!firings.is_empty(), "the workload must fire");

    let rec = Arc::clone(engine.handle().trace());
    let snap = rec.snapshot();
    let metas = (1..=snap.firings)
        .filter_map(|i| rec.firing_meta(FiringId(i)))
        .map(|m| firing_meta_json(&m).to_string_compact())
        .collect();
    (normalized_events(&rec), metas, snap.firings)
}

/// Two identical seeded runs produce identical trace timelines —
/// sequence numbers, stages, markers, firing ids, batch ids — and
/// identical per-firing lineage. Timing payloads are the only
/// run-dependent bits.
#[test]
fn same_seed_runs_trace_identically() {
    let (ev_a, metas_a, firings_a) = traced_run(7);
    let (ev_b, metas_b, firings_b) = traced_run(7);
    assert!(firings_a > 0, "firings must be minted");
    assert_eq!(firings_a, firings_b, "same firing count");
    assert_eq!(metas_a, metas_b, "same lineage for every firing");
    assert_eq!(ev_a.len(), ev_b.len(), "same event count");
    assert_eq!(ev_a, ev_b, "same causal event sequence");
}

/// Golden round-trip for the schema-v8 `trace_dump`: the dump
/// serializes through the dependency-free JSON writer, parses back to
/// an equal document, carries the causal closure, and every embedded
/// event survives `TraceEvent::from_json ∘ to_json` unchanged.
#[test]
fn trace_dump_round_trips_schema_v8() {
    let rec = Arc::new(TraceRecorder::with_capacity(64));
    let bad = BatchId::mint(3, 1_500);
    let sibling = BatchId::mint(3, 1_000);
    let unrelated = BatchId::mint(9, 77);
    let fid = rec.mint_firing("L2", vec![(3, 500, 1_500)], 9, vec![sibling, bad]);
    {
        let _g = rec.span(Stage::WindowExtract, fid, BatchId::NONE);
        let _g2 = rec.span(Stage::PatternMatch, fid, BatchId::NONE);
    }
    rec.marker(Marker::Hold, FiringId::NONE, unrelated, 7);
    rec.anomaly(Marker::ChecksumFail, fid, bad, 42);

    let dumps = rec.dumps();
    assert_eq!(dumps.len(), 1, "one anomaly, one dump");
    let dump = &dumps[0];

    // Round-trip through the serializer and parser.
    let text = dump.to_string_pretty();
    let parsed = json::parse(&text).expect("dump is valid JSON");
    assert_eq!(&parsed, dump, "serialize/parse round-trip is lossless");

    assert_eq!(
        dump.get("kind").and_then(json::Json::as_str),
        Some("trace_dump")
    );
    assert_eq!(
        dump.get("schema_version").and_then(json::Json::as_u64),
        Some(JSON_SCHEMA_VERSION),
        "the dump is versioned in lockstep with the report schema"
    );
    let trigger = dump.get("trigger").expect("trigger");
    assert_eq!(
        trigger.get("marker").and_then(json::Json::as_str),
        Some(Marker::ChecksumFail.name())
    );
    assert_eq!(
        trigger.get("batch").and_then(json::Json::as_str),
        Some(bad.label().as_str())
    );
    assert_eq!(trigger.get("arg").and_then(json::Json::as_u64), Some(42));

    // The causal closure: the firing's lineage plus the trigger batch,
    // but not the unrelated marker's batch.
    let firing = dump.get("firing").expect("firing meta");
    assert_eq!(firing.get("id").and_then(json::Json::as_u64), Some(fid.0));
    assert_eq!(firing.get("query").and_then(json::Json::as_str), Some("L2"));
    let linked: Vec<&str> = dump
        .get("linked_batches")
        .and_then(json::Json::as_arr)
        .expect("linked_batches")
        .iter()
        .filter_map(json::Json::as_str)
        .collect();
    assert!(linked.contains(&bad.label().as_str()));
    assert!(linked.contains(&sibling.label().as_str()));
    assert!(!linked.contains(&unrelated.label().as_str()));

    // Every embedded event round-trips through the typed decoder, and
    // the unrelated marker is excluded from the causal cut.
    let events = dump
        .get("events")
        .and_then(json::Json::as_arr)
        .expect("events");
    assert!(!events.is_empty());
    for ej in events {
        let e = TraceEvent::from_json(ej).expect("event decodes");
        assert_eq!(&e.to_json(), ej, "event re-encodes identically");
        assert_ne!(e.batch, unrelated, "unrelated events stay out");
    }

    // Anomalies past the dump cap are counted, not stored.
    for _ in 0..2 * TraceRecorder::DUMP_CAP {
        rec.anomaly(Marker::ChecksumFail, fid, bad, 0);
    }
    let snap = rec.snapshot();
    assert_eq!(snap.dumps, TraceRecorder::DUMP_CAP as u64);
    assert!(snap.dumps_suppressed > 0, "overflow dumps are suppressed");
}

/// Engine level: a disabled recorder writes nothing (and dumps nothing)
/// while FiringIds keep being minted, so results and ids never depend
/// on the trace flag; a forced re-plan on an enabled engine leaves a
/// `replan` black box.
#[test]
fn trace_flag_gates_recording_not_results() {
    let w = ls_workload_seeded(Scale::Tiny, 11);
    let run = |trace_on: bool| {
        let engine = WukongS::with_strings(
            EngineConfig::cluster(2).with_trace(trace_on),
            Arc::clone(&w.strings),
        );
        engine.load_base(w.stored.iter().copied());
        for schema in w.schemas() {
            engine.register_stream(schema);
        }
        let id = engine
            .register_continuous(&lsbench::continuous_query(&w.bench, 1, 0))
            .expect("register");
        for t in &w.timeline {
            engine.ingest(t.stream, t.triple, t.timestamp);
        }
        engine.force_replan(id);
        engine.advance_time(w.duration);
        let mut rows: Vec<_> = engine
            .fire_ready()
            .into_iter()
            .map(|f| (f.query, f.window_end, f.results.rows))
            .collect();
        rows.sort();
        (
            rows,
            engine.handle().trace_snapshot(),
            engine.handle().trace().dumps(),
        )
    };

    let (rows_on, snap_on, dumps_on) = run(true);
    let (rows_off, snap_off, dumps_off) = run(false);

    assert_eq!(rows_on, rows_off, "tracing must not change results");
    assert_eq!(
        snap_on.firings, snap_off.firings,
        "ids are minted either way"
    );
    assert!(snap_on.events > 0 && snap_on.enabled);
    assert_eq!(snap_off.events, 0, "disabled recorder writes nothing");
    assert!(dumps_off.is_empty(), "disabled recorder dumps nothing");
    assert!(
        dumps_on.iter().any(|d| {
            d.get("trigger")
                .and_then(|t| t.get("marker"))
                .and_then(json::Json::as_str)
                == Some(Marker::Replan.name())
        }),
        "the forced re-plan must leave a replan black box"
    );
}
