//! Delta-algebra invariants of the incremental execution mode, checked
//! end to end through the public engine API (DESIGN.md §10).
//!
//! Four properties:
//!
//! 1. **Insert then expire ≡ identity.** Tuples that enter a query's
//!    window and later slide out of it must leave no residue: once every
//!    window excludes them, an engine that saw them fires exactly like an
//!    engine that never did.
//! 2. **Mode equivalence.** The firing sequence with
//!    `EngineConfig::incremental` on equals the sequence with it off,
//!    row for row — and the incremental run really takes the maintained
//!    path (obs counters prove it).
//! 3. **CONSTRUCT IStream dedup.** A CONSTRUCT query feeding a derived
//!    stream emits the same derived tuples in both modes: `last_emitted`
//!    suppression composes with delta maintenance.
//! 4. **Recovery resets delta state.** A crash mid-stream recovers into
//!    fresh (rebuilt-on-first-firing) state without changing the
//!    post-recovery firing sequence, at both settings.

use std::sync::Arc;
use wukong_core::{EngineConfig, Firing, WukongS};
use wukong_rdf::{Pid, StreamId, StringServer, Timestamp, Triple, Vid};
use wukong_stream::StreamSchema;

const INTERVAL_MS: u64 = 100;

/// SplitMix64 — the same seeded primitive as the differential harness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Shared vocabulary: ten entities and the two stream predicates the
/// join query reads.
fn vocab(strings: &Arc<StringServer>) -> (Vec<Vid>, Vec<Pid>) {
    let entities = (0..10)
        .map(|i| strings.intern_entity(&format!("e{i}")).expect("interns"))
        .collect();
    let preds = ["ta0", "ta1"]
        .iter()
        .map(|p| strings.intern_predicate(p).expect("interns"))
        .collect();
    (entities, preds)
}

/// A seeded join-heavy timeline on one stream: unique triples, so window
/// contents are sets and multiplicities align trivially across modes.
/// Interning is idempotent, so reusing the engine's string server keeps
/// the IDs aligned with the query text.
fn timeline(
    strings: &Arc<StringServer>,
    seed: u64,
    n: usize,
    lo: Timestamp,
    hi: Timestamp,
) -> Vec<(Triple, Timestamp)> {
    let (e, p) = vocab(strings);
    let mut rng = Rng(seed);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for _ in 0..n {
        let t = Triple::new(
            e[rng.below(10) as usize],
            p[rng.below(2) as usize],
            e[rng.below(10) as usize],
        );
        let ts = lo + rng.below(hi - lo + 1);
        if seen.insert((t.s, t.p, t.o)) {
            out.push((t, ts));
        }
    }
    out.sort_by_key(|(_, ts)| *ts);
    out
}

const JOIN_QUERY: &str = "REGISTER QUERY PJ SELECT ?V0 ?V1 ?V2 \
     FROM S [RANGE 300ms STEP 100ms] \
     WHERE { GRAPH S { ?V0 ta0 ?V1 } GRAPH S { ?V2 ta1 ?V1 } }";

/// Builds an engine with the shared vocabulary, one stream `S`, and the
/// 75%-overlap join query registered.
fn engine_with_join(strings: &Arc<StringServer>, incremental: bool) -> (WukongS, StreamId) {
    let engine = WukongS::with_strings(
        EngineConfig::cluster(2)
            .with_workers(EngineConfig::worker_threads_from_env())
            .with_incremental(incremental),
        Arc::clone(strings),
    );
    let s = engine.register_stream(StreamSchema::timeless(StreamId(0), "S", INTERVAL_MS));
    engine.register_continuous(JOIN_QUERY).expect("registers");
    (engine, s)
}

/// Feeds `tl` tick by tick up to `horizon`, collecting every firing.
fn drive(
    engine: &WukongS,
    stream: StreamId,
    tl: &[(Triple, Timestamp)],
    horizon: Timestamp,
) -> Vec<Firing> {
    let mut fed = 0;
    let mut firings = Vec::new();
    for tick in (INTERVAL_MS..=horizon).step_by(INTERVAL_MS as usize) {
        while fed < tl.len() && tl[fed].1 <= tick {
            engine.ingest(stream, tl[fed].0, tl[fed].1);
            fed += 1;
        }
        engine.advance_time(tick);
        firings.extend(engine.fire_ready());
    }
    assert_eq!(fed, tl.len(), "timeline fully fed");
    firings
}

/// Byte-identical firing sequences: same order, same window ends, same
/// unsorted rows, same aggregates.
fn assert_firings_equal(a: &[Firing], b: &[Firing], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: firing counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.query, y.query, "{what}: firing order differs");
        assert_eq!(x.window_end, y.window_end, "{what}: window ends differ");
        assert_eq!(
            x.results, y.results,
            "{what}: results differ at window {}",
            x.window_end
        );
    }
}

#[test]
fn insert_then_expire_is_identity_on_state() {
    // Engine A sees extra tuples confined to [1, 200]; engine B never
    // does. The query's RANGE is 300ms, so every window whose low edge
    // passes 200 (window_end ≥ 500) excludes the extras — from there on
    // the two maintained engines must fire identically, which means the
    // expired insertions left nothing behind in the retained state.
    let strings = Arc::new(StringServer::new());
    vocab(&strings);
    let extras = timeline(&strings, 11, 30, 1, 200);
    let common = timeline(&strings, 12, 60, 301, 1_200);

    let (a, sa) = engine_with_join(&strings, true);
    let mut merged = extras.clone();
    merged.extend(common.iter().copied());
    merged.sort_by_key(|(_, ts)| *ts);
    let fa = drive(&a, sa, &merged, 1_600);

    let (b, sb) = engine_with_join(&strings, true);
    let fb = drive(&b, sb, &common, 1_600);

    let tail = |f: &[Firing]| -> Vec<Firing> {
        f.iter().filter(|f| f.window_end >= 500).cloned().collect()
    };
    let (ta, tb) = (tail(&fa), tail(&fb));
    assert!(!ta.is_empty(), "post-expiry windows must fire");
    assert_firings_equal(&ta, &tb, "insert-then-expire");
    // And the extras really did matter before they expired (the test is
    // not vacuous): some early window differs between the two engines.
    let head_a: Vec<_> = fa.iter().filter(|f| f.window_end < 500).collect();
    let head_b: Vec<_> = fb.iter().filter(|f| f.window_end < 500).collect();
    assert!(
        head_a
            .iter()
            .zip(&head_b)
            .any(|(x, y)| x.results.rows != y.results.rows),
        "extras never influenced any firing — workload too weak"
    );
}

#[test]
fn incremental_firing_sequence_equals_recompute() {
    let strings = Arc::new(StringServer::new());
    vocab(&strings);
    let tl = timeline(&strings, 21, 90, 1, 1_500);

    let (rec, sr) = engine_with_join(&strings, false);
    let f_rec = drive(&rec, sr, &tl, 2_000);

    let (inc, si) = engine_with_join(&strings, true);
    let f_inc = drive(&inc, si, &tl, 2_000);

    assert!(
        f_rec.iter().any(|f| !f.results.rows.is_empty()),
        "workload produced no rows — vacuous"
    );
    assert_firings_equal(&f_rec, &f_inc, "incremental vs recompute");

    // The equivalence is meaningful only if the incremental engine
    // actually maintained state rather than silently falling back.
    let snap = inc.cluster().obs().incremental().snapshot();
    assert!(snap.rebuild_firings >= 1, "first firing rebuilds");
    assert!(
        snap.incremental_firings > snap.rebuild_firings,
        "most overlapping firings must take the delta path: {snap:?}"
    );
    assert_eq!(snap.fallback_firings, 0, "join plan is incrementalizable");
    assert!(snap.rows_reused > 0, "75% overlap must carry rows over");
    let rec_snap = rec.cluster().obs().incremental().snapshot();
    assert_eq!(
        rec_snap.incremental_firings + rec_snap.rebuild_firings,
        0,
        "mode off must never maintain"
    );
}

#[test]
fn construct_istream_dedup_matches_both_modes() {
    // A CONSTRUCT query with an all-stream body (incrementalizable)
    // feeds a derived stream under IStream semantics: only rows new
    // relative to the previous firing instantiate the template. A
    // downstream query over the derived stream then observes exactly
    // what was emitted. Both the emissions and the downstream firings
    // must be mode-independent.
    let run = |incremental: bool| -> (Vec<Firing>, Vec<Vec<Vid>>) {
        let strings = Arc::new(StringServer::new());
        let (e, p) = vocab(&strings);
        strings.intern_predicate("influences").expect("interns");
        let engine = WukongS::with_strings(
            EngineConfig::cluster(2)
                .with_workers(EngineConfig::worker_threads_from_env())
                .with_incremental(incremental),
            Arc::clone(&strings),
        );
        let s = engine.register_stream(StreamSchema::timeless(StreamId(0), "S", INTERVAL_MS));
        let derived =
            engine.register_stream(StreamSchema::timeless(StreamId(1), "Derived", INTERVAL_MS));
        engine
            .register_construct(
                "REGISTER QUERY derive CONSTRUCT { e0 influences ?V0 } \
                 FROM S [RANGE 300ms STEP 100ms] \
                 WHERE { GRAPH S { ?V0 ta0 ?V1 } GRAPH S { ?V2 ta1 ?V1 } }",
                derived,
            )
            .expect("registers");
        engine
            .register_continuous(
                "REGISTER QUERY downstream SELECT ?W \
                 FROM Derived [RANGE 400ms STEP 200ms] \
                 WHERE { GRAPH Derived { e0 influences ?W } }",
            )
            .expect("registers");

        let mut rng = Rng(31);
        let mut seen = std::collections::HashSet::new();
        let mut tl = Vec::new();
        for _ in 0..70 {
            let t = Triple::new(
                e[rng.below(10) as usize],
                p[rng.below(2) as usize],
                e[rng.below(10) as usize],
            );
            let ts = 1 + rng.below(1_200);
            if seen.insert((t.s, t.p, t.o)) {
                tl.push((t, ts));
            }
        }
        tl.sort_by_key(|(_, ts)| *ts);
        let firings = drive(&engine, s, &tl, 1_800);
        let (rs, _) = engine
            .one_shot("SELECT ?W WHERE { e0 influences ?W }")
            .expect("runs");
        let mut derived_rows = rs.rows;
        derived_rows.sort();
        (firings, derived_rows)
    };

    let (f_rec, d_rec) = run(false);
    let (f_inc, d_inc) = run(true);
    assert!(!d_rec.is_empty(), "CONSTRUCT never emitted — vacuous");
    assert_firings_equal(&f_rec, &f_inc, "CONSTRUCT pipeline");
    assert_eq!(d_rec, d_inc, "derived stream contents differ by mode");
}

#[test]
fn recovery_mid_stream_resets_delta_state() {
    // Crash after 800ms of stream, recover from checkpoints, continue
    // with the rest of the timeline. The post-recovery firing sequence
    // must be identical whether the engine recomputes or maintains —
    // and the maintained engine's first post-recovery firing per query
    // must be a rebuild (recovery re-registers queries with fresh state).
    let strings = Arc::new(StringServer::new());
    vocab(&strings);
    let pre = timeline(&strings, 41, 50, 1, 800);
    let post = timeline(&strings, 42, 40, 801, 1_500);

    let run = |incremental: bool| -> Vec<Firing> {
        let cfg = EngineConfig {
            fault_tolerance: true,
            ..EngineConfig::cluster(2)
        }
        .with_workers(EngineConfig::worker_threads_from_env())
        .with_incremental(incremental);
        let engine = WukongS::with_strings(cfg.clone(), Arc::clone(&strings));
        let s = engine.register_stream(StreamSchema::timeless(StreamId(0), "S", INTERVAL_MS));
        engine.register_continuous(JOIN_QUERY).expect("registers");
        let _ = drive(&engine, s, &pre, 800);
        engine.checkpoint();

        let (recovered, report) = WukongS::recover_with_report(
            cfg,
            std::iter::empty(),
            vec![StreamSchema::timeless(StreamId(0), "S", INTERVAL_MS)],
            &strings,
            &engine.checkpoints(),
        )
        .expect("recovery");
        assert_eq!(report.replayed_queries, 1);
        let before = recovered.cluster().obs().incremental().snapshot();
        let mut fed = 0;
        let mut firings = Vec::new();
        for tick in (900..=2_000u64).step_by(INTERVAL_MS as usize) {
            while fed < post.len() && post[fed].1 <= tick {
                recovered.ingest(s, post[fed].0, post[fed].1);
                fed += 1;
            }
            recovered.advance_time(tick);
            firings.extend(recovered.fire_ready());
        }
        let delta = before.delta(&recovered.cluster().obs().incremental().snapshot());
        if incremental {
            assert!(
                delta.rebuild_firings >= 1,
                "first post-recovery firing must rebuild: {delta:?}"
            );
            assert!(delta.incremental_firings > 0, "then maintain: {delta:?}");
        } else {
            assert_eq!(delta.incremental_firings + delta.rebuild_firings, 0);
        }
        firings
    };

    let f_rec = run(false);
    let f_inc = run(true);
    assert!(
        f_rec.iter().any(|f| !f.results.rows.is_empty()),
        "post-recovery windows produced no rows — vacuous"
    );
    assert_firings_equal(&f_rec, &f_inc, "post-recovery");
}
