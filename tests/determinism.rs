//! Same-seed workload generation is bit-identical; different seeds
//! diverge. Keeps every experiment reproducible run-to-run.

use std::sync::Arc;
use wukong_bench::{city_workload_seeded, ls_workload_seeded, Scale};
use wukong_benchdata::{CityBench, CityBenchConfig, LsBench, LsBenchConfig};
use wukong_rdf::StringServer;

#[test]
fn lsbench_same_seed_identical_streams() {
    let a = ls_workload_seeded(Scale::Tiny, 7);
    let b = ls_workload_seeded(Scale::Tiny, 7);
    assert_eq!(a.stored, b.stored, "stored triples must match");
    assert_eq!(a.timeline.len(), b.timeline.len());
    for (x, y) in a.timeline.iter().zip(b.timeline.iter()) {
        assert_eq!(
            (x.stream, x.triple, x.timestamp),
            (y.stream, y.triple, y.timestamp)
        );
    }
}

#[test]
fn lsbench_different_seed_diverges() {
    let a = ls_workload_seeded(Scale::Tiny, 7);
    let b = ls_workload_seeded(Scale::Tiny, 8);
    let same = a
        .timeline
        .iter()
        .zip(b.timeline.iter())
        .all(|(x, y)| (x.stream, x.triple, x.timestamp) == (y.stream, y.triple, y.timestamp));
    assert!(
        !(same && a.timeline.len() == b.timeline.len()),
        "different seeds must generate different streams"
    );
}

#[test]
fn citybench_same_seed_identical_streams() {
    let a = city_workload_seeded(Scale::Tiny, 11);
    let b = city_workload_seeded(Scale::Tiny, 11);
    assert_eq!(a.stored, b.stored, "stored triples must match");
    assert_eq!(a.timeline.len(), b.timeline.len());
    for (x, y) in a.timeline.iter().zip(b.timeline.iter()) {
        assert_eq!(
            (x.stream, x.triple, x.timestamp),
            (y.stream, y.triple, y.timestamp)
        );
    }
}

/// The seeded test constructors on the generator configs thread the seed
/// all the way into generation.
#[test]
fn generator_test_constructors_are_seeded() {
    let run = |seed: u64| {
        let ss = Arc::new(StringServer::new());
        let mut g = LsBench::new(LsBenchConfig::tiny_seeded(seed), Arc::clone(&ss));
        let stored = g.stored_triples();
        let tl = g.generate(0, 500);
        (stored, tl)
    };
    let (s1, t1) = run(3);
    let (s2, t2) = run(3);
    let (_, t3) = run(4);
    assert_eq!(s1, s2);
    assert_eq!(t1.len(), t2.len());
    assert!(t1
        .iter()
        .zip(t2.iter())
        .all(|(x, y)| (x.stream, x.triple, x.timestamp) == (y.stream, y.triple, y.timestamp)));
    assert!(
        t1.len() != t3.len()
            || !t1.iter().zip(t3.iter()).all(
                |(x, y)| (x.stream, x.triple, x.timestamp) == (y.stream, y.triple, y.timestamp)
            ),
        "seed must change the generated stream"
    );

    let city = |seed: u64| {
        let ss = Arc::new(StringServer::new());
        let mut g = CityBench::new(CityBenchConfig::default().with_seed(seed), Arc::clone(&ss));
        let _ = g.stored_triples();
        g.generate(0, 500)
    };
    let c1 = city(5);
    let c2 = city(5);
    assert_eq!(c1.len(), c2.len());
    assert!(c1
        .iter()
        .zip(c2.iter())
        .all(|(x, y)| (x.stream, x.triple, x.timestamp) == (y.stream, y.triple, y.timestamp)));
}
