//! Offline shim for the `criterion` crate.
//!
//! Provides the API surface `crates/bench/benches/micro.rs` uses —
//! `black_box`, `Criterion::{benchmark_group, bench_function}`,
//! `BenchmarkGroup::{bench_function, bench_with_input, finish}`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple calibrated loop (no
//! statistics, no plots): each benchmark is warmed up briefly, then the
//! mean ns/iter over a fixed measurement window is printed.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(20);
const MEASURE: Duration = Duration::from_millis(100);

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate the batch size.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = WARMUP.as_nanos() as u64 / warm_iters.max(1);
        let batch = (MEASURE.as_nanos() as u64 / per_iter.max(1)).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = batch;
    }

    fn report(&self, name: &str) {
        let per = self.elapsed.as_nanos() as f64 / self.iters.max(1) as f64;
        println!(
            "bench {name:<50} {per:>14.1} ns/iter ({} iters)",
            self.iters
        );
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.report(name);
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.name), |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&id.into(), f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
