//! Offline shim for the `bytes` crate.
//!
//! Implements the slice-of-the-API used by `crates/core/src/checkpoint.rs`
//! and `crates/core/src/engine.rs`: `Bytes` (cheaply clonable immutable
//! buffer), `BytesMut` (append-only builder), and the `Buf`/`BufMut`
//! traits with big-endian integer accessors.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer (full-buffer view; the real
/// crate's sub-slicing is not needed here).
#[derive(Clone, Default, Debug, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(Arc::from(data))
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

/// Growable byte buffer used to build a [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte source; integer reads are big-endian.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Append sink; integer writes are big-endian.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_round_trip() {
        let mut b = BytesMut::new();
        b.put_u8(0xab);
        b.put_u16(0x1234);
        b.put_u32(0xdead_beef);
        b.put_u64(0x0102_0304_0506_0708);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 1 + 2 + 4 + 8 + 3);

        let mut buf: &[u8] = &frozen;
        assert_eq!(buf.get_u8(), 0xab);
        assert_eq!(buf.get_u16(), 0x1234);
        assert_eq!(buf.get_u32(), 0xdead_beef);
        assert_eq!(buf.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(buf.remaining(), 3);
        assert_eq!(&buf[..3], b"xyz");
        buf.advance(3);
        assert!(!buf.has_remaining());
    }
}
