//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace maps `parking_lot` to this path crate. It provides the
//! subset of the API the workspace uses — `Mutex` and `RwLock` with
//! non-poisoning, non-`Result` guard accessors — implemented over
//! `std::sync`. Poisoned locks are recovered transparently, matching
//! parking_lot's "no poisoning" semantics.

use std::fmt;
use std::sync::{self, LockResult};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

fn recover<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.0.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.0.write())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
