//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! The benchmark generators only need `StdRng::seed_from_u64`,
//! `Rng::gen_range` over integer ranges, and `Rng::gen_bool`. The
//! generator is SplitMix64 — deterministic for a given seed, which the
//! workload-reproducibility tests rely on. Note the stream of values is
//! NOT the same as the real rand crate's StdRng (ChaCha12); only the
//! API and determinism contract are preserved.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types `gen_range` accepts; implemented for `Range`/`RangeInclusive`
/// of the integer types the workspace uses.
pub trait SampleRange<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let r = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(r)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                let r = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(r)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator — small, fast, and deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0..1000u64)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0..1000u64)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        let vc: Vec<u64> = (0..16).map(|_| c.gen_range(0..1000u64)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0..=5u32);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.85)).count();
        assert!((8_000..9_000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
