//! Offline shim for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::channel::{unbounded, Sender,
//! Receiver, RecvTimeoutError}` (see `crates/net/src/fabric.rs`), so
//! this shim maps that surface onto `std::sync::mpsc`. std's `Sender`
//! has been `Sync` since Rust 1.72, which is all the fabric needs.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, Sender};
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn round_trip_and_timeout() {
        let (tx, rx) = channel::unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }
}
