//! Offline shim for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this path crate
//! supplies the subset of proptest the workspace's property tests use:
//! the `proptest!` macro, `Strategy` with `prop_map`, range and tuple
//! strategies, a small regex-subset string strategy, `collection::vec`,
//! `option::of`, `prop_oneof!`, `Just`, the `prop_assert*` family,
//! `prop_assume!`, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking — a failing case reports its assert directly;
//! - `prop_assume!` skips the current case instead of resampling, so
//!   heavily-filtered properties see fewer effective cases;
//! - generation is driven by a deterministic per-test SplitMix64 RNG
//!   (override the seed with `PROPTEST_SEED`, the case count with
//!   `PROPTEST_CASES`);
//! - `.proptest-regressions` entries are `cc <u64>` RNG states (the
//!   shim's own format), not upstream's 256-bit seeds. A failing case
//!   prints the `cc` line to persist; the file is read before novel
//!   cases are generated, exactly like upstream, but never auto-written
//!   — committing an entry is a deliberate act (see DESIGN.md §9).

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Seed derived from the test name (stable across runs) unless
    /// `PROPTEST_SEED` overrides it.
    pub fn for_test(name: &str) -> Self {
        if let Some(seed) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            return Self::from_seed(seed);
        }
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// The current RNG state. Captured at the start of each case so a
    /// failure can be replayed exactly with `from_seed(state)`.
    pub fn state(&self) -> u64 {
        self.state
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform usize in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo) as u64 + 1) as usize
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

// ---------------------------------------------------------------------------
// Regression persistence
// ---------------------------------------------------------------------------

/// Locates the committed `.proptest-regressions` file for a test source.
///
/// `source_file` is the caller's `file!()` — a path rustc received, which
/// cargo makes relative to the *workspace* root (for this workspace's
/// integration tests it looks like `crates/bench/../../tests/props.rs`).
/// The test binary's working directory is the *package* root, so the
/// path is tried against the cwd and against `manifest_dir` plus up to
/// two parent hops; the first candidate that exists wins.
pub fn regressions_path(source_file: &str, manifest_dir: &str) -> Option<std::path::PathBuf> {
    let rel = std::path::Path::new(source_file).with_extension("proptest-regressions");
    let bases = [
        std::path::PathBuf::new(),
        std::path::PathBuf::from(manifest_dir),
        std::path::Path::new(manifest_dir).join(".."),
        std::path::Path::new(manifest_dir).join("../.."),
    ];
    bases.iter().map(|b| b.join(&rel)).find(|p| p.is_file())
}

/// Parses `cc <u64>` entries out of a regression file's text. Comments,
/// blanks, and entries in any other format (e.g. upstream proptest's
/// 256-bit hex seeds, which the shim cannot replay) are skipped.
pub fn parse_regressions(text: &str) -> Vec<u64> {
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            let rest = line.strip_prefix("cc ")?;
            rest.split_whitespace().next()?.parse::<u64>().ok()
        })
        .collect()
}

/// The persisted failure seeds for a test source file, replayed by
/// `proptest!` before any novel case is generated.
pub fn persisted_seeds(source_file: &str, manifest_dir: &str) -> Vec<u64> {
    regressions_path(source_file, manifest_dir)
        .and_then(|p| std::fs::read_to_string(p).ok())
        .map(|text| parse_regressions(&text))
        .unwrap_or_default()
}

#[doc(hidden)]
pub fn __run_case<F: FnMut()>(source_file: &str, seed: u64, mut case: F) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut case));
    if let Err(payload) = result {
        eprintln!(
            "proptest shim: case failed; replay it by adding the line\n\
             cc {seed}\n\
             to {}",
            std::path::Path::new(source_file)
                .with_extension("proptest-regressions")
                .display()
        );
        std::panic::resume_unwind(payload);
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        Self { cases }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally-weighted boxed alternatives; built by
/// `prop_oneof!`.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

#[doc(hidden)]
pub fn __box_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

// ---------------------------------------------------------------------------
// Numeric range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i32, i64);

impl Strategy for Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "empty range strategy");
        loop {
            if let Some(c) = char::from_u32(lo + rng.below((hi - lo) as u64) as u32) {
                return c;
            }
        }
    }
}

impl Strategy for bool {
    type Value = bool;
    fn generate(&self, _rng: &mut TestRng) -> bool {
        *self
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// Regex-subset string strategy (`&str` patterns)
// ---------------------------------------------------------------------------

enum Atom {
    Any,
    Class(Vec<char>),
    Literal(char),
}

struct Quantified {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Characters `.` can produce: printable ASCII plus a few awkward ones
/// so parser-totality properties see multi-byte and control input.
const ANY_EXTRA: &[char] = &['\n', '\t', '\u{e9}', '\u{3bb}', '\u{4e2d}', '"', '\\'];

fn parse_pattern(pattern: &str) -> Vec<Quantified> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern:?}");
                i += 1; // consume ']'
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "trailing backslash in {pattern:?}");
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .expect("unterminated quantifier");
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("bad quantifier"),
                            b.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        out.push(Quantified { atom, min, max });
    }
    out
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut s = String::new();
        for q in parse_pattern(self) {
            let n = rng.usize_in(q.min, q.max);
            for _ in 0..n {
                match &q.atom {
                    Atom::Any => {
                        // Mostly printable ASCII, occasionally awkward.
                        if rng.chance(1, 10) {
                            s.push(ANY_EXTRA[rng.below(ANY_EXTRA.len() as u64) as usize]);
                        } else {
                            s.push(char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap());
                        }
                    }
                    Atom::Class(set) => s.push(set[rng.below(set.len() as u64) as usize]),
                    Atom::Literal(c) => s.push(*c),
                }
            }
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Inclusive-exclusive size bounds, as `proptest::collection` accepts.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.lo, self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.chance(3, 4) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (::core::default::Default::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategies = ( $( $strat, )+ );
            let mut __one_case = |__rng: &mut $crate::TestRng| {
                let ( $($arg,)+ ) = $crate::Strategy::generate(&__strategies, __rng);
                $body
            };
            // Committed failure seeds replay before any novel case.
            for __seed in $crate::persisted_seeds(file!(), env!("CARGO_MANIFEST_DIR")) {
                let mut __rng = $crate::TestRng::from_seed(__seed);
                $crate::__run_case(file!(), __seed, || __one_case(&mut __rng));
            }
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                let __seed = __rng.state();
                $crate::__run_case(file!(), __seed, || __one_case(&mut __rng));
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::__box_strategy($strat) ),+ ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skip the current case when the assumption fails. Unlike real
/// proptest this does not resample, so it must appear directly in the
/// `proptest!` body (it expands to `return`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union};
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::from_seed(1);
        let s = (1..5u64, 0..=3u8, 0..2usize);
        for _ in 0..1000 {
            let (a, b, c) = Strategy::generate(&s, &mut rng);
            assert!((1..5).contains(&a));
            assert!(b <= 3);
            assert!(c < 2);
        }
    }

    #[test]
    fn regex_subset() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..500 {
            let s = Strategy::generate(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            let any = Strategy::generate(&".{0,200}", &mut rng);
            assert!(any.chars().count() <= 200);
        }
    }

    #[test]
    fn oneof_and_map_cover_all_arms() {
        let mut rng = TestRng::from_seed(3);
        let s = prop_oneof![
            Just("a".to_string()),
            (0..10u32).prop_map(|v| format!("n{v}")),
        ];
        let mut saw_a = false;
        let mut saw_n = false;
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            saw_a |= v == "a";
            saw_n |= v.starts_with('n');
        }
        assert!(saw_a && saw_n);
    }

    #[test]
    fn regression_parsing_skips_foreign_formats() {
        let text = "\
# comment line
cc 12345 # shrinks to x = 3

cc dc6ae8a402830889320ffb6a3639fa9a56ce520f1d987863f8ce23506199195c # upstream sha format
  cc 42
not an entry
";
        assert_eq!(crate::parse_regressions(text), vec![12345, 42]);
    }

    #[test]
    fn replayed_seed_reproduces_the_case_exactly() {
        let mut a = TestRng::from_seed(7);
        // Burn a few cases, then capture the state a failing case would
        // persist and check from_seed regenerates the same values.
        for _ in 0..5 {
            a.next_u64();
        }
        let seed = a.state();
        let vals: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let mut b = TestRng::from_seed(seed);
        let replayed: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(vals, replayed);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro front-end itself: vec sizes respected, assume skips.
        #[test]
        fn macro_front_end(xs in crate::collection::vec(0..100u64, 1..9), flag in crate::option::of(0..2u8)) {
            prop_assume!(!xs.is_empty());
            prop_assert!(xs.len() < 9);
            prop_assert!(xs.iter().all(|&x| x < 100));
            if let Some(f) = flag {
                prop_assert!(f < 2, "flag out of range: {}", f);
            }
        }
    }
}
