//! Workload construction and engine feeding for the experiments.

use std::sync::Arc;
use wukong_baselines::{
    Composite, CompositePlan, CompositeProfile, ExecBreakdown, SparkLike, SparkMode, WukongExt,
};
use wukong_benchdata::{CityBench, CityBenchConfig, LsBench, LsBenchConfig, TimedTuple};
use wukong_core::{EngineConfig, LatencyRecorder, WukongS};
use wukong_rdf::{StringServer, Timestamp, Triple};
use wukong_stream::StreamSchema;

/// Experiment scale, from `WUKONG_SCALE` (`tiny` | `small` | `paper`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized: sub-second experiments.
    Tiny,
    /// Default: seconds per experiment.
    Small,
    /// Closer to the paper's proportions: minutes per experiment.
    Paper,
}

impl Scale {
    /// Reads the scale from the environment (default `small`).
    pub fn from_env() -> Scale {
        match std::env::var("WUKONG_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("paper") => Scale::Paper,
            _ => Scale::Small,
        }
    }

    /// The LSBench generator configuration at this scale.
    pub fn ls_config(self) -> LsBenchConfig {
        match self {
            Scale::Tiny => LsBenchConfig {
                users: 200,
                rate_scale: 0.002,
                ..LsBenchConfig::default()
            },
            Scale::Small => LsBenchConfig {
                users: 2_000,
                rate_scale: 0.01,
                ..LsBenchConfig::default()
            },
            Scale::Paper => LsBenchConfig {
                users: 20_000,
                posts_per_user: 20,
                likes_per_user: 20,
                rate_scale: 0.05,
                ..LsBenchConfig::default()
            },
        }
    }

    /// Stream time to drive, ms.
    pub fn ls_duration(self) -> Timestamp {
        match self {
            Scale::Tiny => 1_500,
            Scale::Small => 3_000,
            Scale::Paper => 5_000,
        }
    }

    /// Latency samples per query class.
    pub fn runs(self) -> usize {
        match self {
            Scale::Tiny => 20,
            Scale::Small => 100,
            Scale::Paper => 100,
        }
    }
}

/// A fully generated LSBench workload, shareable across engines.
pub struct LsWorkload {
    /// The shared string server (all engines must use it).
    pub strings: Arc<StringServer>,
    /// The generator (query rendering needs it).
    pub bench: LsBench,
    /// The initially stored dataset.
    pub stored: Vec<Triple>,
    /// Stream tuples over `[0, duration)`, time-ordered.
    pub timeline: Vec<TimedTuple>,
    /// Stream-time extent of the timeline.
    pub duration: Timestamp,
}

/// The RNG seed experiments run with: `WUKONG_SEED` if set, else the
/// generator default (42). Generation is fully deterministic per seed,
/// so two runs with the same seed see identical triple streams.
pub fn seed_from_env() -> u64 {
    std::env::var("WUKONG_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Builds the LSBench workload at `scale`, seeded from `WUKONG_SEED`.
pub fn ls_workload(scale: Scale) -> LsWorkload {
    ls_workload_seeded(scale, seed_from_env())
}

/// Builds the LSBench workload at `scale` with an explicit RNG seed.
pub fn ls_workload_seeded(scale: Scale, seed: u64) -> LsWorkload {
    ls_workload_with(scale.ls_config().with_seed(seed), scale.ls_duration())
}

/// Builds an LSBench workload with explicit parameters.
pub fn ls_workload_with(cfg: LsBenchConfig, duration: Timestamp) -> LsWorkload {
    let strings = Arc::new(StringServer::new());
    let mut bench = LsBench::new(cfg, Arc::clone(&strings));
    let stored = bench.stored_triples();
    let timeline = bench.generate(0, duration);
    LsWorkload {
        strings,
        bench,
        stored,
        timeline,
        duration,
    }
}

impl LsWorkload {
    /// The five stream schemas.
    pub fn schemas(&self) -> Vec<StreamSchema> {
        self.bench.schemas()
    }
}

/// A fully generated CityBench workload.
pub struct CityWorkload {
    /// The shared string server.
    pub strings: Arc<StringServer>,
    /// The generator.
    pub bench: CityBench,
    /// Stored metadata.
    pub stored: Vec<Triple>,
    /// Stream tuples over `[0, duration)`.
    pub timeline: Vec<TimedTuple>,
    /// Stream-time extent.
    pub duration: Timestamp,
}

/// Builds the CityBench workload (paper-default rates; `scale` only
/// adjusts the driven duration — the real benchmark is tiny, §6.10),
/// seeded from `WUKONG_SEED`.
pub fn city_workload(scale: Scale) -> CityWorkload {
    city_workload_seeded(scale, seed_from_env())
}

/// Builds the CityBench workload at `scale` with an explicit RNG seed.
pub fn city_workload_seeded(scale: Scale, seed: u64) -> CityWorkload {
    let strings = Arc::new(StringServer::new());
    let mut bench = CityBench::new(
        CityBenchConfig::default().with_seed(seed),
        Arc::clone(&strings),
    );
    let stored = bench.stored_triples();
    let duration = match scale {
        Scale::Tiny => 5_000,
        Scale::Small => 12_000,
        Scale::Paper => 30_000,
    };
    let timeline = bench.generate(0, duration);
    CityWorkload {
        strings,
        bench,
        stored,
        timeline,
        duration,
    }
}

impl CityWorkload {
    /// The eleven stream schemas.
    pub fn schemas(&self) -> Vec<StreamSchema> {
        self.bench.schemas()
    }
}

/// Boots a Wukong+S deployment and feeds it a workload.
pub fn feed_engine(
    cfg: EngineConfig,
    strings: &Arc<StringServer>,
    schemas: Vec<StreamSchema>,
    stored: &[Triple],
    timeline: &[TimedTuple],
    duration: Timestamp,
) -> WukongS {
    let engine = WukongS::with_strings(cfg, Arc::clone(strings));
    engine.load_base(stored.iter().copied());
    for schema in schemas {
        engine.register_stream(schema);
    }
    for t in timeline {
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(duration);
    engine
}

/// Boots a composite deployment (Storm/Heron+Wukong or CSPARQL-engine)
/// and feeds it the same workload.
pub fn feed_composite(
    profile: CompositeProfile,
    strings: &Arc<StringServer>,
    stream_names: &[&str],
    stored: &[Triple],
    timeline: &[TimedTuple],
) -> Composite {
    let mut c = Composite::new(profile, Arc::clone(strings));
    c.load_base(stored.iter().copied());
    for name in stream_names {
        c.register_stream(*name);
    }
    for t in timeline {
        c.ingest(t.stream, t.triple, t.timestamp);
    }
    c
}

/// Boots a Spark-like deployment and feeds it the same workload.
pub fn feed_spark(
    mode: SparkMode,
    strings: &Arc<StringServer>,
    stream_names: &[&str],
    stored: &[Triple],
    timeline: &[TimedTuple],
) -> SparkLike {
    let mut s = SparkLike::new(mode, Arc::clone(strings));
    s.load_base(stored.iter().copied());
    for name in stream_names {
        s.register_stream(*name);
    }
    for t in timeline {
        s.ingest(t.stream, t.triple, t.timestamp);
    }
    s
}

/// Boots a Wukong/Ext deployment and feeds it the same workload.
pub fn feed_wukong_ext(
    nodes: usize,
    strings: &Arc<StringServer>,
    stream_names: &[&str],
    stored: &[Triple],
    timeline: &[TimedTuple],
) -> WukongExt {
    let mut e = WukongExt::new(nodes, Arc::clone(strings));
    e.load_base(stored.iter().copied());
    for name in stream_names {
        e.register_stream(*name);
    }
    for t in timeline {
        e.ingest(t.stream, t.triple, t.timestamp);
    }
    e
}

/// Samples a registered Wukong+S query `runs` times.
pub fn sample_continuous(engine: &WukongS, id: usize, runs: usize) -> LatencyRecorder {
    let mut rec = LatencyRecorder::new();
    // One warm-up execution populates the plan cache, as the paper's
    // repeated-run methodology does.
    let _ = engine.execute_registered(id);
    for _ in 0..runs {
        let (_, ms) = engine.execute_registered(id);
        rec.record(ms);
    }
    rec
}

/// Samples a composite query `runs` times; returns latencies and the mean
/// breakdown.
pub fn sample_composite(
    c: &Composite,
    id: usize,
    now: Timestamp,
    plan: CompositePlan,
    runs: usize,
) -> (LatencyRecorder, ExecBreakdown) {
    let mut rec = LatencyRecorder::new();
    let mut sum = ExecBreakdown::default();
    for _ in 0..runs {
        let (_, bd) = c.execute(id, now, plan);
        rec.record(bd.total_ms());
        sum.stream_ms += bd.stream_ms;
        sum.store_ms += bd.store_ms;
        sum.cross_ms += bd.cross_ms;
        sum.crossings = bd.crossings;
    }
    let n = runs.max(1) as f64;
    sum.stream_ms /= n;
    sum.store_ms /= n;
    sum.cross_ms /= n;
    (rec, sum)
}

/// The LSBench stream names in engine registration order.
pub const LS_STREAMS: [&str; 5] = ["PO", "PO-L", "PH", "PH-L", "GPS"];

/// The CityBench stream names in engine registration order.
pub const CITY_STREAMS: [&str; 11] = [
    "VT1", "VT2", "WT", "UL", "PK1", "PK2", "PL1", "PL2", "PL3", "PL4", "PL5",
];
