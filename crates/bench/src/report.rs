//! Table formatting helpers for the experiment binaries.

/// Formats milliseconds the way the paper's tables do: two decimals below
/// 10 ms, one decimal below 100, integral (with thousands separators)
/// above.
pub fn fmt_ms(ms: f64) -> String {
    if ms < 0.1 {
        format!("{ms:.3}")
    } else if ms < 10.0 {
        format!("{ms:.2}")
    } else if ms < 100.0 {
        format!("{ms:.1}")
    } else {
        let n = ms.round() as i64;
        let s = n.to_string();
        let mut out = String::new();
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(c);
        }
        out
    }
}

/// Prints a table header row plus a separator.
pub fn print_header(title: &str, cols: &[&str]) {
    println!("\n=== {title} ===");
    print_row(cols.iter().map(|s| s.to_string()).collect());
    println!("{}", "-".repeat(cols.len() * 14));
}

/// Prints one table row with fixed-width columns.
pub fn print_row(cells: Vec<String>) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>13}")).collect();
    println!("{}", row.join(" "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_match_paper_style() {
        assert_eq!(fmt_ms(0.13), "0.13");
        assert_eq!(fmt_ms(0.013), "0.013");
        assert_eq!(fmt_ms(30.38), "30.4");
        assert_eq!(fmt_ms(1984.4), "1,984");
        assert_eq!(fmt_ms(155.0), "155");
    }
}
