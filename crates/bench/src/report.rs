//! Table formatting helpers for the experiment binaries, plus the
//! machine-readable `--json <path>` report every binary supports.

use std::path::PathBuf;

use wukong_core::metrics::LatencyRecorder;
use wukong_core::{RecoveryReport, WukongS};
use wukong_obs::{
    FaultSnapshot, HistogramSnapshot, IncrementalSnapshot, IntegritySnapshot, Json,
    OverloadSnapshot, PlanSnapshot, PoolSnapshot, RegistrySnapshot, TraceSnapshot,
};

/// Version stamped into every JSON report as `schema_version`. Bump when
/// the document layout changes incompatibly.
///
/// Version history: 1 = initial layout; 2 = added the `faults` and
/// `recovery` top-level members (fault-injection counters and
/// checkpoint-replay metrics); 3 = added the `pool` top-level member
/// (worker-pool counters: regions, tasks, steals, queue depth, serial
/// vs modeled busy time); 4 = added the `incremental` top-level member
/// (delta-maintenance counters: maintained / rebuild / fallback firings
/// and rows reused vs recomputed vs retracted); 5 = added the `overload`
/// top-level member (bounded-ingest counters: shed events, tuples shed,
/// admission rejections, state transitions, catch-up replays, degraded
/// firings); 6 = added the `plan` top-level member (adaptive-planning
/// counters: plan-cache hits/misses, feedback firings, drift, re-plans,
/// delta rebuilds, cost-model mode decisions, and the modeled
/// `edges_traversed` work metric); 7 = added the `integrity` top-level
/// member (state-integrity counters: per-site checksum failures,
/// scrubber violations, quarantines, rebuilds) and extended `recovery`
/// with `integrity_violations` and `quarantined_shards`; 8 = added the
/// `trace` top-level member (flight-recorder counters: enabled, events
/// recorded/evicted, firings minted, anomaly dumps held/suppressed) and
/// extended `recovery` with `replayed_batch_ids` (causal batch labels of
/// the replayed log, capped at the first 32).
pub const JSON_SCHEMA_VERSION: u64 = 8;

/// Collects an experiment's machine-readable results and writes them as
/// one schema-stable JSON document when the binary was invoked with
/// `--json <path>`. When the flag is absent every method is a cheap
/// no-op, so binaries record unconditionally.
///
/// Document layout (`schema_version` 8):
///
/// ```json
/// {
///   "schema_version": 8,
///   "experiment": "table2_latency_single",
///   "latency_ms": { "<series>": {"samples", "p50", "p90", "p99", "p999", "mean"} },
///   "counters":   { "<name>": <number> },
///   "fabric":     { "one_sided_reads", "messages", "bytes_read", "bytes_sent", "charged_ns" },
///   "faults":     { "msgs_dropped", "retransmits", "rpc_timeouts", ... },
///   "recovery":   { "recovery_ms", "replayed_batches", "replayed_queries",
///                   "dedup_suppressed", "restored_stable_sn",
///                   "integrity_violations", "quarantined_shards",
///                   "replayed_batch_ids" },
///   "pool":       { "tasks", "regions", "steals", "max_queue_depth",
///                   "serial_busy_ns", "modeled_busy_ns", "region_wall_ns" },
///   "incremental": { "incremental_firings", "rebuild_firings", "fallback_firings",
///                    "rows_reused", "rows_recomputed", "rows_retracted" },
///   "overload":   { "sheds_drop_oldest", "sheds_sampled", "tuples_shed",
///                   "admission_rejected", "state_transitions", "catchup_replays",
///                   "catchup_replayed_tuples", "degraded_firings",
///                   "incremental_rebuilds" },
///   "plan":       { "cache_hits", "cache_misses", "feedback_firings",
///                   "drifted_firings", "replans", "delta_rebuilds",
///                   "mode_inplace", "mode_forkjoin", "edges_traversed" },
///   "integrity":  { "checksum_fail_batch", "checksum_fail_message",
///                   "checksum_fail_checkpoint", "scrub_violations",
///                   "quarantines", "rebuilds", "rebuild_ns" },
///   "trace":      { "enabled", "events", "evicted", "firings",
///                   "dumps", "dumps_suppressed" },
///   "stages": {
///     "queries": { "<class>":  { "end_to_end_ns": {...}, "<stage>": {...} } },
///     "streams": { "<stream>": { "<stage>": {...} } }
///   }
/// }
/// ```
///
/// `faults` carries every [`FaultSnapshot`] counter (all zero in a
/// fault-free run); `recovery` stays an empty object unless the
/// experiment performed a recovery and called [`BenchJson::recovery`];
/// `pool` carries the worker-pool counters of the captured engine (all
/// zero when every region ran on a single lane — see `wukong-net`'s
/// `WorkerPool` for the modeled-time cost model); `incremental` carries
/// the delta-maintenance counters (all zero unless the engine ran with
/// `EngineConfig::incremental`); `overload` carries the bounded-ingest
/// counters (all zero unless the engine ran with
/// `EngineConfig::ingest_budget`); `plan` carries the adaptive-planning
/// counters (`edges_traversed` accumulates in every run; the rest stay
/// zero unless the engine ran with `EngineConfig::adaptive`);
/// `integrity` carries the state-integrity counters (all zero unless
/// corruption was detected, a shard was quarantined, or the scrubber
/// found a violated invariant).
///
/// where every `{...}` stage/histogram entry carries
/// `{"count", "sum_ns", "p50_ns", "p99_ns"}`.
pub struct BenchJson {
    path: Option<PathBuf>,
    doc: Json,
}

fn histogram_json(h: &HistogramSnapshot) -> Json {
    let mut o = Json::object();
    o.set("count", Json::from(h.count));
    o.set("sum_ns", Json::from(h.sum));
    o.set(
        "p50_ns",
        h.percentile(0.50).map(Json::from).unwrap_or(Json::Null),
    );
    o.set(
        "p99_ns",
        h.percentile(0.99).map(Json::from).unwrap_or(Json::Null),
    );
    o
}

fn stages_json(reg: &RegistrySnapshot) -> Json {
    let mut queries = Json::object();
    for (class, series) in &reg.queries {
        let mut entry = Json::object();
        entry.set("end_to_end_ns", histogram_json(&series.end_to_end));
        for (stage, h) in &series.stages {
            entry.set(stage.name(), histogram_json(h));
        }
        queries.set(class, entry);
    }
    let mut streams = Json::object();
    for (name, series) in &reg.streams {
        let mut entry = Json::object();
        for (stage, h) in &series.stages {
            entry.set(stage.name(), histogram_json(h));
        }
        streams.set(name, entry);
    }
    let mut o = Json::object();
    o.set("queries", queries);
    o.set("streams", streams);
    o
}

impl BenchJson {
    /// Builds a sink for `experiment`, reading `--json <path>` from the
    /// process arguments. Without the flag the sink is inactive.
    pub fn from_env(experiment: &str) -> Self {
        let mut args = std::env::args();
        let mut path = None;
        while let Some(a) = args.next() {
            if a == "--json" {
                path = args.next().map(PathBuf::from);
                if path.is_none() {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                }
            }
        }
        Self::build(experiment, path)
    }

    /// Builds an always-active sink writing to `path` (tests).
    pub fn to_path(experiment: &str, path: impl Into<PathBuf>) -> Self {
        Self::build(experiment, Some(path.into()))
    }

    fn build(experiment: &str, path: Option<PathBuf>) -> Self {
        let mut doc = Json::object();
        doc.set("schema_version", Json::from(JSON_SCHEMA_VERSION));
        doc.set("experiment", Json::from(experiment));
        doc.set("latency_ms", Json::object());
        doc.set("counters", Json::object());
        doc.set("fabric", Json::object());
        doc.set("faults", Json::object());
        doc.set("recovery", Json::object());
        doc.set("pool", Json::object());
        doc.set("incremental", Json::object());
        doc.set("overload", Json::object());
        doc.set("plan", Json::object());
        doc.set("integrity", Json::object());
        doc.set("trace", Json::object());
        doc.set("stages", {
            let mut s = Json::object();
            s.set("queries", Json::object());
            s.set("streams", Json::object());
            s
        });
        BenchJson { path, doc }
    }

    /// Whether a report will actually be written.
    pub fn active(&self) -> bool {
        self.path.is_some()
    }

    fn member(&mut self, key: &str) -> &mut Json {
        match &mut self.doc {
            Json::Obj(map) => map.get_mut(key).expect("member created in build()"),
            _ => unreachable!("doc is an object"),
        }
    }

    /// Records a latency series (percentiles in milliseconds).
    pub fn series(&mut self, name: &str, rec: &LatencyRecorder) {
        if !self.active() {
            return;
        }
        let mut entry = Json::object();
        entry.set("samples", Json::from(rec.len()));
        for (key, p) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0), ("p999", 99.9)] {
            entry.set(key, rec.percentile(p).map(Json::from).unwrap_or(Json::Null));
        }
        entry.set("mean", rec.mean().map(Json::from).unwrap_or(Json::Null));
        self.member("latency_ms").set(name, entry);
    }

    /// Records one free-form numeric counter (op counts, bytes, …).
    pub fn counter(&mut self, name: &str, value: f64) {
        if !self.active() {
            return;
        }
        self.member("counters").set(name, Json::from(value));
    }

    /// Records the fault-injection counters (usually an interval delta).
    pub fn faults(&mut self, snap: &FaultSnapshot) {
        if !self.active() {
            return;
        }
        let mut o = Json::object();
        for (name, v) in snap.entries() {
            o.set(name, Json::from(v));
        }
        *self.member("faults") = o;
    }

    /// Records the worker-pool counters (usually an interval delta).
    pub fn pool(&mut self, snap: &PoolSnapshot) {
        if !self.active() {
            return;
        }
        let mut o = Json::object();
        for (name, v) in snap.entries() {
            o.set(name, Json::from(v));
        }
        *self.member("pool") = o;
    }

    /// Records the delta-maintenance counters (usually an interval
    /// delta).
    pub fn incremental(&mut self, snap: &IncrementalSnapshot) {
        if !self.active() {
            return;
        }
        let mut o = Json::object();
        for (name, v) in snap.entries() {
            o.set(name, Json::from(v));
        }
        *self.member("incremental") = o;
    }

    /// Records the bounded-ingest / load-shedding counters (usually an
    /// interval delta).
    pub fn overload(&mut self, snap: &OverloadSnapshot) {
        if !self.active() {
            return;
        }
        let mut o = Json::object();
        for (name, v) in snap.entries() {
            o.set(name, Json::from(v));
        }
        *self.member("overload") = o;
    }

    /// Records the adaptive-planning counters (usually an interval
    /// delta).
    pub fn plan(&mut self, snap: &PlanSnapshot) {
        if !self.active() {
            return;
        }
        let mut o = Json::object();
        for (name, v) in snap.entries() {
            o.set(name, Json::from(v));
        }
        *self.member("plan") = o;
    }

    /// Records the state-integrity counters (usually an interval delta).
    pub fn integrity(&mut self, snap: &IntegritySnapshot) {
        if !self.active() {
            return;
        }
        let mut o = Json::object();
        for (name, v) in snap.entries() {
            o.set(name, Json::from(v));
        }
        *self.member("integrity") = o;
    }

    /// Records a recovery's replay metrics.
    pub fn recovery(&mut self, r: &RecoveryReport) {
        if !self.active() {
            return;
        }
        let mut o = Json::object();
        o.set("recovery_ms", Json::from(r.recovery_ms));
        o.set("replayed_batches", Json::from(r.replayed_batches));
        o.set("replayed_queries", Json::from(r.replayed_queries));
        o.set("dedup_suppressed", Json::from(r.dedup_suppressed));
        o.set("restored_stable_sn", Json::from(r.restored_stable_sn));
        o.set("integrity_violations", Json::from(r.integrity_violations));
        o.set("quarantined_shards", Json::from(r.quarantined_shards));
        // Causal labels of the replayed log, joinable against
        // flight-recorder traces; capped to keep reports bounded.
        o.set(
            "replayed_batch_ids",
            Json::Arr(
                r.replayed_batch_ids
                    .iter()
                    .take(32)
                    .map(|b| Json::Str(b.label()))
                    .collect(),
            ),
        );
        *self.member("recovery") = o;
    }

    /// Records the flight-recorder counters (engine-lifetime totals).
    pub fn trace(&mut self, snap: &TraceSnapshot) {
        if !self.active() {
            return;
        }
        let mut o = Json::object();
        for (name, v) in snap.entries() {
            o.set(name, Json::from(v));
        }
        *self.member("trace") = o;
    }

    /// Captures an engine's fabric counters, operational counters, and
    /// staged latency breakdown.
    pub fn engine(&mut self, engine: &WukongS) {
        if !self.active() {
            return;
        }
        let stats = engine.stats();
        let mut fabric = Json::object();
        fabric.set("one_sided_reads", Json::from(stats.fabric.one_sided_reads));
        fabric.set("messages", Json::from(stats.fabric.messages));
        fabric.set("bytes_read", Json::from(stats.fabric.bytes_read));
        fabric.set("bytes_sent", Json::from(stats.fabric.bytes_sent));
        fabric.set("charged_ns", Json::from(stats.fabric.charged_ns));
        *self.member("fabric") = fabric;
        for (name, v) in [
            ("nodes", stats.nodes as f64),
            ("streams", stats.streams as f64),
            ("continuous_queries", stats.continuous_queries as f64),
            ("stored_triples", stats.stored_triples as f64),
            ("store_bytes", stats.store_bytes as f64),
            ("stream_index_bytes", stats.stream_index_bytes as f64),
            ("transient_bytes", stats.transient_bytes as f64),
            ("raw_stream_bytes", stats.raw_stream_bytes as f64),
            ("batches_processed", stats.batches_processed as f64),
        ] {
            self.counter(name, v);
        }
        self.faults(&engine.handle().fault_counters());
        self.pool(&engine.handle().obs().pool().snapshot());
        self.incremental(&engine.handle().obs().incremental().snapshot());
        self.overload(&engine.handle().obs().overload().snapshot());
        self.plan(&engine.handle().obs().plan().snapshot());
        self.integrity(&engine.handle().obs().integrity().snapshot());
        self.trace(&engine.handle().trace_snapshot());
        *self.member("stages") = stages_json(&engine.handle().obs_snapshot());
    }

    /// The document built so far (tests).
    pub fn document(&self) -> &Json {
        &self.doc
    }

    /// Writes the report if `--json` was given. Returns the path written.
    pub fn finish(self) -> Option<PathBuf> {
        let path = self.path?;
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("creating {}: {e}", parent.display()));
        }
        std::fs::write(&path, self.doc.to_string_pretty())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("wrote JSON report to {}", path.display());
        Some(path)
    }
}

#[cfg(test)]
mod bench_json_tests {
    use super::*;

    #[test]
    fn inactive_sink_is_a_noop() {
        let mut j = BenchJson::build("t", None);
        let mut rec = LatencyRecorder::new();
        rec.record(1.0);
        j.series("a", &rec);
        j.counter("b", 2.0);
        assert_eq!(j.document().get("latency_ms"), Some(&Json::object()));
        assert_eq!(j.finish(), None);
    }

    #[test]
    fn document_is_schema_stable() {
        let mut j = BenchJson::to_path("t", "/tmp/ignored.json");
        let mut rec = LatencyRecorder::new();
        for v in [1.0, 2.0, 3.0] {
            rec.record(v);
        }
        j.series("L1", &rec);
        j.counter("ops", 42.0);
        let doc = j.document();
        assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(8));
        assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("t"));
        let l1 = doc.get("latency_ms").unwrap().get("L1").unwrap();
        assert_eq!(l1.get("samples").and_then(Json::as_u64), Some(3));
        assert_eq!(l1.get("p50").and_then(Json::as_f64), Some(2.0));
        for key in [
            "counters",
            "fabric",
            "faults",
            "recovery",
            "pool",
            "incremental",
            "overload",
            "plan",
            "integrity",
            "trace",
            "stages",
        ] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn plan_section_round_trips() {
        let mut j = BenchJson::to_path("t", "/tmp/ignored.json");
        let snap = PlanSnapshot {
            cache_hits: 12,
            cache_misses: 3,
            feedback_firings: 40,
            drifted_firings: 9,
            replans: 2,
            delta_rebuilds: 1,
            mode_inplace: 35,
            mode_forkjoin: 5,
            edges_traversed: 7_000,
        };
        j.plan(&snap);
        let p = j.document().get("plan").unwrap();
        assert_eq!(p.get("cache_hits").and_then(Json::as_u64), Some(12));
        assert_eq!(p.get("cache_misses").and_then(Json::as_u64), Some(3));
        assert_eq!(p.get("feedback_firings").and_then(Json::as_u64), Some(40));
        assert_eq!(p.get("drifted_firings").and_then(Json::as_u64), Some(9));
        assert_eq!(p.get("replans").and_then(Json::as_u64), Some(2));
        assert_eq!(p.get("delta_rebuilds").and_then(Json::as_u64), Some(1));
        assert_eq!(p.get("mode_inplace").and_then(Json::as_u64), Some(35));
        assert_eq!(p.get("mode_forkjoin").and_then(Json::as_u64), Some(5));
        assert_eq!(p.get("edges_traversed").and_then(Json::as_u64), Some(7_000));
        // The serialized document parses back byte-identically.
        let text = j.document().to_string_pretty();
        let parsed = wukong_obs::json::parse(&text).expect("round-trips");
        assert_eq!(&parsed, j.document());
    }

    #[test]
    fn overload_section_round_trips() {
        let mut j = BenchJson::to_path("t", "/tmp/ignored.json");
        let snap = OverloadSnapshot {
            sheds_drop_oldest: 4,
            tuples_shed: 320,
            admission_rejected: 2,
            state_transitions: 3,
            catchup_replays: 1,
            catchup_replayed_tuples: 320,
            degraded_firings: 9,
            ..Default::default()
        };
        j.overload(&snap);
        let o = j.document().get("overload").unwrap();
        assert_eq!(o.get("sheds_drop_oldest").and_then(Json::as_u64), Some(4));
        assert_eq!(o.get("tuples_shed").and_then(Json::as_u64), Some(320));
        assert_eq!(o.get("admission_rejected").and_then(Json::as_u64), Some(2));
        assert_eq!(o.get("state_transitions").and_then(Json::as_u64), Some(3));
        assert_eq!(o.get("catchup_replays").and_then(Json::as_u64), Some(1));
        assert_eq!(
            o.get("catchup_replayed_tuples").and_then(Json::as_u64),
            Some(320)
        );
        assert_eq!(o.get("degraded_firings").and_then(Json::as_u64), Some(9));
        assert_eq!(o.get("sheds_sampled").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn incremental_section_round_trips() {
        let mut j = BenchJson::to_path("t", "/tmp/ignored.json");
        let snap = IncrementalSnapshot {
            incremental_firings: 30,
            rebuild_firings: 1,
            fallback_firings: 2,
            rows_reused: 900,
            rows_recomputed: 120,
            rows_retracted: 110,
        };
        j.incremental(&snap);
        let i = j.document().get("incremental").unwrap();
        assert_eq!(
            i.get("incremental_firings").and_then(Json::as_u64),
            Some(30)
        );
        assert_eq!(i.get("rebuild_firings").and_then(Json::as_u64), Some(1));
        assert_eq!(i.get("fallback_firings").and_then(Json::as_u64), Some(2));
        assert_eq!(i.get("rows_reused").and_then(Json::as_u64), Some(900));
        assert_eq!(i.get("rows_recomputed").and_then(Json::as_u64), Some(120));
        assert_eq!(i.get("rows_retracted").and_then(Json::as_u64), Some(110));
    }

    #[test]
    fn pool_section_round_trips() {
        let mut j = BenchJson::to_path("t", "/tmp/ignored.json");
        let snap = PoolSnapshot {
            tasks: 40,
            regions: 5,
            steals: 3,
            max_queue_depth: 16,
            serial_busy_ns: 1_000,
            modeled_busy_ns: 300,
            region_wall_ns: 1_200,
        };
        j.pool(&snap);
        let p = j.document().get("pool").unwrap();
        assert_eq!(p.get("tasks").and_then(Json::as_u64), Some(40));
        assert_eq!(p.get("regions").and_then(Json::as_u64), Some(5));
        assert_eq!(p.get("steals").and_then(Json::as_u64), Some(3));
        assert_eq!(p.get("max_queue_depth").and_then(Json::as_u64), Some(16));
        assert_eq!(p.get("serial_busy_ns").and_then(Json::as_u64), Some(1_000));
        assert_eq!(p.get("modeled_busy_ns").and_then(Json::as_u64), Some(300));
        assert_eq!(p.get("region_wall_ns").and_then(Json::as_u64), Some(1_200));
    }

    #[test]
    fn faults_and_recovery_sections_round_trip() {
        let mut j = BenchJson::to_path("t", "/tmp/ignored.json");
        let snap = FaultSnapshot {
            msgs_dropped: 7,
            retransmits: 7,
            ..Default::default()
        };
        j.faults(&snap);
        let rep = RecoveryReport {
            recovery_ms: 1.25,
            replayed_batches: 40,
            replayed_queries: 2,
            dedup_suppressed: 3,
            restored_stable_sn: 9,
            integrity_violations: 1,
            quarantined_shards: 2,
            replayed_batch_ids: vec![
                wukong_obs::BatchId::mint(0, 100),
                wukong_obs::BatchId::mint(1, 200),
            ],
        };
        j.recovery(&rep);
        let doc = j.document();
        let f = doc.get("faults").unwrap();
        assert_eq!(f.get("msgs_dropped").and_then(Json::as_u64), Some(7));
        assert_eq!(f.get("rpc_timeouts").and_then(Json::as_u64), Some(0));
        let r = doc.get("recovery").unwrap();
        assert_eq!(r.get("replayed_batches").and_then(Json::as_u64), Some(40));
        assert_eq!(r.get("recovery_ms").and_then(Json::as_f64), Some(1.25));
        assert_eq!(r.get("restored_stable_sn").and_then(Json::as_u64), Some(9));
        assert_eq!(
            r.get("integrity_violations").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(r.get("quarantined_shards").and_then(Json::as_u64), Some(2));
        let ids = r.get("replayed_batch_ids").and_then(Json::as_arr).unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0].as_str(), Some("s0@100"));
        assert_eq!(ids[1].as_str(), Some("s1@200"));
    }

    #[test]
    fn integrity_section_round_trips() {
        let mut j = BenchJson::to_path("t", "/tmp/ignored.json");
        let snap = IntegritySnapshot {
            checksum_fail_batch: 1,
            checksum_fail_message: 5,
            checksum_fail_checkpoint: 2,
            scrub_violations: 0,
            quarantines: 3,
            rebuilds: 3,
            rebuild_ns: 42_000,
        };
        j.integrity(&snap);
        let i = j.document().get("integrity").unwrap();
        assert_eq!(i.get("checksum_fail_batch").and_then(Json::as_u64), Some(1));
        assert_eq!(
            i.get("checksum_fail_message").and_then(Json::as_u64),
            Some(5)
        );
        assert_eq!(
            i.get("checksum_fail_checkpoint").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(i.get("scrub_violations").and_then(Json::as_u64), Some(0));
        assert_eq!(i.get("quarantines").and_then(Json::as_u64), Some(3));
        assert_eq!(i.get("rebuilds").and_then(Json::as_u64), Some(3));
        assert_eq!(i.get("rebuild_ns").and_then(Json::as_u64), Some(42_000));
    }
}
/// Formats milliseconds the way the paper's tables do: two decimals below
/// 10 ms, one decimal below 100, integral (with thousands separators)
/// above.
pub fn fmt_ms(ms: f64) -> String {
    if ms < 0.1 {
        format!("{ms:.3}")
    } else if ms < 10.0 {
        format!("{ms:.2}")
    } else if ms < 100.0 {
        format!("{ms:.1}")
    } else {
        let n = ms.round() as i64;
        let s = n.to_string();
        let mut out = String::new();
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(c);
        }
        out
    }
}

/// Prints a table header row plus a separator.
pub fn print_header(title: &str, cols: &[&str]) {
    println!("\n=== {title} ===");
    print_row(cols.iter().map(|s| s.to_string()).collect());
    println!("{}", "-".repeat(cols.len() * 14));
}

/// Prints one table row with fixed-width columns.
pub fn print_row(cells: Vec<String>) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>13}")).collect();
    println!("{}", row.join(" "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_match_paper_style() {
        assert_eq!(fmt_ms(0.13), "0.13");
        assert_eq!(fmt_ms(0.013), "0.013");
        assert_eq!(fmt_ms(30.38), "30.4");
        assert_eq!(fmt_ms(1984.4), "1,984");
        assert_eq!(fmt_ms(155.0), "155");
    }
}
