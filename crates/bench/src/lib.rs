#![warn(missing_docs)]
//! Shared harness for the evaluation reproduction (§6).
//!
//! Every table and figure of the paper has a binary under `src/bin/`
//! (see `DESIGN.md`'s experiment index). This library holds what they
//! share: workload construction, engine feeding, latency sampling, and
//! table/series printing.
//!
//! # Scale
//!
//! The environment variable `WUKONG_SCALE` picks the workload size:
//! `tiny` (CI-sized), `small` (default; seconds per experiment) or
//! `paper` (larger, minutes per experiment). Absolute numbers differ from
//! the paper (simulated fabric, scaled data, one host core) — the *shape*
//! of each comparison is the reproduction target; `EXPERIMENTS.md`
//! records both.

pub mod report;
pub mod workload;

pub use report::{fmt_ms, print_header, print_row, BenchJson, JSON_SCHEMA_VERSION};
pub use workload::{
    city_workload, city_workload_seeded, feed_composite, feed_engine, feed_spark, feed_wukong_ext,
    ls_workload, ls_workload_seeded, sample_composite, sample_continuous, seed_from_env,
    CityWorkload, LsWorkload, Scale,
};
