//! Table 2: single-node continuous-query latency (ms) on LSBench.
//!
//! Columns: Wukong+S | Storm+Wukong (total, Storm part, Wukong part) |
//! CSPARQL-engine; rows L1-L6 plus the geometric mean. The paper's shape:
//! Wukong+S beats Storm+Wukong by 1.6-30×, and CSPARQL-engine by about
//! three orders of magnitude.

use wukong_baselines::{CompositePlan, CompositeProfile};
use wukong_bench::workload::LS_STREAMS;
use wukong_bench::{
    feed_composite, feed_engine, fmt_ms, ls_workload, print_header, print_row, sample_composite,
    sample_continuous, BenchJson, Scale,
};
use wukong_benchdata::lsbench;
use wukong_core::metrics::geometric_mean;
use wukong_core::EngineConfig;

fn main() {
    let mut jr = BenchJson::from_env("table2_latency_single");
    let scale = Scale::from_env();
    let w = ls_workload(scale);
    let runs = scale.runs();
    println!(
        "LSBench: {} stored triples, {} stream tuples over {} ms (scale {scale:?})",
        w.stored.len(),
        w.timeline.len(),
        w.duration,
    );

    let engine = feed_engine(
        EngineConfig::single_node(),
        &w.strings,
        w.schemas(),
        &w.stored,
        &w.timeline,
        w.duration,
    );
    let mut storm = feed_composite(
        CompositeProfile::storm_wukong(1),
        &w.strings,
        &LS_STREAMS,
        &w.stored,
        &w.timeline,
    );
    let mut csparql = feed_composite(
        CompositeProfile::csparql(),
        &w.strings,
        &LS_STREAMS,
        &w.stored,
        &w.timeline,
    );

    // Register every class on every engine (id == class - 1).
    let texts: Vec<String> = (1..=lsbench::CONTINUOUS_CLASSES)
        .map(|c| lsbench::continuous_query(&w.bench, c, 0))
        .collect();
    let wids: Vec<usize> = texts
        .iter()
        .map(|t| {
            engine
                .register_continuous(t)
                .expect("Wukong+S registration")
        })
        .collect();
    let sids: Vec<usize> = texts
        .iter()
        .map(|t| {
            storm
                .register_continuous(t)
                .expect("Storm+Wukong registration")
        })
        .collect();
    let cids: Vec<usize> = texts
        .iter()
        .map(|t| {
            csparql
                .register_continuous(t)
                .expect("CSPARQL registration")
        })
        .collect();

    print_header(
        "Table 2: single-node latency (ms), LSBench",
        &[
            "query", "Wukong+S", "S+W all", "(Storm)", "(Wukong)", "CSPARQL",
        ],
    );

    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (i, class) in (1..=lsbench::CONTINUOUS_CLASSES).enumerate() {
        let wrec = sample_continuous(&engine, wids[i], runs);
        jr.series(&format!("L{class}/wukong_s"), &wrec);
        let ws = wrec.median().expect("samples");
        let (srec, sbd) = sample_composite(
            &storm,
            sids[i],
            w.duration,
            CompositePlan::Interleaved,
            runs,
        );
        let s_total = srec.median().expect("samples");
        let (crec, _) = sample_composite(
            &csparql,
            cids[i],
            w.duration,
            CompositePlan::Interleaved,
            (runs / 10).max(3),
        );
        let c_total = crec.median().expect("samples");

        geo[0].push(ws);
        geo[1].push(s_total);
        geo[2].push(c_total);
        print_row(vec![
            format!("L{class}"),
            fmt_ms(ws),
            fmt_ms(s_total),
            fmt_ms(sbd.stream_ms + sbd.cross_ms),
            fmt_ms(sbd.store_ms),
            fmt_ms(c_total),
        ]);
    }
    print_row(vec![
        "Geo.M".into(),
        fmt_ms(geometric_mean(geo[0].iter().copied()).unwrap_or(0.0)),
        fmt_ms(geometric_mean(geo[1].iter().copied()).unwrap_or(0.0)),
        String::new(),
        String::new(),
        fmt_ms(geometric_mean(geo[2].iter().copied()).unwrap_or(0.0)),
    ]);
    jr.counter(
        "geo_mean_wukong_s_ms",
        geometric_mean(geo[0].iter().copied()).unwrap_or(0.0),
    );
    jr.engine(&engine);
    jr.finish();
}
