//! Fig. 13: Wukong+S latency vs stream rate on LSBench (8 nodes).
//!
//! The rate sweeps ×0.25 to ×4 of the default. Paper shape: group I
//! (selective) latency is flat regardless of rate; group II latency grows
//! with the rate (windows hold proportionally more tuples) yet stays low.

use wukong_bench::workload::ls_workload_with;
use wukong_bench::{
    feed_engine, fmt_ms, print_header, print_row, sample_continuous, BenchJson, Scale,
};
use wukong_benchdata::lsbench;
use wukong_core::EngineConfig;

fn main() {
    let mut jr = BenchJson::from_env("fig13_stream_rate");
    let scale = Scale::from_env();
    let runs = scale.runs();
    let base_cfg = scale.ls_config();
    let duration = scale.ls_duration();
    let multipliers = [0.25f64, 0.5, 1.0, 2.0, 4.0];

    // medians[class-1][rate index]
    let mut medians = vec![vec![0.0f64; multipliers.len()]; lsbench::CONTINUOUS_CLASSES];
    for (ri, &m) in multipliers.iter().enumerate() {
        let mut cfg = base_cfg.clone();
        cfg.rate_scale *= m;
        let w = ls_workload_with(cfg, duration);
        let engine = feed_engine(
            EngineConfig::cluster(8),
            &w.strings,
            w.schemas(),
            &w.stored,
            &w.timeline,
            w.duration,
        );
        for class in 1..=lsbench::CONTINUOUS_CLASSES {
            let id = engine
                .register_continuous(&lsbench::continuous_query(&w.bench, class, 0))
                .expect("register");
            let rec = sample_continuous(&engine, id, runs);
            jr.series(&format!("L{class}/rate_x{m}"), &rec);
            medians[class - 1][ri] = rec.median().expect("samples");
        }
        if ri + 1 == multipliers.len() {
            jr.engine(&engine);
        }
    }

    for (title, range) in [
        ("group I (selective)", 0..3),
        ("group II (non-selective)", 3..6),
    ] {
        print_header(
            &format!("Fig 13 {title}: latency (ms) vs stream rate"),
            &["query", "x0.25", "x0.5", "x1", "x2", "x4"],
        );
        for c in range {
            let row = &medians[c];
            print_row(vec![
                format!("L{}", c + 1),
                fmt_ms(row[0]),
                fmt_ms(row[1]),
                fmt_ms(row[2]),
                fmt_ms(row[3]),
                fmt_ms(row[4]),
            ]);
        }
    }
    jr.finish();
}
