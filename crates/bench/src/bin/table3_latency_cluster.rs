//! Table 3: 8-node continuous-query latency (ms) on LSBench.
//!
//! Columns: Wukong+S | Storm+Wukong (total, Storm, Wukong) | Spark
//! Streaming. Paper shape: Wukong+S beats Storm+Wukong by 2.3-29× and
//! Spark Streaming by three orders of magnitude; Storm+Wukong's
//! cross-system overhead runs 13.8-56.2% of total.

use wukong_baselines::{CompositePlan, CompositeProfile, SparkMode};
use wukong_bench::workload::LS_STREAMS;
use wukong_bench::{
    feed_composite, feed_engine, feed_spark, fmt_ms, ls_workload, print_header, print_row,
    sample_composite, sample_continuous, BenchJson, Scale,
};
use wukong_benchdata::lsbench;
use wukong_core::metrics::geometric_mean;
use wukong_core::EngineConfig;

fn main() {
    let mut jr = BenchJson::from_env("table3_latency_cluster");
    let scale = Scale::from_env();
    let nodes = 8;
    let w = ls_workload(scale);
    let runs = scale.runs();
    println!(
        "LSBench: {} stored triples, {} stream tuples over {} ms, {nodes} nodes (scale {scale:?})",
        w.stored.len(),
        w.timeline.len(),
        w.duration,
    );

    let engine = feed_engine(
        EngineConfig::cluster(nodes),
        &w.strings,
        w.schemas(),
        &w.stored,
        &w.timeline,
        w.duration,
    );
    let mut storm = feed_composite(
        CompositeProfile::storm_wukong(nodes),
        &w.strings,
        &LS_STREAMS,
        &w.stored,
        &w.timeline,
    );
    let mut spark = feed_spark(
        SparkMode::MicroBatch,
        &w.strings,
        &LS_STREAMS,
        &w.stored,
        &w.timeline,
    );

    let texts: Vec<String> = (1..=lsbench::CONTINUOUS_CLASSES)
        .map(|c| lsbench::continuous_query(&w.bench, c, 0))
        .collect();
    let wids: Vec<usize> = texts
        .iter()
        .map(|t| {
            engine
                .register_continuous(t)
                .expect("Wukong+S registration")
        })
        .collect();
    let sids: Vec<usize> = texts
        .iter()
        .map(|t| {
            storm
                .register_continuous(t)
                .expect("Storm+Wukong registration")
        })
        .collect();
    let kids: Vec<usize> = texts
        .iter()
        .map(|t| spark.register_continuous(t).expect("Spark registration"))
        .collect();

    print_header(
        "Table 3: 8-node latency (ms), LSBench",
        &[
            "query", "Wukong+S", "S+W all", "(Storm)", "(Wukong)", "Spark",
        ],
    );

    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (i, class) in (1..=lsbench::CONTINUOUS_CLASSES).enumerate() {
        let wrec = sample_continuous(&engine, wids[i], runs);
        jr.series(&format!("L{class}/wukong_s"), &wrec);
        let ws = wrec.median().expect("samples");
        let (srec, sbd) = sample_composite(
            &storm,
            sids[i],
            w.duration,
            CompositePlan::Interleaved,
            runs,
        );
        let s_total = srec.median().expect("samples");

        let spark_runs = (runs / 10).max(3);
        let mut spark_samples = Vec::new();
        for _ in 0..spark_runs {
            let (_, ms) = spark.execute(kids[i], w.duration);
            spark_samples.push(ms);
        }
        spark_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let sp = spark_samples[spark_samples.len() / 2];

        geo[0].push(ws);
        geo[1].push(s_total);
        geo[2].push(sp);
        print_row(vec![
            format!("L{class}"),
            fmt_ms(ws),
            fmt_ms(s_total),
            fmt_ms(sbd.stream_ms + sbd.cross_ms),
            fmt_ms(sbd.store_ms),
            fmt_ms(sp),
        ]);
    }
    print_row(vec![
        "Geo.M".into(),
        fmt_ms(geometric_mean(geo[0].iter().copied()).unwrap_or(0.0)),
        fmt_ms(geometric_mean(geo[1].iter().copied()).unwrap_or(0.0)),
        String::new(),
        String::new(),
        fmt_ms(geometric_mean(geo[2].iter().copied()).unwrap_or(0.0)),
    ]);
    jr.counter(
        "geo_mean_wukong_s_ms",
        geometric_mean(geo[0].iter().copied()).unwrap_or(0.0),
    );
    jr.engine(&engine);
    jr.finish();
}
