//! Worker scaling: the same seeded workload at 1, 2, 4, and 8 workers
//! per node, with byte-identical results required at every width.
//!
//! For each worker count the experiment boots a fresh deployment over a
//! shared string server, replays the LSBench timeline, fires every ready
//! window in one large batch (so firing regions carry many tasks), and
//! runs the one-shot query mix through `one_shot_batch`. Two things are
//! measured:
//!
//! - **Equivalence.** Every run folds its firings into a canonical hash;
//!   any width producing a different hash than the single-worker
//!   baseline fails the run. This is the determinism-by-construction
//!   claim of `wukong-net`'s `WorkerPool` checked end to end.
//! - **Modeled throughput.** The host running this simulation may have a
//!   single core, so wall-clock alone cannot show scaling. Each pool
//!   region records its wall time as the host ran it (spawn overhead,
//!   core contention) and its modeled cost — the makespan of a
//!   deterministic list schedule of per-task *CPU* durations.
//!   The run's modeled duration is its wall-clock with the region wall
//!   time swapped out for the modeled time, the same substitution
//!   discipline the RDMA fabric uses for network charges. At one worker
//!   region wall ≈ modeled, so the baseline stays honest. Because every
//!   width runs the byte-identical task set, CPU cost inflation from
//!   host oversubscription is deflated against the baseline's serial
//!   sum (see [`modeled_ns`]), and each width reports the best of
//!   [`REPS`] repetitions.
//!
//! `--quick` sweeps only {1, 4} (CI smoke); `--json <path>` writes the
//! machine-readable report (schema v3, including the `pool` member).

use std::time::Instant;
use wukong_bench::{fmt_ms, ls_workload, print_header, print_row, BenchJson, Scale};
use wukong_benchdata::lsbench;
use wukong_core::{EngineConfig, WukongS};
use wukong_obs::PoolSnapshot;

/// Continuous registrations per query class: firing regions then carry
/// `classes x variants` windows per fire, enough work to fill 8 lanes.
const CONTINUOUS_VARIANTS: usize = 3;
/// One-shot queries per class in the `one_shot_batch` region.
const ONESHOT_VARIANTS: usize = 8;
/// Repetitions per width: per-task CPU timing is noisy almost entirely
/// upward (preemption, cold caches), so the minimum modeled duration is
/// the stable estimator. Every repetition must produce the same hash.
const REPS: usize = 3;

struct RunOutcome {
    wall_ns: u64,
    firings: u64,
    rows: u64,
    hash: u64,
    pool: PoolSnapshot,
}

/// FNV-1a over the canonical firing stream: registration index, window
/// end, and every row in engine order. Byte-identical output across
/// worker counts ⇒ identical hash.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

fn run_at(w: &wukong_bench::LsWorkload, nodes: usize, workers: usize) -> RunOutcome {
    let engine = WukongS::with_strings(
        EngineConfig::cluster(nodes).with_workers(workers),
        std::sync::Arc::clone(&w.strings),
    );
    engine.load_base(w.stored.iter().copied());
    for schema in w.schemas() {
        engine.register_stream(schema);
    }
    // Several variants per class so firing regions and the one-shot batch
    // carry enough tasks to fill every lane (variants randomise the anchor
    // entity, spreading the load the way a throughput run would).
    let ids: Vec<usize> = (1..=lsbench::CONTINUOUS_CLASSES)
        .flat_map(|c| (0..CONTINUOUS_VARIANTS).map(move |v| (c, v)))
        .map(|(c, v)| {
            engine
                .register_continuous(&lsbench::continuous_query(&w.bench, c, v))
                .expect("register")
        })
        .collect();
    let oneshots: Vec<String> = (0..ONESHOT_VARIANTS)
        .flat_map(|v| {
            (1..=lsbench::ONESHOT_CLASSES).map(move |c| lsbench::oneshot_query(&w.bench, c, v))
        })
        .collect();
    let oneshot_refs: Vec<&str> = oneshots.iter().map(String::as_str).collect();

    let before = engine.cluster().obs().pool().snapshot();
    let t0 = Instant::now();

    for t in &w.timeline {
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(w.duration);
    let firings = engine.fire_ready();
    let oneshot_results = engine.one_shot_batch(&oneshot_refs);

    let wall_ns = t0.elapsed().as_nanos() as u64;
    let pool = before.delta(&engine.cluster().obs().pool().snapshot());

    let mut hash = Fnv::new();
    let mut rows = 0u64;
    for f in &firings {
        let qi = ids
            .iter()
            .position(|id| *id == f.query)
            .expect("registered");
        hash.push(qi as u64);
        hash.push(f.window_end);
        for row in &f.results.rows {
            rows += 1;
            for v in row {
                hash.push(v.0);
            }
        }
    }
    for r in &oneshot_results {
        let rs = &r.as_ref().expect("one-shot runs").0;
        for row in &rs.rows {
            rows += 1;
            for v in row {
                hash.push(v.0);
            }
        }
    }

    RunOutcome {
        wall_ns,
        firings: firings.len() as u64,
        rows,
        hash: hash.0,
        pool,
    }
}

/// The run's modeled duration: wall-clock with the regions' host wall
/// time swapped for their modeled (list-schedule makespan of CPU
/// durations) time. At one worker the swap is near-identity, so the
/// baseline is honest wall-clock.
///
/// `base_serial_ns` is the baseline run's serial task cost. Every width
/// executes the byte-identical task set (the hashes prove it), yet
/// per-task CPU durations still inflate with pool width on an
/// oversubscribed host (cache contention between lanes sharing a core —
/// cost a real `workers`-wide node would not pay). The modeled busy
/// time is therefore deflated by `base_serial / this_serial`, capped at
/// 1 so it never scales up.
fn modeled_ns(out: &RunOutcome, base_serial_ns: Option<u64>) -> u64 {
    let non_pool = out.wall_ns - out.pool.region_wall_ns.min(out.wall_ns);
    let factor = match base_serial_ns {
        Some(base) if out.pool.serial_busy_ns > 0 => {
            (base as f64 / out.pool.serial_busy_ns as f64).min(1.0)
        }
        _ => 1.0,
    };
    non_pool + (out.pool.modeled_busy_ns as f64 * factor) as u64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut jr = BenchJson::from_env("exp_worker_scaling");
    let scale = Scale::from_env();
    let nodes = 4;
    let w = ls_workload(scale);
    println!(
        "LSBench: {} stored triples, {} stream tuples over {} ms (scale {scale:?}, {nodes} nodes)",
        w.stored.len(),
        w.timeline.len(),
        w.duration,
    );

    let widths: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    print_header(
        "Worker scaling: modeled time and throughput per pool width",
        &[
            "workers",
            "wall ms",
            "modeled ms",
            "regions",
            "steals",
            "ops/s",
            "speedup",
            "result",
        ],
    );

    // Baseline (modeled duration, serial task cost, hash) once the first
    // width has run; later widths deflate against the serial cost.
    let mut baseline: Option<(u64, u64, u64)> = None;
    let mut speedup_at_4 = 0.0;
    let mut all_match = true;
    for &workers in widths {
        let base_serial = baseline.map(|(_, s, _)| s);
        // Best-of-REPS by modeled time (CPU-timing noise is almost
        // entirely upward, so the minimum is the stable estimator); all
        // repetitions must agree on the firing hash.
        let mut out = run_at(&w, nodes, workers);
        for _ in 1..REPS {
            let rerun = run_at(&w, nodes, workers);
            all_match &= rerun.hash == out.hash;
            if modeled_ns(&rerun, base_serial) < modeled_ns(&out, base_serial) {
                out = rerun;
            }
        }
        let out_modeled = modeled_ns(&out, base_serial);
        let ops = w.timeline.len() as u64 + out.firings;
        let tput = ops as f64 / (out_modeled as f64 / 1e9);
        let (speedup, matches) = match &baseline {
            None => (1.0, true),
            Some((b_modeled, _, b_hash)) => {
                (*b_modeled as f64 / out_modeled as f64, *b_hash == out.hash)
            }
        };
        all_match &= matches;
        if workers == 4 {
            speedup_at_4 = speedup;
        }
        print_row(vec![
            format!("{workers}"),
            fmt_ms(out.wall_ns as f64 / 1e6),
            fmt_ms(out_modeled as f64 / 1e6),
            format!("{}", out.pool.regions),
            format!("{}", out.pool.steals),
            format!("{tput:.0}"),
            format!("{speedup:.2}x"),
            if matches { "MATCH" } else { "MISMATCH" }.into(),
        ]);

        let tag = format!("w{workers}");
        jr.counter(&format!("{tag}/wall_ms"), out.wall_ns as f64 / 1e6);
        jr.counter(&format!("{tag}/modeled_ms"), out_modeled as f64 / 1e6);
        jr.counter(&format!("{tag}/throughput_ops_s"), tput);
        jr.counter(
            &format!("{tag}/serial_busy_ms"),
            out.pool.serial_busy_ns as f64 / 1e6,
        );
        jr.counter(
            &format!("{tag}/modeled_busy_ms"),
            out.pool.modeled_busy_ns as f64 / 1e6,
        );
        jr.counter(
            &format!("{tag}/region_wall_ms"),
            out.pool.region_wall_ns as f64 / 1e6,
        );
        jr.counter(&format!("{tag}/regions"), out.pool.regions as f64);
        jr.counter(&format!("{tag}/tasks"), out.pool.tasks as f64);
        jr.counter(&format!("{tag}/steals"), out.pool.steals as f64);
        jr.counter(&format!("{tag}/firings"), out.firings as f64);
        jr.counter(&format!("{tag}/rows"), out.rows as f64);
        jr.counter(&format!("{tag}/speedup"), speedup);
        jr.counter(
            &format!("{tag}/hash_match"),
            if matches { 1.0 } else { 0.0 },
        );
        if workers == *widths.last().expect("non-empty sweep") {
            jr.pool(&out.pool);
        }
        if baseline.is_none() {
            baseline = Some((out_modeled, out.pool.serial_busy_ns, out.hash));
        }
    }

    jr.counter("speedup_4v1", speedup_at_4);
    jr.counter("all_match", if all_match { 1.0 } else { 0.0 });
    jr.finish();

    if !all_match {
        eprintln!("worker scaling FAILED: firing sets diverged across worker counts");
        std::process::exit(1);
    }
    if speedup_at_4 < 2.0 {
        eprintln!(
            "worker scaling FAILED: modeled speedup at 4 workers is {speedup_at_4:.2}x (< 2x)"
        );
        std::process::exit(1);
    }
    println!("\nall widths byte-identical; modeled speedup at 4 workers: {speedup_at_4:.2}x");
}
