//! `wukong-trace` — black-box dump inspector (DESIGN.md §14).
//!
//! Reads a `trace_dump` JSON file (as written by `exp_trace --dump` or
//! embedded in an anomaly report) and renders, as text:
//!
//! * the trigger line (marker, firing, batch, payload),
//! * the firing's lineage tree — query, assigned snapshot, window
//!   instances, and the consumed batch ids,
//! * the per-firing stage timeline in causal (sequence) order, with
//!   span nesting and per-span elapsed time.
//!
//! Accepts a single dump object, an array of dumps, or any JSON object
//! with a `dumps` array member. Exits non-zero only on unreadable input
//! — a structurally thin dump still renders with `?` placeholders, so
//! the inspector stays usable on truncated black boxes.

use wukong_obs::json::{parse, Json};
use wukong_obs::trace::TraceEvent;

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn str_of(j: Option<&Json>) -> &str {
    j.and_then(Json::as_str).unwrap_or("?")
}

fn num_of(j: Option<&Json>) -> u64 {
    j.and_then(Json::as_u64).unwrap_or(0)
}

fn render_lineage(firing: &Json) {
    println!(
        "  firing #{}  query {}  snapshot {}",
        num_of(firing.get("id")),
        str_of(firing.get("query")),
        num_of(firing.get("snapshot")),
    );
    for w in firing.get("windows").and_then(Json::as_arr).unwrap_or(&[]) {
        println!(
            "    window stream {} [{}, {}]",
            num_of(w.get("stream")),
            num_of(w.get("lo")),
            num_of(w.get("hi")),
        );
    }
    let batches = firing.get("batches").and_then(Json::as_arr).unwrap_or(&[]);
    for b in batches {
        println!("      batch {}", b.as_str().unwrap_or("?"));
    }
    if firing.get("lineage_truncated").and_then(Json::as_bool) == Some(true) {
        println!("      (lineage truncated)");
    }
}

fn render_timeline(events: &[Json]) {
    let mut depth: i64 = 0;
    for ej in events {
        let seq = num_of(ej.get("seq"));
        let firing = num_of(ej.get("firing"));
        let batch = str_of(ej.get("batch"));
        let arg = num_of(ej.get("arg"));
        // Decode through the canonical parser where possible so the
        // inspector and the recorder agree on the schema; fall back to
        // raw fields for thin/foreign events.
        let parsed = TraceEvent::from_json(ej);
        let kind = str_of(ej.get("kind"));
        let (label, detail) = match kind {
            "exit" => {
                depth = (depth - 1).max(0);
                (
                    format!("exit  {}", str_of(ej.get("stage"))),
                    fmt_ns(parsed.map_or(arg, |e| e.arg)),
                )
            }
            "enter" => (format!("enter {}", str_of(ej.get("stage"))), String::new()),
            "marker" => (
                format!("mark  {}", str_of(ej.get("marker"))),
                format!("arg={arg}"),
            ),
            other => (format!("?     {other}"), String::new()),
        };
        let ctx = match (firing, batch) {
            (0, "-") => String::new(),
            (0, b) => format!("batch {b}"),
            (f, "-") => format!("firing #{f}"),
            (f, b) => format!("firing #{f} batch {b}"),
        };
        println!(
            "    [{seq:>6}] {:indent$}{label:<24} {detail:<12} {ctx}",
            "",
            indent = (depth.max(0) as usize) * 2,
        );
        if kind == "enter" {
            depth += 1;
        }
    }
}

fn render_dump(dump: &Json) {
    let trigger = dump.get("trigger");
    println!(
        "trace_dump: trigger {}  firing #{}  batch {}  arg {}",
        str_of(trigger.and_then(|t| t.get("marker"))),
        num_of(trigger.and_then(|t| t.get("firing"))),
        str_of(trigger.and_then(|t| t.get("batch"))),
        num_of(trigger.and_then(|t| t.get("arg"))),
    );
    if let Some(firing) = dump.get("firing") {
        println!("  lineage:");
        render_lineage(firing);
    }
    let linked = dump
        .get("linked_batches")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    if !linked.is_empty() {
        let labels: Vec<&str> = linked.iter().map(|b| b.as_str().unwrap_or("?")).collect();
        println!("  linked batches: {}", labels.join(" "));
    }
    let events = dump.get("events").and_then(Json::as_arr).unwrap_or(&[]);
    println!("  timeline ({} events, causal order):", events.len());
    render_timeline(events);
    let evicted = num_of(dump.get("evicted"));
    if evicted > 0 {
        println!("  ({evicted} older events evicted by ring wraparound)");
    }
}

/// Collects every `trace_dump` object reachable from the document root.
fn collect_dumps(doc: &Json) -> Vec<&Json> {
    let is_dump = |j: &Json| j.get("kind").and_then(Json::as_str) == Some("trace_dump");
    if is_dump(doc) {
        return vec![doc];
    }
    if let Some(arr) = doc.as_arr() {
        return arr.iter().filter(|j| is_dump(j)).collect();
    }
    if let Some(arr) = doc.get("dumps").and_then(Json::as_arr) {
        return arr.iter().filter(|j| is_dump(j)).collect();
    }
    Vec::new()
}

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: wukong-trace <trace_dump.json>");
        std::process::exit(2);
    };
    let raw = match std::fs::read_to_string(&path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("wukong-trace: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let doc = match parse(&raw) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("wukong-trace: {path} is not JSON: {e}");
            std::process::exit(2);
        }
    };
    let dumps = collect_dumps(&doc);
    if dumps.is_empty() {
        eprintln!("wukong-trace: no trace_dump objects in {path}");
        std::process::exit(1);
    }
    for (i, d) in dumps.iter().enumerate() {
        if i > 0 {
            println!();
        }
        render_dump(d);
    }
}
