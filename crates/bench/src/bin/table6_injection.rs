//! Table 6: data injection and indexing cost per mini-batch (100 ms) for
//! all five LSBench streams at default rate.
//!
//! Paper shape: injection costs 0.37-2.20 ms per 100 ms batch, scaling
//! with the stream's rate (PO-L, the fastest stream, costs the most);
//! stream-index building adds 0.21-0.43 ms on top.

use wukong_bench::{feed_engine, ls_workload, print_header, print_row, BenchJson, Scale};
use wukong_core::EngineConfig;
use wukong_rdf::StreamId;

fn main() {
    let mut jr = BenchJson::from_env("table6_injection");
    let scale = Scale::from_env();
    let w = ls_workload(scale);
    println!(
        "LSBench: {} stream tuples over {} ms (scale {scale:?})",
        w.timeline.len(),
        w.duration,
    );

    let engine = feed_engine(
        EngineConfig::cluster(8),
        &w.strings,
        w.schemas(),
        &w.stored,
        &w.timeline,
        w.duration,
    );

    print_header(
        "Table 6: injection + indexing cost (ms) per 100 ms mini-batch",
        &["stream", "rate t/s", "inject", "index", "total"],
    );

    let rates = w.bench.rates();
    let names = ["PO", "PO-L", "PH", "PH-L", "GPS"];
    for (i, name) in names.iter().enumerate() {
        let (stats, batches) = engine.injection_stats(StreamId(i as u16));
        let per_batch = |ns: u64| ns as f64 / 1e6 / batches.max(1) as f64;
        let inject = per_batch(stats.inject_ns);
        let index = per_batch(stats.index_ns);
        print_row(vec![
            (*name).into(),
            format!("{:.0}", rates[i]),
            format!("{inject:.3}"),
            format!("{index:.3}"),
            format!("{:.3}", inject + index),
        ]);
        jr.counter(&format!("{name}/inject_ms_per_batch"), inject);
        jr.counter(&format!("{name}/index_ms_per_batch"), index);
        jr.counter(&format!("{name}/batches"), batches as f64);
    }
    println!(
        "\n(per-batch averages over the whole run; timeless tuples: {}, timing tuples: {})",
        (0..5)
            .map(|i| engine.injection_stats(StreamId(i)).0.timeless)
            .sum::<usize>(),
        (0..5)
            .map(|i| engine.injection_stats(StreamId(i)).0.timing)
            .sum::<usize>(),
    );
    jr.engine(&engine);
    jr.finish();
}
