//! Composed-fault chaos harness with state-integrity verification
//! (DESIGN.md §13).
//!
//! Generates seeded [`ChaosSchedule`]s — each composing kills/restarts,
//! lossy/dup links, delayed links, slow nodes, overload spikes, clock
//! anomalies, and bit-flip corruption of messages and checkpoints —
//! and crosses them with the engine's feature matrix (worker count ×
//! incremental × adaptive). Each cell:
//!
//! 1. boots an FT deployment under the compiled fault plan (plus the
//!    schedule's ingest budget, if any), registers the query mix, and
//!    feeds the LSBench timeline, firing ready windows periodically and
//!    running the invariant scrubber between firings,
//! 2. captures the durable state (bit-rotted when the schedule corrupts
//!    checkpoints, alongside a pristine upstream copy), recovers through
//!    the integrity-verified path, and fires the delayed windows,
//! 3. gates the outcome: every `(query, window_end)` firing either
//!    byte-matches the fault-free control or carried an explicit marker
//!    (degraded / unreachable / quarantined shards) when it fired;
//!    every injected message corruption was detected at the install
//!    site (`detected == injected`, the detection-before-emission
//!    argument); a bit-rotted checkpoint chain was rejected and routed
//!    to the backup; and the scrubber found no violated invariant.
//!
//! Any failing cell is re-run under [`shrink_schedule`] until the event
//! list is 1-minimal, the reproducer is printed, and the binary exits
//! non-zero. `--quick` runs one schedule (CI smoke); `--json <path>`
//! writes the machine-readable report.

use std::collections::BTreeMap;
use wukong_bench::{
    ls_workload, print_header, print_row, seed_from_env, BenchJson, LsWorkload, Scale,
};
use wukong_benchdata::{lsbench, TimedTuple};
use wukong_core::{EngineConfig, Firing, OverloadPolicy, RecoveryManager, WukongS};
use wukong_net::{shrink_schedule, ChaosSchedule};
use wukong_rdf::Timestamp;
use wukong_stream::IngestBudget;

const NODES: usize = 4;
/// Timeline tuples between firing/scrub rounds.
const FIRE_EVERY: usize = 250;

type FiringKey = (usize, Timestamp);

/// One collected firing: sorted rows plus whether the firing carried an
/// explicit divergence marker (degraded / unreachable / quarantined).
#[derive(Clone)]
struct Collected {
    rows: Vec<Vec<wukong_rdf::Vid>>,
    marked: bool,
}

type FiringMap = BTreeMap<FiringKey, Collected>;

/// FNV-1a fingerprint of a firing map, for the convergence report.
fn fingerprint(map: &FiringMap) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u64| {
        for byte in b.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for ((q, end), c) in map {
        eat(*q as u64);
        eat(*end);
        for row in &c.rows {
            for v in row {
                eat(v.0);
            }
        }
    }
    h
}

/// Folds firings into the map. An unmarked re-fire of an unmarked window
/// must repeat its rows exactly (at-least-once); re-fires involving a
/// marked firing may differ — the marked side declared itself partial —
/// and the unmarked (complete) rows win. Returns conflicts among
/// unmarked pairs, which the gate treats as silent divergence.
fn collect(firings: Vec<Firing>, into: &mut FiringMap) -> u64 {
    let mut conflicts = 0;
    for f in firings {
        let marked = f.results.degraded.is_some()
            || !f.results.unreachable_shards.is_empty()
            || !f.results.quarantined_shards.is_empty();
        let mut rows = f.results.rows;
        rows.sort();
        let entry = Collected { rows, marked };
        match into.entry((f.query, f.window_end)) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(entry);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                if !e.get().marked && !entry.marked {
                    if e.get().rows != entry.rows {
                        conflicts += 1;
                    }
                } else if e.get().marked {
                    // Prefer the complete (or at least newer) firing.
                    e.insert(entry);
                }
            }
        }
    }
    conflicts
}

fn register_mix(engine: &WukongS, bench: &wukong_benchdata::LsBench) {
    for c in 1..=3 {
        engine
            .register_continuous(&lsbench::continuous_query(bench, c, 0))
            .expect("register");
    }
}

/// The schedule's timeline: the shared workload plus, for schedules
/// with a clock anomaly, one far-future tuple (bad source clock). The
/// anomaly is a workload mutation, so the control gets it too.
fn timeline_for(w: &LsWorkload, anomaly: bool) -> Vec<TimedTuple> {
    let mut t = w.timeline.clone();
    if anomaly {
        if let Some(last) = t.last().cloned() {
            t.push(TimedTuple {
                timestamp: last.timestamp + 7_500,
                ..last
            });
        }
    }
    t
}

fn horizon(w: &LsWorkload, anomaly: bool) -> Timestamp {
    w.duration + if anomaly { 10_000 } else { 0 }
}

/// One feature-matrix cell: worker lanes × incremental × adaptive.
#[derive(Clone, Copy)]
struct Features {
    workers: usize,
    incremental: bool,
    adaptive: bool,
}

const MATRIX: [Features; 8] = {
    let mut m = [Features {
        workers: 1,
        incremental: false,
        adaptive: false,
    }; 8];
    let mut i = 0;
    while i < 8 {
        m[i] = Features {
            workers: if i & 1 == 0 { 1 } else { 4 },
            incremental: i & 2 != 0,
            adaptive: i & 4 != 0,
        };
        i += 1;
    }
    m
};

struct CellOutcome {
    /// Gate failures, empty when the cell passed.
    failures: Vec<String>,
    marked: u64,
    injected_msg: u64,
    detected_msg: u64,
    injected_cp: u64,
    quarantines: u64,
    fingerprint: u64,
    report: wukong_core::RecoveryReport,
    integrity: wukong_obs::IntegritySnapshot,
}

fn run_cell(
    w: &LsWorkload,
    schedule: &ChaosSchedule,
    feat: Features,
    control: &FiringMap,
) -> CellOutcome {
    let cfg = EngineConfig {
        fault_tolerance: true,
        fault_plan: Some(schedule.fault_plan()),
        // Short quiet period so shed→catch-up completes inside the
        // timeline and overloaded cells converge before the gate.
        overload: OverloadPolicy {
            catchup_quiet_ms: 200,
            ..OverloadPolicy::default()
        },
        ..EngineConfig::cluster(NODES)
    }
    .with_workers(feat.workers)
    .with_incremental(feat.incremental)
    .with_adaptive(feat.adaptive)
    .with_ingest_budget(schedule.ingest_budget().map(IngestBudget::tuples));
    let mgr = RecoveryManager::new(
        cfg.clone(),
        w.stored.clone(),
        w.schemas(),
        std::sync::Arc::clone(&w.strings),
    );
    let engine = WukongS::with_strings(cfg, std::sync::Arc::clone(&w.strings));
    engine.load_base(w.stored.iter().copied());
    for schema in w.schemas() {
        engine.register_stream(schema);
    }
    register_mix(&engine, &w.bench);

    let timeline = timeline_for(w, schedule.clock_anomaly());
    let mut fired = FiringMap::new();
    let mut conflicts = 0;
    let mut scrub_hits: Vec<String> = Vec::new();
    let mut checkpointed = false;
    for (i, t) in timeline.iter().enumerate() {
        if i > 0 && i % FIRE_EVERY == 0 {
            conflicts += collect(engine.fire_ready(), &mut fired);
            for v in engine.scrub() {
                scrub_hits.push(format!("pre-recovery: {v}"));
            }
        }
        if !checkpointed && t.timestamp >= w.duration / 2 {
            engine.checkpoint();
            checkpointed = true;
        }
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(horizon(w, schedule.clock_anomaly()));
    conflicts += collect(engine.fire_ready(), &mut fired);
    for v in engine.scrub() {
        scrub_hits.push(format!("pre-recovery: {v}"));
    }
    let detected_msg = engine
        .handle()
        .obs()
        .integrity()
        .snapshot()
        .checksum_fail_message;

    // Crash, capture (bit-rot applies here), recover verified, and fire
    // the windows the faults delayed.
    let (recovered, report) = mgr.drill_verified(&engine, None).expect("recovery");
    recovered.advance_time(horizon(w, schedule.clock_anomaly()));
    conflicts += collect(recovered.fire_ready(), &mut fired);
    for v in recovered.scrub() {
        scrub_hits.push(format!("post-recovery: {v}"));
    }

    let faults = engine.handle().fault_counters();
    let integrity = engine.handle().obs().integrity().snapshot();
    let marked = fired.values().filter(|c| c.marked).count() as u64;

    let mut failures = Vec::new();
    if conflicts > 0 {
        failures.push(format!("{conflicts} unmarked re-fires changed rows"));
    }
    for key in control.keys() {
        match fired.get(key) {
            None => failures.push(format!("firing {key:?} lost")),
            Some(c) if !c.marked && !control[key].marked && c.rows != control[key].rows => {
                failures.push(format!("firing {key:?} silently diverged"))
            }
            _ => {}
        }
    }
    for key in fired.keys() {
        if !control.contains_key(key) {
            failures.push(format!("spurious firing {key:?}"));
        }
    }
    if detected_msg != faults.msgs_corrupted {
        failures.push(format!(
            "message corruption: injected {} detected {detected_msg}",
            faults.msgs_corrupted
        ));
    }
    if faults.msgs_corrupted > 0 && integrity.quarantines == 0 {
        failures.push("corrupted sub-batch quarantined no shard".into());
    }
    if faults.checkpoints_corrupted > 0 && report.integrity_violations == 0 {
        failures.push(format!(
            "{} checkpoint corruptions but recovery reported none",
            faults.checkpoints_corrupted
        ));
    }
    failures.extend(scrub_hits);

    CellOutcome {
        failures,
        marked,
        injected_msg: faults.msgs_corrupted,
        detected_msg,
        injected_cp: faults.checkpoints_corrupted,
        quarantines: integrity.quarantines,
        fingerprint: fingerprint(&fired),
        report,
        integrity,
    }
}

/// Runs the fault-free control for one workload variant and returns its
/// firing map. The control fires on the *same cadence* as the cells:
/// window rows are cadence-sensitive by design — a window fired far
/// behind stream time reads a transient ring its data may have aged out
/// of (and says so via `Degraded::windows_aged`) — so the reference
/// must fire when the cells do. Control marks are possible (a clock
/// anomaly makes the post-jump windows inherently late) and excuse the
/// same keys in the cells.
fn control_run(w: &LsWorkload, anomaly: bool) -> FiringMap {
    let engine = WukongS::with_strings(
        EngineConfig {
            fault_tolerance: true,
            ..EngineConfig::cluster(NODES)
        },
        std::sync::Arc::clone(&w.strings),
    );
    engine.load_base(w.stored.iter().copied());
    for schema in w.schemas() {
        engine.register_stream(schema);
    }
    register_mix(&engine, &w.bench);
    let mut map = FiringMap::new();
    let mut conflicts = 0;
    for (i, t) in timeline_for(w, anomaly).iter().enumerate() {
        if i > 0 && i % FIRE_EVERY == 0 {
            conflicts += collect(engine.fire_ready(), &mut map);
        }
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(horizon(w, anomaly));
    conflicts += collect(engine.fire_ready(), &mut map);
    assert_eq!(conflicts, 0, "control must not conflict");
    assert!(engine.scrub().is_empty(), "control must scrub clean");
    map
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut jr = BenchJson::from_env("exp_chaos");
    let scale = Scale::from_env();
    let base_seed = seed_from_env();
    let w = ls_workload(scale);
    let schedules = if quick { 1 } else { 64 };
    println!(
        "LSBench: {} stored triples, {} stream tuples over {} ms (scale {scale:?}, {NODES} nodes, {schedules} schedules)",
        w.stored.len(),
        w.timeline.len(),
        w.duration,
    );

    // Controls are per-workload, not per-feature-cell: worker count,
    // incremental maintenance, and adaptive planning are all proven
    // byte-identical on results, so two controls (with/without the
    // clock-anomaly tuple) cover the whole matrix.
    let control_plain = control_run(&w, false);
    let mut control_anomaly: Option<FiringMap> = None;
    println!("control run: {} firings", control_plain.len());

    print_header(
        "Chaos: composed faults × feature matrix vs control",
        &[
            "seed", "events", "cell", "marked", "inj msg", "det msg", "inj cp", "quar", "result",
        ],
    );
    let mut failed: Option<(ChaosSchedule, Features, Vec<String>)> = None;
    let mut marked_total = 0u64;
    let mut injected_total = 0u64;
    let mut detected_total = 0u64;
    let mut last: Option<CellOutcome> = None;
    for i in 0..schedules {
        let schedule = ChaosSchedule::generate(base_seed + i as u64, NODES as u16, w.duration);
        let feat = MATRIX[i % MATRIX.len()];
        if schedule.clock_anomaly() && control_anomaly.is_none() {
            control_anomaly = Some(control_run(&w, true));
        }
        let control = if schedule.clock_anomaly() {
            control_anomaly.as_ref().expect("built above")
        } else {
            &control_plain
        };
        let out = run_cell(&w, &schedule, feat, control);
        let pass = out.failures.is_empty();
        print_row(vec![
            format!("{}", schedule.seed),
            format!("{}", schedule.events.len()),
            format!(
                "w{}{}{}",
                feat.workers,
                if feat.incremental { "+inc" } else { "" },
                if feat.adaptive { "+adp" } else { "" }
            ),
            format!("{}", out.marked),
            format!("{}", out.injected_msg),
            format!("{}", out.detected_msg),
            format!("{}", out.injected_cp),
            format!("{}", out.quarantines),
            if pass {
                format!("{:08x}", out.fingerprint as u32)
            } else {
                "FAIL".into()
            },
        ]);
        marked_total += out.marked;
        injected_total += out.injected_msg + out.injected_cp;
        detected_total += out.detected_msg + u64::from(out.report.integrity_violations > 0);
        if !pass {
            for f in out.failures.iter().take(5) {
                eprintln!("  gate: {f}");
            }
            if out.failures.len() > 5 {
                eprintln!("  gate: ... {} more", out.failures.len() - 5);
            }
            if failed.is_none() {
                failed = Some((schedule, feat, out.failures.clone()));
            }
        }
        last = Some(out);
    }

    if let Some(out) = &last {
        jr.recovery(&out.report);
        jr.integrity(&out.integrity);
    }
    jr.counter("schedules", schedules as f64);
    jr.counter("marked_firings", marked_total as f64);
    jr.counter("injected_corruptions", injected_total as f64);
    jr.counter("detected_corruptions", detected_total as f64);
    jr.counter("all_pass", if failed.is_none() { 1.0 } else { 0.0 });
    jr.finish();

    if let Some((schedule, feat, failures)) = failed {
        eprintln!(
            "\nchaos FAILED under seed {} ({} gate failures); shrinking...",
            schedule.seed,
            failures.len()
        );
        // Greedy 1-minimal shrink: re-run the failing cell against each
        // candidate schedule, keeping removals that preserve failure.
        let control = if schedule.clock_anomaly() {
            control_anomaly
                .clone()
                .unwrap_or_else(|| control_run(&w, true))
        } else {
            control_plain.clone()
        };
        let minimal = shrink_schedule(schedule, |candidate| {
            let control = if candidate.clock_anomaly() {
                &control
            } else {
                &control_plain
            };
            !run_cell(&w, candidate, feat, control).failures.is_empty()
        });
        eprintln!("minimal reproducer:\n{}", minimal.describe());
        std::process::exit(1);
    }
    println!(
        "\nall {schedules} schedules converged or reported: {marked_total} marked firings, \
         {injected_total} injected corruptions, {detected_total} detections"
    );
}
