//! Fig. 15: throughput of the full 6-class mix (L1-L6) vs cluster size,
//! plus the latency CDF on 8 nodes.
//!
//! Same methodology as Fig. 14 (see that binary and `EXPERIMENTS.md`).
//! Paper shape: lower peak than the L1-L3 mix (~802 K q/s) but *super*
//! scaling (~5× from 2 to 8 nodes) because the group II queries
//! themselves get faster on more nodes.

use wukong_bench::{feed_engine, fmt_ms, ls_workload, print_header, print_row, BenchJson, Scale};
use wukong_benchdata::lsbench;
use wukong_core::{EngineConfig, LatencyRecorder, WukongS};

const WORKERS_PER_NODE: f64 = 16.0;

fn measure_mix(
    engine: &WukongS,
    bench: &wukong_benchdata::LsBench,
    classes: &[usize],
    variants: usize,
    runs_per_variant: usize,
) -> Vec<LatencyRecorder> {
    classes
        .iter()
        .map(|&class| {
            let mut rec = LatencyRecorder::new();
            for v in 0..variants {
                let id = engine
                    .register_continuous(&lsbench::continuous_query(bench, class, v))
                    .expect("register");
                let _ = engine.execute_registered(id);
                for _ in 0..runs_per_variant {
                    let (_, ms) = engine.execute_registered(id);
                    rec.record(ms);
                }
            }
            rec
        })
        .collect()
}

fn mix_throughput(recs: &[LatencyRecorder], nodes: usize) -> (f64, f64) {
    let lats: Vec<f64> = recs.iter().map(|r| r.mean().expect("samples")).collect();
    let inv_sum: f64 = lats.iter().map(|l| 1.0 / l).sum();
    let mean_ms = lats.len() as f64 / inv_sum;
    let thr = WORKERS_PER_NODE * nodes as f64 / (mean_ms / 1_000.0);
    (thr, mean_ms)
}

fn main() {
    let mut jr = BenchJson::from_env("fig15_throughput_mix6");
    let scale = Scale::from_env();
    let w = ls_workload(scale);
    let classes = [1usize, 2, 3, 4, 5, 6];
    let variants = match scale {
        Scale::Tiny => 2,
        _ => 8,
    };
    let runs = (scale.runs() / 20).max(3);
    println!(
        "LSBench mix L1-L6: {} variants/class, {} runs/variant (scale {scale:?})",
        variants, runs
    );

    print_header(
        "Fig 15a: throughput vs nodes (mix L1-L6)",
        &["nodes", "q/s", "mean lat ms"],
    );
    let mut last_recs = Vec::new();
    let mut first_thr = None;
    let mut last_thr = 0.0;
    for nodes in [2usize, 3, 4, 5, 6, 7, 8] {
        let engine = feed_engine(
            EngineConfig::cluster(nodes),
            &w.strings,
            w.schemas(),
            &w.stored,
            &w.timeline,
            w.duration,
        );
        let recs = measure_mix(&engine, &w.bench, &classes, variants, runs);
        let (thr, mean_ms) = mix_throughput(&recs, nodes);
        jr.counter(&format!("throughput_qps/nodes{nodes}"), thr);
        if nodes == 8 {
            for (i, rec) in recs.iter().enumerate() {
                jr.series(&format!("L{}/nodes8", classes[i]), rec);
            }
            jr.engine(&engine);
        }
        first_thr.get_or_insert(thr);
        last_thr = thr;
        print_row(vec![
            nodes.to_string(),
            format!("{:.0}", thr),
            fmt_ms(mean_ms),
        ]);
        last_recs = recs;
    }
    println!(
        "\n2→8-node throughput scaling: {:.1}X",
        last_thr / first_thr.unwrap_or(1.0)
    );

    print_header(
        "Fig 15b: latency CDF on 8 nodes (ms at percentile)",
        &["query", "p50", "p90", "p99", "p100"],
    );
    for (i, rec) in last_recs.iter().enumerate() {
        print_row(vec![
            format!("L{}", classes[i]),
            fmt_ms(rec.percentile(50.0).expect("samples")),
            fmt_ms(rec.percentile(90.0).expect("samples")),
            fmt_ms(rec.percentile(99.0).expect("samples")),
            fmt_ms(rec.percentile(100.0).expect("samples")),
        ]);
    }
    jr.finish();
}
