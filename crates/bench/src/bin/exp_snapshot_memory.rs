//! §6.7: the memory benefit of bounded snapshot scalarization.
//!
//! The paper reports the stored-RDF memory footprint with 2/3 retained
//! snapshots, with and without scalarization (e.g. 37.7 GB vs 44.0 GB at
//! 2 snapshots), and that registering all 5 streams costs nothing extra
//! *with* scalarization.
//!
//! Here the with-scalarization footprint is measured from the store; the
//! without-scalarization footprint is the same store plus the per-append
//! vector-timestamp tagging the strawman design needs (§4.3): every
//! appended neighbour carries one timestamp per registered stream plus a
//! version pointer, computed from the engine's append counters.

use wukong_bench::{feed_engine, ls_workload, print_header, print_row, BenchJson, Scale};
use wukong_core::EngineConfig;
use wukong_rdf::StreamId;
use wukong_stream::StalenessBound;

fn main() {
    let mut jr = BenchJson::from_env("exp_snapshot_memory");
    let scale = Scale::from_env();
    let w = ls_workload(scale);
    println!(
        "LSBench: {} stored triples, {} stream tuples over {} ms (scale {scale:?})",
        w.stored.len(),
        w.timeline.len(),
        w.duration,
    );

    print_header(
        "§6.7: store footprint (MB) with bounded snapshot scalarization",
        &["snapshots", "with SN (MB)", "without (MB)", "saving"],
    );

    for retain in [2u64, 3] {
        // The staleness bound controls how many batches share a snapshot;
        // retained snapshots per key stay at ~2 either way, so `retain`
        // here scales the modelled strawman cost.
        let engine = feed_engine(
            EngineConfig {
                staleness: StalenessBound(1),
                ..EngineConfig::cluster(8)
            },
            &w.strings,
            w.schemas(),
            &w.stored,
            &w.timeline,
            w.duration,
        );
        let with_sn = engine.cluster().store_bytes() as f64;

        // Strawman: every appended entry tagged with a VTS (one u64 per
        // stream) plus a per-version pointer (16 B), retained per kept
        // snapshot.
        let streams = 5u64;
        let appended: u64 = (0..5)
            .map(|i| engine.injection_stats(StreamId(i)).0.timeless as u64)
            .sum::<u64>()
            * 2; // out-key and in-key copies
        let vts_bytes = appended * (streams * 8 + 16) * (retain - 1);
        let without = with_sn + vts_bytes as f64;

        jr.counter(&format!("retain{retain}/with_sn_bytes"), with_sn);
        jr.counter(&format!("retain{retain}/without_bytes"), without);
        let mb = |b: f64| b / (1 << 20) as f64;
        print_row(vec![
            retain.to_string(),
            format!("{:.1}", mb(with_sn)),
            format!("{:.1}", mb(without)),
            format!("{:.1}%", 100.0 * (without - with_sn) / without),
        ]);
    }

    // Verify the bound actually holds on a live deployment.
    let engine = feed_engine(
        EngineConfig::cluster(8),
        &w.strings,
        w.schemas(),
        &w.stored,
        &w.timeline,
        w.duration,
    );
    let max_retained = (0..8u16)
        .map(|n| engine.cluster().shard(n).max_retained_snapshots())
        .max()
        .unwrap_or(0);
    println!("\nMax snapshot intervals retained by any key: {max_retained} (bound: 2 + in-flight)");
    jr.counter("max_retained_snapshots", max_retained as f64);
    jr.engine(&engine);
    jr.finish();
}
