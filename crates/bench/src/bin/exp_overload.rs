//! Overload drill: a seeded 4× rate spike plus a gray-failing (slow)
//! node against bounded ingest, deterministic shedding, and
//! shed-then-catch-up recovery (DESIGN.md §11), end to end.
//!
//! One control run feeds the *spiked* LSBench timeline into an unbounded,
//! fault-free engine — what a machine with infinite headroom would
//! compute. Each drill cell then feeds the identical timeline into a
//! budgeted engine with a slow node active during the spike and checks:
//!
//! 1. **Liveness**: the stable VTS reaches the end of the timeline even
//!    though the spike overflows the ingest budget — shedding degrades
//!    answers, never progress.
//! 2. **Exact staleness accounting**: firings whose windows consumed a
//!    shed batch carry `degraded` markers; one-shot admission is closed
//!    while the engine sheds.
//! 3. **Determinism**: running the same cell twice produces a
//!    byte-identical shed log and byte-identical degraded markers (the
//!    shed decisions never read the wall clock).
//! 4. **Convergence**: after the quiet period the engine replays the
//!    retained shed suffix; every firing after catch-up is row-identical
//!    to the control run — the overload leaves no permanent damage.
//! 5. **Byte-identity when clean**: a cell whose budget exceeds the spike
//!    never sheds, never marks, and matches the control in every firing.
//!
//! Any violated gate exits non-zero. `--quick` runs the drop-oldest cell
//! only (CI smoke); `--json <path>` writes the machine-readable report.

use std::collections::BTreeMap;
use wukong_bench::{ls_workload, print_header, print_row, BenchJson, LsWorkload, Scale};
use wukong_benchdata::{lsbench, TimedTuple};
use wukong_core::{EngineConfig, Firing, OverloadState, WukongS};
use wukong_net::{FaultPlan, NodeId};
use wukong_rdf::Timestamp;
use wukong_stream::{IngestBudget, ShedPolicy};

const NODES: usize = 2;
/// Spike amplification: every tuple inside the spike window arrives 4×.
const AMP: usize = 4;
/// Slow-node gray failure during the spike: 3× virtual-time slowdown.
const SLOW_FACTOR_X100: u64 = 300;
/// Catch-up quiet period for the drill (short, so the post-spike tail of
/// the timeline triggers the replay well before the final firing).
const QUIET_MS: u64 = 300;

type FiringKey = (usize, Timestamp);
type FiringMap = BTreeMap<FiringKey, Vec<Vec<wukong_rdf::Vid>>>;

/// FNV-1a over a canonical u64 stream (same hash across runs ⇔ the
/// hashed stream is byte-identical).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// The spiked timeline: inside `[from, until)` every tuple is repeated
/// `AMP`× — a deterministic rate spike, identical for every engine.
fn spiked_timeline(w: &LsWorkload, from: Timestamp, until: Timestamp) -> Vec<TimedTuple> {
    let mut out = Vec::with_capacity(w.timeline.len() * 2);
    for t in &w.timeline {
        out.push(*t);
        if t.timestamp >= from && t.timestamp < until {
            for _ in 1..AMP {
                out.push(*t);
            }
        }
    }
    out
}

/// The largest number of spiked tuples landing in one batch interval of
/// one stream — the peak the budget is sized against.
fn peak_batch(w: &LsWorkload, timeline: &[TimedTuple]) -> usize {
    let intervals: Vec<u64> = w.schemas().iter().map(|s| s.batch_interval_ms).collect();
    let mut buckets: BTreeMap<(u16, u64), usize> = BTreeMap::new();
    for t in timeline {
        let iv = intervals[t.stream.0 as usize].max(1);
        *buckets.entry((t.stream.0, t.timestamp / iv)).or_insert(0) += 1;
    }
    buckets.values().copied().max().unwrap_or(1)
}

fn register_mix(engine: &WukongS, bench: &wukong_benchdata::LsBench) {
    for c in 1..=3 {
        engine
            .register_continuous(&lsbench::continuous_query(bench, c, 0))
            .expect("register");
    }
}

fn collect(firings: Vec<Firing>, into: &mut FiringMap, markers: &mut Vec<(FiringKey, u64, u32)>) {
    for f in firings {
        if let Some(d) = f.results.degraded {
            markers.push(((f.query, f.window_end), d.tuples_shed, d.windows_affected));
        }
        let mut rows = f.results.rows;
        rows.sort();
        into.insert((f.query, f.window_end), rows);
    }
}

struct RunOutcome {
    during: FiringMap,
    after: FiringMap,
    /// `(firing key, tuples_shed, windows_affected)` for marked firings.
    markers: Vec<(FiringKey, u64, u32)>,
    shed_log_hash: u64,
    total_shed: u64,
    outstanding: u64,
    state_after: OverloadState,
    rejected_while_shedding: bool,
    snap: wukong_obs::OverloadSnapshot,
}

/// Feeds the spiked timeline, firing once at the spike's end (degraded
/// firings) and once at the end of the timeline (post-catch-up firings).
/// Control and cells fire at the same stream times, so their firing keys
/// line up one to one.
fn run(w: &LsWorkload, timeline: &[TimedTuple], until: Timestamp, cfg: EngineConfig) -> RunOutcome {
    let budgeted = cfg.ingest_budget.is_some();
    let engine = WukongS::with_strings(cfg, std::sync::Arc::clone(&w.strings));
    engine.load_base(w.stored.iter().copied());
    for schema in w.schemas() {
        engine.register_stream(schema);
    }
    register_mix(&engine, &w.bench);

    let mut during = FiringMap::new();
    let mut after = FiringMap::new();
    let mut markers = Vec::new();
    let mut fired_mid = false;
    let mut rejected_while_shedding = false;
    for t in timeline {
        if !fired_mid && t.timestamp >= until {
            collect(engine.fire_ready(), &mut during, &mut markers);
            // Admission control: while the engine sheds, one-shot work
            // is turned away (the control run stays open).
            if budgeted && engine.overload_state() == OverloadState::Shedding {
                rejected_while_shedding = engine
                    .one_shot(&lsbench::oneshot_query(&w.bench, 1, 0))
                    .is_err();
            }
            fired_mid = true;
        }
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(w.duration);
    collect(engine.fire_ready(), &mut after, &mut markers);

    let mut log_hash = Fnv::new();
    for r in engine.shed_log() {
        log_hash.push(r.stream.0 as u64);
        log_hash.push(r.batch_ts);
        log_hash.push(r.tuples_shed);
    }
    RunOutcome {
        during,
        after,
        markers,
        shed_log_hash: log_hash.0,
        total_shed: engine.total_shed(),
        outstanding: engine.shed_outstanding(),
        state_after: engine.overload_state(),
        rejected_while_shedding,
        snap: engine.handle().obs().overload().snapshot(),
    }
}

fn cell_config(
    policy: ShedPolicy,
    budget: usize,
    from: Timestamp,
    until: Timestamp,
) -> EngineConfig {
    let mut cfg = EngineConfig::cluster(NODES)
        .with_ingest_budget(Some(IngestBudget::tuples(budget)))
        .with_shed_policy(policy);
    cfg.overload.catchup_quiet_ms = QUIET_MS;
    // The drill's gates are deterministic; keep the (wall-clock) latency
    // trip out of the picture so they stay exact.
    cfg.overload.latency_budget_ms = 1e9;
    cfg.fault_plan = Some(
        FaultPlan::seeded(wukong_bench::seed_from_env()).slow_node_during(
            NodeId(1),
            SLOW_FACTOR_X100,
            from,
            until,
        ),
    );
    cfg
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut jr = BenchJson::from_env("exp_overload");
    let scale = Scale::from_env();
    let w = ls_workload(scale);
    let (from, until) = (w.duration / 3, w.duration / 2);
    let timeline = spiked_timeline(&w, from, until);
    let peak = peak_batch(&w, &timeline);
    // A quarter of the spiked peak: the spike overflows hard, the
    // steady-state rate mostly fits.
    let budget = (peak / AMP).max(4);
    println!(
        "LSBench: {} stored triples, {} stream tuples ({} after the {AMP}x spike over [{from}, {until})), \
         peak batch {peak}, budget {budget} tuples ({NODES} nodes, scale {scale:?})",
        w.stored.len(),
        w.timeline.len(),
        timeline.len(),
    );

    // Control: the same spiked timeline, unbounded and fault-free.
    let control = run(&w, &timeline, until, EngineConfig::cluster(NODES));
    assert_eq!(control.total_shed, 0);
    assert!(control.markers.is_empty());
    println!(
        "control run: {} + {} firings",
        control.during.len(),
        control.after.len()
    );

    let policies: &[ShedPolicy] = if quick {
        &[ShedPolicy::DropOldestWindow]
    } else {
        &[ShedPolicy::DropOldestWindow, ShedPolicy::SampleWithinBatch]
    };

    print_header(
        "Overload drill: spike + slow node vs bounded ingest",
        &[
            "cell",
            "shed",
            "markers",
            "reject",
            "replays",
            "converged",
            "result",
        ],
    );
    let mut all_match = true;
    let mut last_snap = None;
    for &policy in policies {
        let tag = match policy {
            ShedPolicy::DropOldestWindow => "drop_oldest",
            ShedPolicy::SampleWithinBatch => "sample",
        };
        let a = run(
            &w,
            &timeline,
            until,
            cell_config(policy, budget, from, until),
        );
        let b = run(
            &w,
            &timeline,
            until,
            cell_config(policy, budget, from, until),
        );

        // Gate 1 — liveness: the run completed and the state machine
        // settled back to Normal with nothing left outstanding.
        let live = a.state_after == OverloadState::Normal && a.outstanding == 0;
        // Gate 2 — the spike was actually shed, firings over the shed
        // batches carried markers, and admission control closed.
        let degraded = a.total_shed > 0 && !a.markers.is_empty() && a.rejected_while_shedding;
        // Gate 3 — determinism: byte-identical shed log and markers
        // across two identical runs.
        let deterministic = a.shed_log_hash == b.shed_log_hash && a.markers == b.markers;
        // Gate 4 — convergence: every post-catch-up firing matches the
        // control, and none still carries a marker.
        let converged = a.after == control.after
            && a.markers.iter().all(|(k, _, _)| a.during.contains_key(k))
            && a.snap.catchup_replays >= 1
            && a.snap.catchup_replayed_tuples == a.total_shed;
        let ok = live && degraded && deterministic && converged;
        all_match &= ok;
        print_row(vec![
            tag.into(),
            format!("{}", a.total_shed),
            format!("{}", a.markers.len()),
            if a.rejected_while_shedding {
                "yes"
            } else {
                "no"
            }
            .into(),
            format!("{}", a.snap.catchup_replays),
            if converged { "yes" } else { "no" }.into(),
            if ok { "PASS" } else { "FAIL" }.into(),
        ]);
        jr.counter(&format!("{tag}/tuples_shed"), a.total_shed as f64);
        jr.counter(&format!("{tag}/degraded_firings"), a.markers.len() as f64);
        jr.counter(
            &format!("{tag}/catchup_replays"),
            a.snap.catchup_replays as f64,
        );
        jr.counter(&format!("{tag}/pass"), if ok { 1.0 } else { 0.0 });
        last_snap = Some(a.snap);
    }

    // Gate 5 — byte-identity when clean: a budget the spike never
    // overflows sheds nothing and matches the control everywhere.
    let mut clean_cfg =
        EngineConfig::cluster(NODES).with_ingest_budget(Some(IngestBudget::tuples(peak * 2 + 16)));
    clean_cfg.overload.catchup_quiet_ms = QUIET_MS;
    clean_cfg.overload.latency_budget_ms = 1e9;
    let clean = run(&w, &timeline, until, clean_cfg);
    let clean_ok = clean.total_shed == 0
        && clean.markers.is_empty()
        && clean.snap.tuples_shed == 0
        && clean.during == control.during
        && clean.after == control.after;
    all_match &= clean_ok;
    print_row(vec![
        "clean".into(),
        "0".into(),
        "0".into(),
        "-".into(),
        "0".into(),
        if clean_ok { "yes" } else { "no" }.into(),
        if clean_ok { "PASS" } else { "FAIL" }.into(),
    ]);
    jr.counter("clean/pass", if clean_ok { 1.0 } else { 0.0 });

    if let Some(snap) = last_snap {
        jr.overload(&snap);
    }
    jr.counter("cells", (policies.len() + 1) as f64);
    jr.counter("all_match", if all_match { 1.0 } else { 0.0 });
    jr.finish();

    if !all_match {
        eprintln!("overload drill FAILED: a gate did not hold");
        std::process::exit(1);
    }
    println!("\nall {} cells pass every gate", policies.len() + 1);
}
