//! Table 4: further 8-node comparisons on LSBench.
//!
//! Columns: Heron+Wukong (total, Heron, Wukong) | Structured Streaming |
//! Wukong/Ext. Paper shape: Heron helps the stream-only queries but the
//! cross-system cost still dominates queries that touch stored data;
//! Structured Streaming supports only L1-L3 (✗ elsewhere) and is slower
//! than Spark Streaming; Wukong/Ext trails Wukong+S by 1.6-4.4×.

use wukong_baselines::{CompositePlan, CompositeProfile, SparkMode};
use wukong_bench::workload::LS_STREAMS;
use wukong_bench::{
    feed_composite, feed_engine, feed_spark, feed_wukong_ext, fmt_ms, ls_workload, print_header,
    print_row, sample_composite, sample_continuous, BenchJson, Scale,
};
use wukong_benchdata::lsbench;
use wukong_core::metrics::geometric_mean;
use wukong_core::EngineConfig;

fn main() {
    let mut jr = BenchJson::from_env("table4_latency_more");
    let scale = Scale::from_env();
    let nodes = 8;
    let w = ls_workload(scale);
    let runs = scale.runs();
    println!(
        "LSBench: {} stored triples, {} stream tuples over {} ms, {nodes} nodes (scale {scale:?})",
        w.stored.len(),
        w.timeline.len(),
        w.duration,
    );

    // Wukong+S as the reference column for the Wukong/Ext speedup note.
    let engine = feed_engine(
        EngineConfig::cluster(nodes),
        &w.strings,
        w.schemas(),
        &w.stored,
        &w.timeline,
        w.duration,
    );
    let mut heron = feed_composite(
        CompositeProfile::heron_wukong(nodes),
        &w.strings,
        &LS_STREAMS,
        &w.stored,
        &w.timeline,
    );
    let mut structured = feed_spark(
        SparkMode::Structured,
        &w.strings,
        &LS_STREAMS,
        &w.stored,
        &w.timeline,
    );
    let mut ext = feed_wukong_ext(nodes, &w.strings, &LS_STREAMS, &w.stored, &w.timeline);

    let texts: Vec<String> = (1..=lsbench::CONTINUOUS_CLASSES)
        .map(|c| lsbench::continuous_query(&w.bench, c, 0))
        .collect();
    let wids: Vec<usize> = texts
        .iter()
        .map(|t| {
            engine
                .register_continuous(t)
                .expect("Wukong+S registration")
        })
        .collect();
    let hids: Vec<usize> = texts
        .iter()
        .map(|t| heron.register_continuous(t).expect("Heron registration"))
        .collect();
    let structured_ids: Vec<Option<usize>> = texts
        .iter()
        .map(|t| structured.register_continuous(t).ok())
        .collect();
    let eids: Vec<usize> = texts
        .iter()
        .map(|t| ext.register_continuous(t).expect("Wukong/Ext registration"))
        .collect();

    print_header(
        "Table 4: further 8-node comparisons (ms), LSBench",
        &[
            "query",
            "H+W all",
            "(Heron)",
            "(Wukong)",
            "Structured",
            "Wukong/Ext",
            "Wukong+S",
        ],
    );

    let mut geo_h = Vec::new();
    let mut geo_e = Vec::new();
    let mut geo_w = Vec::new();
    for (i, class) in (1..=lsbench::CONTINUOUS_CLASSES).enumerate() {
        let (hrec, hbd) = sample_composite(
            &heron,
            hids[i],
            w.duration,
            CompositePlan::Interleaved,
            runs,
        );
        let h_total = hrec.median().expect("samples");

        let st = match structured_ids[i] {
            Some(id) => {
                let n = (runs / 10).max(3);
                let mut samples: Vec<f64> = (0..n)
                    .map(|_| structured.execute(id, w.duration).1)
                    .collect();
                samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                fmt_ms(samples[samples.len() / 2])
            }
            None => "x".into(),
        };

        let mut ext_samples: Vec<f64> = (0..runs)
            .map(|_| ext.execute(eids[i], w.duration).1)
            .collect();
        ext_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let e_med = ext_samples[ext_samples.len() / 2];

        let wrec = sample_continuous(&engine, wids[i], runs);
        jr.series(&format!("L{class}/wukong_s"), &wrec);
        let ws = wrec.median().expect("samples");

        geo_h.push(h_total);
        geo_e.push(e_med);
        geo_w.push(ws);
        print_row(vec![
            format!("L{class}"),
            fmt_ms(h_total),
            fmt_ms(hbd.stream_ms + hbd.cross_ms),
            fmt_ms(hbd.store_ms),
            st,
            fmt_ms(e_med),
            fmt_ms(ws),
        ]);
    }
    print_row(vec![
        "Geo.M".into(),
        fmt_ms(geometric_mean(geo_h.iter().copied()).unwrap_or(0.0)),
        String::new(),
        String::new(),
        String::new(),
        fmt_ms(geometric_mean(geo_e.iter().copied()).unwrap_or(0.0)),
        fmt_ms(geometric_mean(geo_w.iter().copied()).unwrap_or(0.0)),
    ]);
    jr.counter(
        "geo_mean_wukong_s_ms",
        geometric_mean(geo_w.iter().copied()).unwrap_or(0.0),
    );
    jr.engine(&engine);
    jr.finish();
}
