//! Table 8: one-shot (SPARQL) query performance on LSBench.
//!
//! Rows S1-S6; columns: static Wukong | Wukong+S with streams enabled
//! (/Off: no continuous queries running) | Wukong+S with concurrent
//! continuous queries (/On). Paper shape: Wukong+S inherits Wukong's
//! performance; enabling streams costs < 5%, and concurrent continuous
//! queries add ≈ 5% more despite sharing the store.

use wukong_bench::{feed_engine, fmt_ms, ls_workload, print_header, print_row, BenchJson, Scale};
use wukong_benchdata::lsbench;
use wukong_core::metrics::geometric_mean;
use wukong_core::{EngineConfig, LatencyRecorder};

fn main() {
    let mut jr = BenchJson::from_env("table8_oneshot");
    let scale = Scale::from_env();
    let nodes = 8;
    let w = ls_workload(scale);
    let runs = scale.runs();
    println!(
        "LSBench: {} stored triples, {} stream tuples over {} ms, {nodes} nodes (scale {scale:?})",
        w.stored.len(),
        w.timeline.len(),
        w.duration,
    );

    // Static Wukong: the base store only, no streams.
    let wukong = feed_engine(
        EngineConfig::cluster(nodes),
        &w.strings,
        Vec::new(),
        &w.stored,
        &[],
        0,
    );
    // Wukong+S with all five streams ingested.
    let wukongs = feed_engine(
        EngineConfig::cluster(nodes),
        &w.strings,
        w.schemas(),
        &w.stored,
        &w.timeline,
        w.duration,
    );
    // Continuous load for the /On column (selective classes, as in §6.9's
    // maximum-throughput continuous workers).
    let cont_ids: Vec<usize> = (1..=3)
        .map(|c| {
            wukongs
                .register_continuous(&lsbench::continuous_query(&w.bench, c, 0))
                .expect("register continuous load")
        })
        .collect();

    print_header(
        "Table 8: one-shot query latency (ms), LSBench",
        &["query", "Wukong", "Wukong+S/Off", "Wukong+S/On"],
    );

    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for class in 1..=lsbench::ONESHOT_CLASSES {
        let text = lsbench::oneshot_query(&w.bench, class, 0);

        let median = |samples: &mut Vec<f64>| {
            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            samples[samples.len() / 2]
        };

        let mut s0: Vec<f64> = (0..runs)
            .map(|_| wukong.one_shot(&text).expect("one-shot").1)
            .collect();
        let mut s1: Vec<f64> = (0..runs)
            .map(|_| wukongs.one_shot(&text).expect("one-shot").1)
            .collect();
        // /On: interleave continuous executions with the one-shot samples
        // (they share the persistent store and its locks).
        let mut s2: Vec<f64> = (0..runs)
            .map(|i| {
                let _ = wukongs.execute_registered(cont_ids[i % cont_ids.len()]);
                wukongs.one_shot(&text).expect("one-shot").1
            })
            .collect();

        for (name, samples) in [("wukong", &s0), ("wukongs_off", &s1), ("wukongs_on", &s2)] {
            let mut rec = LatencyRecorder::new();
            for &v in samples.iter() {
                rec.record(v);
            }
            jr.series(&format!("S{class}/{name}"), &rec);
        }
        let (m0, m1, m2) = (median(&mut s0), median(&mut s1), median(&mut s2));
        geo[0].push(m0);
        geo[1].push(m1);
        geo[2].push(m2);
        print_row(vec![
            format!("S{class}"),
            fmt_ms(m0),
            fmt_ms(m1),
            fmt_ms(m2),
        ]);
    }
    print_row(vec![
        "Geo.M".into(),
        fmt_ms(geometric_mean(geo[0].iter().copied()).unwrap_or(0.0)),
        fmt_ms(geometric_mean(geo[1].iter().copied()).unwrap_or(0.0)),
        fmt_ms(geometric_mean(geo[2].iter().copied()).unwrap_or(0.0)),
    ]);
    for (name, series) in [
        ("wukong", &geo[0]),
        ("wukongs_off", &geo[1]),
        ("wukongs_on", &geo[2]),
    ] {
        jr.counter(
            &format!("geo_mean_{name}_ms"),
            geometric_mean(series.iter().copied()).unwrap_or(0.0),
        );
    }
    jr.engine(&wukongs);
    jr.finish();
}
