//! Fig. 12: Wukong+S latency vs cluster size (2-8 nodes) on LSBench.
//!
//! Paper shape: group I (L1-L3, selective, in-place execution) stays
//! flat as nodes grow; group II (L4-L6, fork-join over the whole stored
//! graph) speeds up 2.8-3.2× from 2 to 8 nodes.

use wukong_bench::{
    feed_engine, fmt_ms, ls_workload, print_header, print_row, sample_continuous, BenchJson, Scale,
};
use wukong_benchdata::lsbench;
use wukong_core::EngineConfig;

fn main() {
    let mut jr = BenchJson::from_env("fig12_scalability");
    let scale = Scale::from_env();
    let w = ls_workload(scale);
    let runs = scale.runs();
    println!(
        "LSBench: {} stored triples, {} stream tuples over {} ms (scale {scale:?})",
        w.stored.len(),
        w.timeline.len(),
        w.duration,
    );

    let node_counts = [2usize, 4, 6, 8];
    // medians[class-1][node index]
    let mut medians = vec![vec![0.0f64; node_counts.len()]; lsbench::CONTINUOUS_CLASSES];
    for (ni, &nodes) in node_counts.iter().enumerate() {
        let engine = feed_engine(
            EngineConfig::cluster(nodes),
            &w.strings,
            w.schemas(),
            &w.stored,
            &w.timeline,
            w.duration,
        );
        for class in 1..=lsbench::CONTINUOUS_CLASSES {
            let id = engine
                .register_continuous(&lsbench::continuous_query(&w.bench, class, 0))
                .expect("register");
            let rec = sample_continuous(&engine, id, runs);
            jr.series(&format!("L{class}/nodes{nodes}"), &rec);
            medians[class - 1][ni] = rec.median().expect("samples");
        }
        if nodes == *node_counts.last().expect("non-empty") {
            jr.engine(&engine);
        }
    }

    for (title, range) in [
        ("group I (selective)", 0..3),
        ("group II (non-selective)", 3..6),
    ] {
        print_header(
            &format!("Fig 12 {title}: latency (ms) vs nodes"),
            &["query", "2", "4", "6", "8", "2→8 speedup"],
        );
        for c in range {
            let row = &medians[c];
            print_row(vec![
                format!("L{}", c + 1),
                fmt_ms(row[0]),
                fmt_ms(row[1]),
                fmt_ms(row[2]),
                fmt_ms(row[3]),
                format!("{:.1}X", row[0] / row[3].max(1e-9)),
            ]);
        }
    }
    jr.finish();
}
