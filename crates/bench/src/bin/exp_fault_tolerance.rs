//! §6.8: fault-tolerance overhead, plus a crash/recovery check.
//!
//! Paper shape: enabling per-batch logging + periodic checkpointing costs
//! ≈ 11% throughput on the L1-L3 mix and raises the p99 latency
//! (0.15 → 0.73 ms there) while the median stays put.
//!
//! Throughput here is *wall-clock measured*: a worker loop executes the
//! query mix as fast as it can; in the FT configuration the same loop
//! also streams fresh batches with logging enabled and takes periodic
//! checkpoints — the work real deployments interleave with query serving.

use std::time::{Duration, Instant};
use wukong_bench::{feed_engine, fmt_ms, ls_workload, print_header, print_row, BenchJson, Scale};
use wukong_benchdata::lsbench;
use wukong_core::{EngineConfig, LatencyRecorder, WukongS};
use wukong_rdf::Timestamp;

fn run_loop(
    engine: &WukongS,
    bench: &wukong_benchdata::LsBench,
    replay: Option<&[wukong_benchdata::TimedTuple]>,
    base_time: Timestamp,
    checkpoint_every: Option<Duration>,
    seconds: f64,
) -> (f64, LatencyRecorder) {
    let ids: Vec<usize> = (1..=3)
        .map(|c| {
            engine
                .register_continuous(&lsbench::continuous_query(bench, c, 0))
                .expect("register")
        })
        .collect();
    for &id in &ids {
        let _ = engine.execute_registered(id);
    }

    let mut rec = LatencyRecorder::new();
    let mut executed = 0u64;
    let start = Instant::now();
    let mut next_cp = checkpoint_every;
    let mut replay_pos = 0usize;
    let mut replay_clock;
    while start.elapsed().as_secs_f64() < seconds {
        let (_, ms) = engine.execute_registered(ids[(executed % 3) as usize]);
        rec.record(ms);
        executed += 1;

        // FT configuration: interleave fresh stream batches (logged) and
        // periodic checkpoints, like the paper's measured deployment.
        if let Some(tl) = replay {
            if executed.is_multiple_of(16) && replay_pos < tl.len() {
                let chunk_end = (replay_pos + 64).min(tl.len());
                for t in &tl[replay_pos..chunk_end] {
                    engine.ingest(t.stream, t.triple, base_time + t.timestamp);
                }
                replay_pos = chunk_end;
                replay_clock = base_time + tl[chunk_end - 1].timestamp;
                engine.advance_time(replay_clock);
            }
        }
        if let Some(every) = checkpoint_every {
            if let Some(at) = next_cp {
                if start.elapsed() >= at {
                    engine.checkpoint();
                    next_cp = Some(at + every);
                }
            }
        }
    }
    let thr = executed as f64 / start.elapsed().as_secs_f64();
    (thr, rec)
}

fn main() {
    let mut jr = BenchJson::from_env("exp_fault_tolerance");
    let scale = Scale::from_env();
    let nodes = 8;
    let w = ls_workload(scale);
    println!(
        "LSBench: {} stored triples, {} stream tuples over {} ms (scale {scale:?})",
        w.stored.len(),
        w.timeline.len(),
        w.duration,
    );
    // Extra stream data to inject during the measured loops. The FT
    // overhead scales with the streaming rate (logging is per batch and
    // per tuple), so the live feed runs at a rate closer to the paper's:
    // 25× the scaled workload default.
    let mut live_cfg = w.bench.config().clone();
    live_cfg.rate_scale *= 25.0;
    let mut gen2 = wukong_benchdata::LsBench::new(live_cfg, std::sync::Arc::clone(&w.strings));
    gen2.stored_triples();
    let live = gen2.generate(0, 2_000);

    let seconds = match scale {
        Scale::Tiny => 1.0,
        _ => 3.0,
    };

    let plain = feed_engine(
        EngineConfig::cluster(nodes),
        &w.strings,
        w.schemas(),
        &w.stored,
        &w.timeline,
        w.duration,
    );
    // Both configurations stream the same live data; only logging and
    // checkpointing differ, so the delta isolates the FT machinery.
    let (thr_plain, rec_plain) = run_loop(&plain, &w.bench, Some(&live), w.duration, None, seconds);

    let ft = feed_engine(
        EngineConfig {
            fault_tolerance: true,
            ..EngineConfig::cluster(nodes)
        },
        &w.strings,
        w.schemas(),
        &w.stored,
        &w.timeline,
        w.duration,
    );
    let (thr_ft, rec_ft) = run_loop(
        &ft,
        &w.bench,
        Some(&live),
        w.duration,
        Some(Duration::from_millis(250)),
        seconds,
    );

    jr.series("ft_off", &rec_plain);
    jr.series("ft_on", &rec_ft);
    jr.counter("ft_off/qps", thr_plain);
    jr.counter("ft_on/qps", thr_ft);

    print_header(
        "§6.8: fault-tolerance overhead (mix L1-L3, 8 nodes, wall-clock)",
        &["config", "p50 ms", "p99 ms", "rel q/s", "drop"],
    );
    for (name, thr, rec) in [
        ("FT off", thr_plain, &rec_plain),
        ("FT on", thr_ft, &rec_ft),
    ] {
        print_row(vec![
            name.into(),
            fmt_ms(rec.percentile(50.0).expect("samples")),
            fmt_ms(rec.percentile(99.0).expect("samples")),
            format!("{:.0}", thr),
            format!("{:.1}%", 100.0 * (1.0 - thr / thr_plain)),
        ]);
    }

    // Injection-side cost of logging (the paper's ~0.3 ms/batch delay).
    let (s_plain, b_plain) = plain.injection_stats(wukong_rdf::StreamId(0));
    let (s_ft, b_ft) = ft.injection_stats(wukong_rdf::StreamId(0));
    println!(
        "\nPO-stream injection per batch: {:.3} ms without FT, {:.3} ms with FT logging",
        s_plain.inject_ns as f64 / 1e6 / b_plain.max(1) as f64,
        s_ft.inject_ns as f64 / 1e6 / b_ft.max(1) as f64,
    );
    jr.counter(
        "ft_off/inject_ms_per_batch",
        s_plain.inject_ns as f64 / 1e6 / b_plain.max(1) as f64,
    );
    jr.counter(
        "ft_on/inject_ms_per_batch",
        s_ft.inject_ns as f64 / 1e6 / b_ft.max(1) as f64,
    );

    // Crash/recovery round trip on the biggest class (Fig. 2's QC).
    let cp = ft.checkpoint();
    let mut cps = ft.checkpoints();
    if !cps.contains(&cp) {
        cps.push(cp);
    }
    let (recovered, report) = WukongS::recover_with_report(
        EngineConfig {
            fault_tolerance: true,
            ..EngineConfig::cluster(nodes)
        },
        w.stored.iter().copied(),
        w.schemas(),
        &w.strings,
        &cps,
    )
    .expect("recovery");
    println!(
        "\nRecovery: {:.2} ms, {} batches and {} queries replayed, {} duplicates suppressed",
        report.recovery_ms,
        report.replayed_batches,
        report.replayed_queries,
        report.dedup_suppressed,
    );
    jr.recovery(&report);
    let q = lsbench::continuous_query(&w.bench, 5, 0);
    let orig_id = ft.register_continuous(&q).expect("register");
    let rec_id = recovered.register_continuous(&q).expect("register");
    let (orig, _) = ft.execute_registered(orig_id);
    let (rec, _) = recovered.execute_registered(rec_id);
    let mut a = orig.rows.clone();
    let mut b = rec.rows.clone();
    a.sort();
    b.sort();
    println!(
        "\nRecovery check (QC): original {} rows, recovered {} rows — {}",
        a.len(),
        b.len(),
        if a == b { "MATCH" } else { "MISMATCH" }
    );
    jr.counter("recovery_match", if a == b { 1.0 } else { 0.0 });
    jr.engine(&ft);
    jr.finish();
}
