//! Ablation: locality-aware stream-index partitioning (§4.2).
//!
//! With replication, a continuous query reads the stream index locally and
//! pays at most one RDMA read per remote value; without it, every remote
//! window lookup pays "an additional RDMA read" for the index itself. The
//! price of replication is injection-time messages to subscriber nodes.

use wukong_bench::{
    feed_engine, fmt_ms, ls_workload, print_header, print_row, sample_continuous, BenchJson, Scale,
};
use wukong_benchdata::lsbench;
use wukong_core::EngineConfig;

fn main() {
    let mut jr = BenchJson::from_env("exp_replication");
    let scale = Scale::from_env();
    let nodes = 8;
    let w = ls_workload(scale);
    let runs = scale.runs();
    println!(
        "LSBench: {} stored triples, {} stream tuples over {} ms, {nodes} nodes (scale {scale:?})",
        w.stored.len(),
        w.timeline.len(),
        w.duration,
    );

    let mut engines = Vec::new();
    for replicate in [true, false] {
        let engine = feed_engine(
            EngineConfig {
                replicate_stream_indexes: replicate,
                // Hold execution in-place so the ablation isolates the
                // stream-access path.
                exec_mode: wukong_core::ExecMode::InPlace,
                ..EngineConfig::cluster(nodes)
            },
            &w.strings,
            w.schemas(),
            &w.stored,
            &w.timeline,
            w.duration,
        );
        engines.push((replicate, engine));
    }

    print_header(
        "§4.2 ablation: stream-index replication (in-place execution)",
        &["query", "replicated", "partitioned", "slowdown"],
    );
    let mut reads = Vec::new();
    for class in 1..=lsbench::CONTINUOUS_CLASSES {
        let text = lsbench::continuous_query(&w.bench, class, 0);
        let mut medians = Vec::new();
        for (replicate, engine) in &engines {
            let id = engine.register_continuous(&text).expect("register");
            let before = engine.cluster().fabric().metrics();
            let rec = sample_continuous(engine, id, runs);
            let mode = if *replicate {
                "replicated"
            } else {
                "partitioned"
            };
            jr.series(&format!("L{class}/{mode}"), &rec);
            medians.push(rec.median().expect("samples"));
            let delta = before.delta(&engine.cluster().fabric().metrics());
            reads.push(delta.one_sided_reads / (runs as u64 + 1));
        }
        print_row(vec![
            format!("L{class}"),
            fmt_ms(medians[0]),
            fmt_ms(medians[1]),
            format!("{:.1}X", medians[1] / medians[0].max(1e-9)),
        ]);
    }
    println!(
        "\nMean one-sided reads per execution: {} replicated vs {} partitioned",
        reads.iter().step_by(2).sum::<u64>() / 6,
        reads.iter().skip(1).step_by(2).sum::<u64>() / 6,
    );
    jr.engine(&engines[0].1);
    jr.finish();
}
