//! Fig. 4: execution-time breakdown of QC on Storm+Wukong, both plans.
//!
//! QC is Fig. 2's continuous query (our L5 class). Paper shape: the
//! interleaved plan (a) spends ≈ 39% of its time on cross-system cost;
//! the stream-first plan (b) makes fewer crossings but is *slower*
//! overall because joining the two stream relations first produces a huge
//! intermediate result that the store side cannot prune (CC ≈ 46%).

use wukong_baselines::{CompositePlan, CompositeProfile};
use wukong_bench::workload::LS_STREAMS;
use wukong_bench::{
    feed_composite, feed_engine, fmt_ms, ls_workload, print_header, print_row, sample_composite,
    sample_continuous, BenchJson, Scale,
};
use wukong_benchdata::lsbench;
use wukong_core::EngineConfig;

fn main() {
    let mut jr = BenchJson::from_env("fig4_breakdown");
    let scale = Scale::from_env();
    let w = ls_workload(scale);
    let runs = scale.runs();
    println!(
        "LSBench: {} stored triples, {} stream tuples over {} ms (scale {scale:?})",
        w.stored.len(),
        w.timeline.len(),
        w.duration,
    );

    let mut storm = feed_composite(
        CompositeProfile::storm_wukong(1),
        &w.strings,
        &LS_STREAMS,
        &w.stored,
        &w.timeline,
    );
    let qc = lsbench::continuous_query(&w.bench, 5, 0);
    let id = storm.register_continuous(&qc).expect("register QC");

    print_header(
        "Fig 4: Storm+Wukong breakdown of QC (ms)",
        &["plan", "total", "stream", "store", "cross", "CC %"],
    );
    for (name, plan) in [
        ("(a) interleaved", CompositePlan::Interleaved),
        ("(b) stream-first", CompositePlan::StreamFirst),
    ] {
        let (rec, bd) = sample_composite(&storm, id, w.duration, plan, runs);
        jr.series(name, &rec);
        jr.counter(&format!("{name}/cross_fraction"), bd.cross_fraction());
        print_row(vec![
            name.into(),
            fmt_ms(rec.median().expect("samples")),
            fmt_ms(bd.stream_ms),
            fmt_ms(bd.store_ms),
            fmt_ms(bd.cross_ms),
            format!("{:.1}%", 100.0 * bd.cross_fraction()),
        ]);
    }

    // Reference: the same query on integrated Wukong+S.
    let engine = feed_engine(
        EngineConfig::single_node(),
        &w.strings,
        w.schemas(),
        &w.stored,
        &w.timeline,
        w.duration,
    );
    let wid = engine.register_continuous(&qc).expect("register");
    let wrec = sample_continuous(&engine, wid, runs);
    jr.series("wukong_s/QC", &wrec);
    let ws = wrec.median().expect("samples");
    println!(
        "\nIntegrated Wukong+S runs QC in {} ms (no cross-system cost).",
        fmt_ms(ws)
    );
    jr.engine(&engine);
    jr.finish();
}
