//! Table 5: the performance impact of RDMA on Wukong+S (8 nodes).
//!
//! Rows: Wukong+S (RDMA, in-place for selective queries) vs Non-RDMA
//! (TCP costs, forced fork-join). Paper shape: selective L1-L3 are
//! insensitive (~1.0-1.1×); non-selective L4-L6 slow down 1.8-3.5×.

use wukong_bench::{
    feed_engine, fmt_ms, ls_workload, print_header, print_row, sample_continuous, BenchJson, Scale,
};
use wukong_benchdata::lsbench;
use wukong_core::metrics::geometric_mean;
use wukong_core::EngineConfig;

fn main() {
    let mut jr = BenchJson::from_env("table5_rdma");
    let scale = Scale::from_env();
    let nodes = 8;
    let w = ls_workload(scale);
    let runs = scale.runs();
    println!(
        "LSBench: {} stored triples, {} stream tuples over {} ms, {nodes} nodes (scale {scale:?})",
        w.stored.len(),
        w.timeline.len(),
        w.duration,
    );

    let rdma = feed_engine(
        EngineConfig::cluster(nodes),
        &w.strings,
        w.schemas(),
        &w.stored,
        &w.timeline,
        w.duration,
    );
    let tcp = feed_engine(
        EngineConfig::cluster_tcp(nodes),
        &w.strings,
        w.schemas(),
        &w.stored,
        &w.timeline,
        w.duration,
    );

    print_header(
        "Table 5: RDMA impact on Wukong+S (ms), LSBench, 8 nodes",
        &["query", "Wukong+S", "Non-RDMA", "slowdown"],
    );

    let mut geo_r = Vec::new();
    let mut geo_t = Vec::new();
    for class in 1..=lsbench::CONTINUOUS_CLASSES {
        let text = lsbench::continuous_query(&w.bench, class, 0);
        let rid = rdma.register_continuous(&text).expect("register");
        let tid = tcp.register_continuous(&text).expect("register");
        let rrec = sample_continuous(&rdma, rid, runs);
        let trec = sample_continuous(&tcp, tid, runs);
        jr.series(&format!("L{class}/rdma"), &rrec);
        jr.series(&format!("L{class}/non_rdma"), &trec);
        let r = rrec.median().expect("samples");
        let t = trec.median().expect("samples");
        geo_r.push(r);
        geo_t.push(t);
        print_row(vec![
            format!("L{class}"),
            fmt_ms(r),
            fmt_ms(t),
            format!("{:.1}X", t / r.max(1e-9)),
        ]);
    }
    let gr = geometric_mean(geo_r).unwrap_or(0.0);
    let gt = geometric_mean(geo_t).unwrap_or(0.0);
    print_row(vec![
        "Geo.M".into(),
        fmt_ms(gr),
        fmt_ms(gt),
        format!("{:.1}X", gt / gr.max(1e-9)),
    ]);
    jr.counter("geo_mean_rdma_ms", gr);
    jr.counter("geo_mean_non_rdma_ms", gt);
    jr.engine(&rdma);
    jr.finish();
}
