//! Recovery drill: kill a node mid-stream, crash, replay checkpoint+log,
//! and check the recovered deployment's firings against a never-failed
//! control run (§5's recovery path, end to end).
//!
//! For each cell of a (killed node × kill time) matrix the drill:
//!
//! 1. boots an FT deployment with a fault plan that kills the node at the
//!    scheduled stream time, registers the continuous-query mix *before*
//!    feeding (so the query log checkpoints them),
//! 2. feeds the timeline, firing the ready windows just before the kill;
//!    after the kill the stable VTS stalls at the victim's last insert,
//! 3. "crashes": captures the durable state (drained checkpoints + log
//!    tail) exactly as a dying process would leave it, recovers a fresh
//!    engine from it, and fires the windows the outage delayed,
//! 4. compares every `(query, window_end)` firing — pre-crash plus
//!    post-recovery — against the control run's result rows.
//!
//! At-least-once means a window at the recovery horizon may fire twice;
//! the comparison asserts the repeat is row-identical, never missing.
//! Any lost or divergent firing exits non-zero.
//!
//! `--quick` runs a single cell (CI smoke); `--json <path>` writes the
//! machine-readable report.

use std::collections::BTreeMap;
use wukong_bench::{ls_workload, print_header, print_row, BenchJson, Scale};
use wukong_benchdata::lsbench;
use wukong_core::{EngineConfig, Firing, RecoveryManager, WukongS};
use wukong_net::{FaultPlan, NodeId};
use wukong_rdf::Timestamp;

type FiringKey = (usize, Timestamp);
type FiringMap = BTreeMap<FiringKey, Vec<Vec<wukong_rdf::Vid>>>;

/// Folds firings into the `(query, window_end) → sorted rows` map,
/// asserting that a re-fired window (at-least-once) repeats its rows
/// exactly. Returns how many duplicate firings were absorbed.
fn collect(firings: Vec<Firing>, into: &mut FiringMap) -> u64 {
    let mut dups = 0;
    for f in firings {
        let mut rows = f.results.rows;
        rows.sort();
        match into.entry((f.query, f.window_end)) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(rows);
            }
            std::collections::btree_map::Entry::Occupied(e) => {
                assert_eq!(
                    e.get(),
                    &rows,
                    "re-fired window {:?} changed its rows",
                    e.key()
                );
                dups += 1;
            }
        }
    }
    dups
}

fn register_mix(engine: &WukongS, bench: &wukong_benchdata::LsBench) {
    for c in 1..=3 {
        engine
            .register_continuous(&lsbench::continuous_query(bench, c, 0))
            .expect("register");
    }
}

struct CellOutcome {
    recovery_ms: f64,
    replayed_batches: u64,
    dedup_suppressed: u64,
    refired: u64,
    matches: bool,
    report: wukong_core::RecoveryReport,
}

fn run_cell(
    w: &wukong_bench::LsWorkload,
    nodes: usize,
    victim: u16,
    kill_ms: Timestamp,
    control: &FiringMap,
) -> CellOutcome {
    let cfg = EngineConfig {
        fault_tolerance: true,
        fault_plan: Some(
            FaultPlan::seeded(wukong_bench::seed_from_env()).kill_at(NodeId(victim), kill_ms),
        ),
        ..EngineConfig::cluster(nodes)
    };
    let mgr = RecoveryManager::new(
        cfg.clone(),
        w.stored.clone(),
        w.schemas(),
        std::sync::Arc::clone(&w.strings),
    );
    let engine = WukongS::with_strings(cfg, std::sync::Arc::clone(&w.strings));
    engine.load_base(w.stored.iter().copied());
    for schema in w.schemas() {
        engine.register_stream(schema);
    }
    register_mix(&engine, &w.bench);

    let mut fired = FiringMap::new();
    let mut refired = 0;
    let mut fired_pre_kill = false;
    let mut checkpointed = false;
    for t in &w.timeline {
        // Last fully-live moment: collect everything ready before the
        // kill lands (the kill applies on the next ingest's clock tick).
        if !fired_pre_kill && t.timestamp >= kill_ms {
            refired += collect(engine.fire_ready(), &mut fired);
            fired_pre_kill = true;
        }
        if !checkpointed && t.timestamp >= kill_ms / 2 {
            engine.checkpoint();
            checkpointed = true;
        }
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(w.duration);

    // Crash and recover. The drill captures the durable state exactly as
    // the dying process leaves it and replays it into a fresh engine.
    let (recovered, report) = mgr.drill(&engine, NodeId(victim)).expect("recovery");
    refired += collect(recovered.fire_ready(), &mut fired);

    let matches = &fired == control;
    CellOutcome {
        recovery_ms: report.recovery_ms,
        replayed_batches: report.replayed_batches,
        dedup_suppressed: report.dedup_suppressed,
        refired,
        matches,
        report,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut jr = BenchJson::from_env("exp_recovery_drill");
    let scale = Scale::from_env();
    let nodes = 4;
    let w = ls_workload(scale);
    println!(
        "LSBench: {} stored triples, {} stream tuples over {} ms (scale {scale:?}, {nodes} nodes)",
        w.stored.len(),
        w.timeline.len(),
        w.duration,
    );

    // Control: identical workload and query mix, never failed.
    let control_engine = WukongS::with_strings(
        EngineConfig {
            fault_tolerance: true,
            ..EngineConfig::cluster(nodes)
        },
        std::sync::Arc::clone(&w.strings),
    );
    control_engine.load_base(w.stored.iter().copied());
    for schema in w.schemas() {
        control_engine.register_stream(schema);
    }
    register_mix(&control_engine, &w.bench);
    for t in &w.timeline {
        control_engine.ingest(t.stream, t.triple, t.timestamp);
    }
    control_engine.advance_time(w.duration);
    let mut control = FiringMap::new();
    collect(control_engine.fire_ready(), &mut control);
    println!("control run: {} firings", control.len());

    let cells: Vec<(u16, Timestamp)> = if quick {
        vec![(1, w.duration / 2)]
    } else {
        vec![
            (1, w.duration / 3),
            (1, 2 * w.duration / 3),
            ((nodes - 1) as u16, w.duration / 3),
            ((nodes - 1) as u16, 2 * w.duration / 3),
        ]
    };

    print_header(
        "Recovery drill: kill → crash → replay vs control",
        &[
            "victim", "kill ms", "rec ms", "replayed", "dedup", "refired", "result",
        ],
    );
    let mut all_match = true;
    let mut last = None;
    for &(victim, kill_ms) in &cells {
        let out = run_cell(&w, nodes, victim, kill_ms, &control);
        all_match &= out.matches;
        print_row(vec![
            format!("node {victim}"),
            format!("{kill_ms}"),
            format!("{:.2}", out.recovery_ms),
            format!("{}", out.replayed_batches),
            format!("{}", out.dedup_suppressed),
            format!("{}", out.refired),
            if out.matches { "MATCH" } else { "MISMATCH" }.into(),
        ]);
        let tag = format!("kill_n{victim}_t{kill_ms}");
        jr.counter(&format!("{tag}/recovery_ms"), out.recovery_ms);
        jr.counter(
            &format!("{tag}/replayed_batches"),
            out.replayed_batches as f64,
        );
        jr.counter(&format!("{tag}/refired"), out.refired as f64);
        jr.counter(&format!("{tag}/match"), if out.matches { 1.0 } else { 0.0 });
        last = Some(out.report);
    }
    if let Some(report) = last {
        jr.recovery(&report);
    }
    jr.counter("cells", cells.len() as f64);
    jr.counter("all_match", if all_match { 1.0 } else { 0.0 });
    jr.finish();

    if !all_match {
        eprintln!("recovery drill FAILED: a recovered run diverged from the control");
        std::process::exit(1);
    }
    println!("\nall {} cells match the control run", cells.len());
}
