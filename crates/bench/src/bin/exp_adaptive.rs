//! Adaptive re-planning vs a static plan across selectivity regimes.
//!
//! One seeded two-pattern join workload — `?X po ?Z . ?Y li ?Z` over a
//! wide shared-object domain, so the cheaper predicate to index-scan
//! first dominates the modeled cost — runs through two otherwise
//! identical single-node deployments: one with the adaptive layer off
//! (the plan derived at the first firing is kept forever) and one with
//! `EngineConfig::adaptive` on (plan cache, cardinality feedback, drift
//! detector, cost-model execution-mode selection; DESIGN.md §12). Three
//! regimes sweep how per-predicate selectivity evolves:
//!
//! | regime   | timeline                                   | expectation |
//! |----------|--------------------------------------------|-------------|
//! | stable   | `po` rare, `li` heavy throughout           | 0 re-plans  |
//! | drift    | selectivity flips at the midpoint          | ≥ 1 re-plan |
//! | reversal | flips at 1/3, flips back at 2/3            | ≥ 2 re-plans|
//!
//! Three things are gated:
//!
//! - **Equivalence.** Both runs fold their firing sequences into an
//!   FNV-1a hash (window ends + every row in engine order); any
//!   difference on any regime fails the run. Re-planning must be
//!   result-transparent.
//! - **Modeled cost.** The deterministic work metric is the engine's
//!   `edges_traversed` counter (sum of per-step output rows across
//!   recompute firings). On the drifted regime the static engine keeps
//!   index-scanning the predicate that exploded; the adaptive engine
//!   re-plans onto the now-rare one and must traverse at least
//!   [`MIN_DRIFT_GAIN`]× fewer modeled edges. On the stable regime the
//!   adaptive engine must never re-plan (no thrash).
//! - **Determinism.** Every repetition of a configuration must agree on
//!   the firing hash *and* on the re-plan count — drift trips are a pure
//!   function of the seeded workload, not of wall clock.
//!
//! `--quick` shrinks the timeline (CI smoke); `--json <path>` writes the
//! machine-readable report (schema v6, including the `plan` member).

use std::sync::Arc;
use wukong_bench::{fmt_ms, print_header, print_row, BenchJson};
use wukong_core::{EngineConfig, WukongS};
use wukong_obs::PlanSnapshot;
use wukong_rdf::{StreamId, StringServer, Triple, Vid};
use wukong_stream::StreamSchema;

/// Mini-batch interval and window STEP, ms.
const INTERVAL_MS: u64 = 100;
/// Window RANGE, ms (3 batches of overlap keep firings join-shaped).
const RANGE_MS: u64 = 300;
/// Subjects per predicate side.
const SUBJECTS: u64 = 40;
/// Shared-object domain (wide ⇒ the join stays selective and the
/// index-scan choice dominates the modeled cost).
const OBJECTS: u64 = 50;
/// Tuples per batch for the rare predicate.
const RARE_PER_BATCH: u64 = 4;
/// Tuples per batch for the heavy predicate. The rare:heavy contrast
/// must clear the drift band (8×) even against estimates frozen from a
/// full RANGE window of the rare phase: `(160·3 + 1)/(4·3·4 + 1) ≈ 9.8`.
const HEAVY_PER_BATCH: u64 = 160;
/// Repetitions per (regime, mode); wall-clock noise is almost entirely
/// upward, so the minimum total cost is the stable estimator.
const REPS: usize = 3;
/// The drifted regime's gate: static modeled edges over adaptive.
const MIN_DRIFT_GAIN: f64 = 1.5;

/// SplitMix64 (the differential harness's primitive): seeded, so every
/// repetition and both modes replay the byte-identical timeline.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// FNV-1a over the canonical firing stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// How a regime's per-predicate rates evolve over the timeline.
#[derive(Clone, Copy)]
enum Regime {
    /// `po` rare, `li` heavy for the whole run.
    Stable,
    /// Flip at the midpoint: `po` explodes, `li` collapses.
    Drift,
    /// Flip at 1/3, flip back at 2/3.
    Reversal,
}

impl Regime {
    fn name(self) -> &'static str {
        match self {
            Regime::Stable => "stable",
            Regime::Drift => "drift",
            Regime::Reversal => "reversal",
        }
    }

    /// `(po per batch, li per batch)` at time `tick` of `duration`.
    fn rates(self, tick: u64, duration: u64) -> (u64, u64) {
        let calm = (RARE_PER_BATCH, HEAVY_PER_BATCH);
        let flipped = (HEAVY_PER_BATCH, RARE_PER_BATCH);
        match self {
            Regime::Stable => calm,
            Regime::Drift => {
                if tick <= duration / 2 {
                    calm
                } else {
                    flipped
                }
            }
            Regime::Reversal => {
                if tick <= duration / 3 || tick > 2 * duration / 3 {
                    calm
                } else {
                    flipped
                }
            }
        }
    }
}

struct Workload {
    strings: Arc<StringServer>,
    /// `(triple, raw timestamp)`, time-ordered.
    timeline: Vec<(Triple, u64)>,
    duration: u64,
}

fn workload(seed: u64, regime: Regime, duration: u64) -> Workload {
    let strings = Arc::new(StringServer::new());
    let subjects: Vec<Vid> = (0..SUBJECTS)
        .map(|i| strings.intern_entity(&format!("s{i}")).expect("interns"))
        .collect();
    let objects: Vec<Vid> = (0..OBJECTS)
        .map(|i| strings.intern_entity(&format!("o{i}")).expect("interns"))
        .collect();
    let po = strings.intern_predicate("po").expect("interns");
    let li = strings.intern_predicate("li").expect("interns");

    let mut rng = Rng(seed);
    let mut timeline = Vec::new();
    for tick in (INTERVAL_MS..=duration).step_by(INTERVAL_MS as usize) {
        let (n_po, n_li) = regime.rates(tick, duration);
        for (pred, n) in [(po, n_po), (li, n_li)] {
            for _ in 0..n {
                let t = Triple::new(
                    subjects[rng.below(SUBJECTS) as usize],
                    pred,
                    objects[rng.below(OBJECTS) as usize],
                );
                timeline.push((t, tick - rng.below(INTERVAL_MS)));
            }
        }
    }
    timeline.sort_by_key(|(_, ts)| *ts);
    Workload {
        strings,
        timeline,
        duration,
    }
}

struct RunOutcome {
    /// Sum of per-firing wall latency, ms.
    total_ms: f64,
    firings: u64,
    rows: u64,
    hash: u64,
    counters: PlanSnapshot,
}

fn run(w: &Workload, adaptive: bool) -> RunOutcome {
    let engine = WukongS::with_strings(
        EngineConfig::single_node().with_adaptive(adaptive),
        Arc::clone(&w.strings),
    );
    let s = engine.register_stream(StreamSchema::timeless(StreamId(0), "S", INTERVAL_MS));
    engine
        .register_continuous(&format!(
            "REGISTER QUERY ADAPT SELECT ?X ?Y ?Z \
             FROM S [RANGE {RANGE_MS}ms STEP {INTERVAL_MS}ms] \
             WHERE {{ GRAPH S {{ ?X po ?Z }} GRAPH S {{ ?Y li ?Z }} }}"
        ))
        .expect("registers");

    let before = engine.cluster().obs().plan().snapshot();
    let mut fed = 0;
    let mut total_ms = 0.0;
    let mut firings = 0u64;
    let mut rows = 0u64;
    let mut hash = Fnv::new();
    for tick in (INTERVAL_MS..=w.duration).step_by(INTERVAL_MS as usize) {
        while fed < w.timeline.len() && w.timeline[fed].1 <= tick {
            engine.ingest(s, w.timeline[fed].0, w.timeline[fed].1);
            fed += 1;
        }
        engine.advance_time(tick);
        for f in engine.fire_ready() {
            total_ms += f.latency_ms;
            firings += 1;
            hash.push(f.window_end);
            for row in &f.results.rows {
                rows += 1;
                for v in row {
                    hash.push(v.0);
                }
            }
        }
    }
    let counters = before.delta(&engine.cluster().obs().plan().snapshot());
    RunOutcome {
        total_ms,
        firings,
        rows,
        hash: hash.0,
        counters,
    }
}

/// Best-of-[`REPS`] by wall cost; all repetitions must agree on the
/// firing hash *and* the re-plan count — drift trips are a pure function
/// of the seeded workload, so any disagreement is a determinism bug.
fn best_run(w: &Workload, regime: Regime, adaptive: bool) -> RunOutcome {
    let mut out = run(w, adaptive);
    for _ in 1..REPS {
        let rerun = run(w, adaptive);
        assert_eq!(
            rerun.hash,
            out.hash,
            "non-deterministic firing stream ({}, adaptive {adaptive})",
            regime.name()
        );
        assert_eq!(
            rerun.counters.replans,
            out.counters.replans,
            "non-deterministic re-plan points ({}, adaptive {adaptive})",
            regime.name()
        );
        if rerun.total_ms < out.total_ms {
            out = rerun;
        }
    }
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut jr = BenchJson::from_env("exp_adaptive");
    let duration = if quick { 3_000 } else { 6_000 };

    print_header(
        "Adaptive re-planning vs a static plan per selectivity regime",
        &[
            "regime",
            "static ms",
            "adaptive ms",
            "edges s",
            "edges a",
            "gain",
            "replans",
            "result",
        ],
    );

    let regimes = [Regime::Stable, Regime::Drift, Regime::Reversal];
    let mut all_match = true;
    let mut drift_gain = 0.0;
    let mut drift_replans = 0u64;
    let mut stable_replans = 0u64;
    let mut reversal_replans = 0u64;
    let mut last_counters = PlanSnapshot::default();
    for regime in regimes {
        let w = workload(11, regime, duration);
        let stat = best_run(&w, regime, false);
        let adap = best_run(&w, regime, true);
        let matches =
            stat.hash == adap.hash && stat.firings == adap.firings && stat.rows == adap.rows;
        all_match &= matches;
        let gain =
            stat.counters.edges_traversed as f64 / (adap.counters.edges_traversed as f64).max(1.0);
        match regime {
            Regime::Stable => stable_replans = adap.counters.replans,
            Regime::Drift => {
                drift_gain = gain;
                drift_replans = adap.counters.replans;
            }
            Regime::Reversal => reversal_replans = adap.counters.replans,
        }
        print_row(vec![
            regime.name().into(),
            fmt_ms(stat.total_ms),
            fmt_ms(adap.total_ms),
            format!("{}", stat.counters.edges_traversed),
            format!("{}", adap.counters.edges_traversed),
            format!("{gain:.2}x"),
            format!("{}", adap.counters.replans),
            if matches { "MATCH" } else { "MISMATCH" }.into(),
        ]);

        let tag = regime.name();
        jr.counter(&format!("{tag}/static_total_ms"), stat.total_ms);
        jr.counter(&format!("{tag}/adaptive_total_ms"), adap.total_ms);
        jr.counter(
            &format!("{tag}/static_edges"),
            stat.counters.edges_traversed as f64,
        );
        jr.counter(
            &format!("{tag}/adaptive_edges"),
            adap.counters.edges_traversed as f64,
        );
        jr.counter(&format!("{tag}/edge_gain"), gain);
        jr.counter(&format!("{tag}/replans"), adap.counters.replans as f64);
        jr.counter(
            &format!("{tag}/drifted_firings"),
            adap.counters.drifted_firings as f64,
        );
        jr.counter(
            &format!("{tag}/feedback_firings"),
            adap.counters.feedback_firings as f64,
        );
        jr.counter(&format!("{tag}/firings"), adap.firings as f64);
        jr.counter(&format!("{tag}/rows"), adap.rows as f64);
        jr.counter(
            &format!("{tag}/hash_match"),
            if matches { 1.0 } else { 0.0 },
        );
        last_counters = adap.counters;
    }

    jr.plan(&last_counters);
    jr.counter("drift_gain", drift_gain);
    jr.counter("all_match", if all_match { 1.0 } else { 0.0 });
    jr.finish();

    if !all_match {
        eprintln!("exp_adaptive FAILED: adaptive firings diverged from the static plan");
        std::process::exit(1);
    }
    if stable_replans != 0 {
        eprintln!(
            "exp_adaptive FAILED: {stable_replans} re-plans on the stable regime (plan thrash)"
        );
        std::process::exit(1);
    }
    if drift_replans < 1 || reversal_replans < 2 {
        eprintln!(
            "exp_adaptive FAILED: drift not caught (drift {drift_replans} re-plans, \
             reversal {reversal_replans})"
        );
        std::process::exit(1);
    }
    if drift_gain < MIN_DRIFT_GAIN {
        eprintln!(
            "exp_adaptive FAILED: drifted-regime modeled gain {drift_gain:.2}x \
             (< {MIN_DRIFT_GAIN}x)"
        );
        std::process::exit(1);
    }
    println!(
        "\nall regimes byte-identical; drifted-regime modeled gain {drift_gain:.2}x; \
         re-plan points deterministic over {REPS} repetitions"
    );
}
