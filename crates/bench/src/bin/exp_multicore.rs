//! §6.4 (second experiment): trading cores for latency.
//!
//! "Assigning 4 cores on each node can speed up L4, L5 and L6 by 3.0X,
//! 3.5X and 2.7X respectively" — clients trade resources for latency when
//! it matters. Selective queries run in-place on one worker and gain
//! nothing.

use wukong_bench::{
    feed_engine, fmt_ms, ls_workload, print_header, print_row, sample_continuous, BenchJson, Scale,
};
use wukong_benchdata::lsbench;
use wukong_core::EngineConfig;

fn main() {
    let mut jr = BenchJson::from_env("exp_multicore");
    let scale = Scale::from_env();
    let nodes = 8;
    let w = ls_workload(scale);
    let runs = scale.runs();
    println!(
        "LSBench: {} stored triples, {} stream tuples over {} ms, {nodes} nodes (scale {scale:?})",
        w.stored.len(),
        w.timeline.len(),
        w.duration,
    );

    let engines: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|cores| {
            (
                cores,
                feed_engine(
                    EngineConfig {
                        cores_per_query: cores,
                        ..EngineConfig::cluster(nodes)
                    },
                    &w.strings,
                    w.schemas(),
                    &w.stored,
                    &w.timeline,
                    w.duration,
                ),
            )
        })
        .collect();

    print_header(
        "§6.4: latency (ms) vs worker cores per query, group II",
        &["query", "1 core", "2 cores", "4 cores", "1→4 speedup"],
    );
    for class in 4..=6 {
        let text = lsbench::continuous_query(&w.bench, class, 0);
        let mut medians = Vec::new();
        for (cores, engine) in &engines {
            let id = engine.register_continuous(&text).expect("register");
            let rec = sample_continuous(engine, id, runs);
            jr.series(&format!("L{class}/cores{cores}"), &rec);
            medians.push(rec.median().expect("samples"));
        }
        print_row(vec![
            format!("L{class}"),
            fmt_ms(medians[0]),
            fmt_ms(medians[1]),
            fmt_ms(medians[2]),
            format!("{:.1}X", medians[0] / medians[2].max(1e-9)),
        ]);
    }

    println!("\nSelective queries (in-place, one worker) are unaffected:");
    print_header("group I reference", &["query", "1 core", "4 cores"]);
    for class in 1..=3 {
        let text = lsbench::continuous_query(&w.bench, class, 0);
        let id1 = engines[0].1.register_continuous(&text).expect("register");
        let id4 = engines[2].1.register_continuous(&text).expect("register");
        print_row(vec![
            format!("L{class}"),
            fmt_ms(
                sample_continuous(&engines[0].1, id1, runs)
                    .median()
                    .expect("samples"),
            ),
            fmt_ms(
                sample_continuous(&engines[2].1, id4, runs)
                    .median()
                    .expect("samples"),
            ),
        ]);
    }
    jr.engine(&engines[2].1);
    jr.finish();
}
