//! Fig. 14: throughput of a 3-class mix (L1-L3) vs cluster size, plus the
//! latency CDF on 8 nodes.
//!
//! Methodology (documented in `EXPERIMENTS.md`): the paper runs 16 worker
//! threads per node and reports aggregate queries/second; this host has a
//! single core, so aggregate throughput is computed by Little's law —
//! `16 workers × nodes / mean mix latency` — with the per-query latency
//! (compute + charged network time) measured over registered query
//! variants whose home nodes spread across the cluster. The class mix
//! follows the paper: proportions are the reciprocal of each class's
//! average latency. Paper shape: ~4.2× throughput from 2 to 8 nodes,
//! ~1 M q/s peak, sub-ms median latency.

use wukong_bench::{feed_engine, fmt_ms, ls_workload, print_header, print_row, BenchJson, Scale};
use wukong_benchdata::lsbench;
use wukong_core::{EngineConfig, LatencyRecorder, WukongS};

const WORKERS_PER_NODE: f64 = 16.0;

/// Builds the per-class latency recorders for a class mix.
pub fn measure_mix(
    engine: &WukongS,
    bench: &wukong_benchdata::LsBench,
    classes: &[usize],
    variants: usize,
    runs_per_variant: usize,
) -> Vec<LatencyRecorder> {
    classes
        .iter()
        .map(|&class| {
            let mut rec = LatencyRecorder::new();
            for v in 0..variants {
                let id = engine
                    .register_continuous(&lsbench::continuous_query(bench, class, v))
                    .expect("register");
                let _ = engine.execute_registered(id); // plan warm-up
                for _ in 0..runs_per_variant {
                    let (_, ms) = engine.execute_registered(id);
                    rec.record(ms);
                }
            }
            rec
        })
        .collect()
}

/// Mix throughput by Little's law with reciprocal-latency class weights.
pub fn mix_throughput(recs: &[LatencyRecorder], nodes: usize) -> (f64, f64) {
    let lats: Vec<f64> = recs.iter().map(|r| r.mean().expect("samples")).collect();
    let inv_sum: f64 = lats.iter().map(|l| 1.0 / l).sum();
    // Weighted mean latency of the mix = k / Σ(1/L).
    let mean_ms = lats.len() as f64 / inv_sum;
    let thr = WORKERS_PER_NODE * nodes as f64 / (mean_ms / 1_000.0);
    (thr, mean_ms)
}

fn main() {
    let mut jr = BenchJson::from_env("fig14_throughput_mix3");
    let scale = Scale::from_env();
    let w = ls_workload(scale);
    let classes = [1usize, 2, 3];
    let variants = match scale {
        Scale::Tiny => 4,
        _ => 16,
    };
    let runs = (scale.runs() / 10).max(5);
    println!(
        "LSBench mix L1-L3: {} variants/class, {} runs/variant (scale {scale:?})",
        variants, runs
    );

    print_header(
        "Fig 14a: throughput vs nodes (mix L1-L3)",
        &["nodes", "q/s", "mean lat ms"],
    );
    let mut last_recs = Vec::new();
    for nodes in [2usize, 3, 4, 5, 6, 7, 8] {
        let engine = feed_engine(
            EngineConfig::cluster(nodes),
            &w.strings,
            w.schemas(),
            &w.stored,
            &w.timeline,
            w.duration,
        );
        let recs = measure_mix(&engine, &w.bench, &classes, variants, runs);
        let (thr, mean_ms) = mix_throughput(&recs, nodes);
        jr.counter(&format!("throughput_qps/nodes{nodes}"), thr);
        if nodes == 8 {
            for (i, rec) in recs.iter().enumerate() {
                jr.series(&format!("L{}/nodes8", classes[i]), rec);
            }
            jr.engine(&engine);
        }
        print_row(vec![
            nodes.to_string(),
            format!("{:.0}", thr),
            fmt_ms(mean_ms),
        ]);
        last_recs = recs;
    }

    print_header(
        "Fig 14b: latency CDF on 8 nodes (ms at percentile)",
        &["query", "p50", "p90", "p99", "p100"],
    );
    for (i, rec) in last_recs.iter().enumerate() {
        print_row(vec![
            format!("L{}", classes[i]),
            fmt_ms(rec.percentile(50.0).expect("samples")),
            fmt_ms(rec.percentile(90.0).expect("samples")),
            fmt_ms(rec.percentile(99.0).expect("samples")),
            fmt_ms(rec.percentile(100.0).expect("samples")),
        ]);
    }
    jr.finish();
}
