//! Flight-recorder fidelity and overhead gates (DESIGN.md §14).
//!
//! Three gates, any failure exits non-zero:
//!
//! 1. **Byte-identity** — the same seeded LSBench run with tracing on
//!    and off (`WUKONG_TRACE=0` ≙ `with_trace(false)`) must produce
//!    byte-identical firings (FNV fingerprint over every row of every
//!    firing), at 1 and 4 workers. Tracing observes; it must never
//!    steer results, scheduling, or firing cadence.
//! 2. **Overhead** — modeled latency (sum of per-firing `latency_ms`,
//!    best of [`REPS`] repetitions) with the recorder enabled must stay
//!    within [`OVERHEAD_FACTOR`] of the disabled run, with an absolute
//!    [`OVERHEAD_SLACK_MS`] floor so sub-millisecond totals don't fail
//!    on scheduler noise.
//! 3. **Black-box dump** — a seeded fault plan that bit-flips in-flight
//!    sub-batches must force an install-site quarantine, and the
//!    recorder must hold a `trace_dump` whose trigger is the
//!    `Quarantine` marker and whose causal closure (`linked_batches`)
//!    contains the corrupted [`BatchId`].
//!
//! `--quick` shrinks repetitions for CI smoke; `--json <path>` writes
//! the machine-readable report; `--dump <path>` writes the first
//! captured `trace_dump` (the `wukong-trace` inspector's input).

use std::sync::Arc;
use wukong_bench::{
    ls_workload, print_header, print_row, seed_from_env, BenchJson, LsWorkload, Scale,
};
use wukong_core::{EngineConfig, WukongS};
use wukong_net::FaultPlan;
use wukong_obs::TraceSnapshot;

const NODES: usize = 4;
/// Timeline tuples between firing rounds.
const FIRE_EVERY: usize = 250;
/// Enabled-trace modeled latency must stay within this factor of the
/// disabled run...
const OVERHEAD_FACTOR: f64 = 1.10;
/// ...or within this absolute slack, whichever is looser (sub-ms totals
/// would otherwise gate on scheduler noise).
const OVERHEAD_SLACK_MS: f64 = 5.0;
/// Bit-flip probability for the dump cell's message-corruption rule.
const CORRUPT_P: f64 = 0.05;
/// Seeds tried before declaring the dump cell unable to corrupt.
const DUMP_TRIES: u64 = 8;

fn register_mix(engine: &WukongS, bench: &wukong_benchdata::LsBench) {
    for c in 1..=3 {
        engine
            .register_continuous(&wukong_benchdata::lsbench::continuous_query(bench, c, 0))
            .expect("register");
    }
}

struct RunOutcome {
    /// FNV-1a over every `(query, window_end, rows)` of every firing.
    fingerprint: u64,
    firings: u64,
    /// Sum of per-firing wall latency, ms (the modeled cost).
    total_ms: f64,
    trace: TraceSnapshot,
}

fn run(w: &LsWorkload, workers: usize, trace_on: bool, plan: Option<FaultPlan>) -> RunOutcome {
    let engine = build(w, workers, trace_on, plan);
    let (out, _) = drive(&engine, w);
    out
}

fn build(w: &LsWorkload, workers: usize, trace_on: bool, plan: Option<FaultPlan>) -> WukongS {
    let cfg = EngineConfig {
        fault_tolerance: plan.is_some(),
        fault_plan: plan,
        ..EngineConfig::cluster(NODES)
    }
    .with_workers(workers)
    .with_trace(trace_on);
    let engine = WukongS::with_strings(cfg, Arc::clone(&w.strings));
    engine.load_base(w.stored.iter().copied());
    for schema in w.schemas() {
        engine.register_stream(schema);
    }
    register_mix(&engine, &w.bench);
    engine
}

/// Feeds the shared timeline, firing every [`FIRE_EVERY`] tuples, and
/// fingerprints the firings.
fn drive(engine: &WukongS, w: &LsWorkload) -> (RunOutcome, u64) {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u64| {
        for byte in b.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    let mut firings = 0u64;
    let mut total_ms = 0.0;
    let mut fire = |fired: Vec<wukong_core::Firing>, eat: &mut dyn FnMut(u64)| {
        for f in fired {
            firings += 1;
            total_ms += f.latency_ms;
            eat(f.query as u64);
            eat(f.window_end);
            let mut rows = f.results.rows;
            rows.sort();
            for row in &rows {
                for v in row {
                    eat(v.0);
                }
            }
        }
    };
    for (i, t) in w.timeline.iter().enumerate() {
        if i > 0 && i % FIRE_EVERY == 0 {
            fire(engine.fire_ready(), &mut eat);
        }
        engine.ingest(t.stream, t.triple, t.timestamp);
    }
    engine.advance_time(w.duration);
    fire(engine.fire_ready(), &mut eat);
    let trace = engine.handle().trace_snapshot();
    let corrupted = engine.handle().fault_counters().msgs_corrupted;
    (
        RunOutcome {
            fingerprint: h,
            firings,
            total_ms,
            trace,
        },
        corrupted,
    )
}

/// Best-of-`reps` modeled latency; every repetition must keep the same
/// fingerprint (determinism is part of the gate, not an assumption).
fn best_run(
    w: &LsWorkload,
    workers: usize,
    trace_on: bool,
    reps: usize,
    failures: &mut Vec<String>,
) -> RunOutcome {
    let mut out = run(w, workers, trace_on, None);
    for _ in 1..reps {
        let rerun = run(w, workers, trace_on, None);
        if rerun.fingerprint != out.fingerprint {
            failures.push(format!(
                "non-deterministic firing stream (workers {workers}, trace {trace_on})"
            ));
        }
        if rerun.total_ms < out.total_ms {
            out = rerun;
        }
    }
    out
}

/// The dump cell: seeded message corruption must quarantine a shard and
/// leave a `Quarantine` trace_dump whose lineage names the corrupted
/// batch. Returns the dump (for `--dump`/inspection) on success.
fn dump_cell(
    w: &LsWorkload,
    base_seed: u64,
    failures: &mut Vec<String>,
) -> Option<wukong_obs::Json> {
    for i in 0..DUMP_TRIES {
        let plan = FaultPlan::seeded(base_seed + i).corrupt_messages(CORRUPT_P);
        let engine = build(w, 4, true, Some(plan));
        let (_, corrupted) = drive(&engine, w);
        if corrupted == 0 {
            continue;
        }
        let quarantines = engine.handle().obs().integrity().snapshot().quarantines;
        if quarantines == 0 {
            failures.push(format!(
                "seed {}: {corrupted} corruptions quarantined no shard",
                base_seed + i
            ));
            return None;
        }
        let dumps = engine.handle().trace().dumps();
        let quarantine_dump = dumps.iter().find(|d| {
            d.get("trigger")
                .and_then(|t| t.get("marker"))
                .and_then(|m| m.as_str())
                == Some(wukong_obs::trace::Marker::Quarantine.name())
        });
        let Some(dump) = quarantine_dump else {
            failures.push(format!(
                "seed {}: {quarantines} quarantines but no Quarantine trace_dump",
                base_seed + i
            ));
            return None;
        };
        // The trigger's batch is the corrupted sub-batch; the causal
        // closure must name it.
        let batch = dump
            .get("trigger")
            .and_then(|t| t.get("batch"))
            .and_then(|b| b.as_str())
            .unwrap_or("-")
            .to_string();
        if wukong_obs::BatchId::parse_label(&batch).is_none_or(|b| b.is_none()) {
            failures.push(format!(
                "quarantine dump trigger batch unparseable: {batch:?}"
            ));
        }
        let linked = dump
            .get("linked_batches")
            .and_then(|l| l.as_arr())
            .map(|arr| arr.iter().any(|b| b.as_str() == Some(batch.as_str())))
            .unwrap_or(false);
        if !linked {
            failures.push(format!(
                "corrupted batch {batch} missing from linked_batches"
            ));
        }
        if dump
            .get("events")
            .and_then(|e| e.as_arr())
            .is_none_or(|e| e.is_empty())
        {
            failures.push("quarantine dump carries no causal events".into());
        }
        return Some(dump.clone());
    }
    failures.push(format!(
        "no corruption landed in {DUMP_TRIES} seeds (p={CORRUPT_P})"
    ));
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let dump_path = args
        .iter()
        .position(|a| a == "--dump")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut jr = BenchJson::from_env("exp_trace");
    let base_seed = seed_from_env();
    let reps = if quick { 2 } else { 5 };
    let w = ls_workload(Scale::from_env());
    println!(
        "LSBench: {} stored triples, {} stream tuples over {} ms ({NODES} nodes, {reps} reps)",
        w.stored.len(),
        w.timeline.len(),
        w.duration,
    );

    let mut failures: Vec<String> = Vec::new();
    print_header(
        "Trace: identity + overhead, enabled vs disabled",
        &[
            "workers", "firings", "off ms", "on ms", "ratio", "events", "result",
        ],
    );
    for workers in [1usize, 4] {
        let off = best_run(&w, workers, false, reps, &mut failures);
        let on = best_run(&w, workers, true, reps, &mut failures);
        let identical = on.fingerprint == off.fingerprint && on.firings == off.firings;
        if !identical {
            failures.push(format!(
                "workers {workers}: tracing changed results ({} vs {} firings)",
                on.firings, off.firings
            ));
        }
        if off.trace.events != 0 {
            failures.push(format!(
                "workers {workers}: disabled recorder still wrote {} events",
                off.trace.events
            ));
        }
        if on.trace.events == 0 || on.trace.firings == 0 {
            failures.push(format!(
                "workers {workers}: enabled recorder captured nothing"
            ));
        }
        let budget = (off.total_ms * OVERHEAD_FACTOR).max(off.total_ms + OVERHEAD_SLACK_MS);
        let within = on.total_ms <= budget;
        if !within {
            failures.push(format!(
                "workers {workers}: trace overhead {:.2} ms over {:.2} ms budget",
                on.total_ms, budget
            ));
        }
        let ratio = if off.total_ms > 0.0 {
            on.total_ms / off.total_ms
        } else {
            1.0
        };
        print_row(vec![
            format!("{workers}"),
            format!("{}", on.firings),
            format!("{:.2}", off.total_ms),
            format!("{:.2}", on.total_ms),
            format!("{ratio:.3}"),
            format!("{}", on.trace.events),
            if identical && within {
                format!("{:08x}", on.fingerprint as u32)
            } else {
                "FAIL".into()
            },
        ]);
        if workers == 4 {
            jr.trace(&on.trace);
            jr.counter("overhead_ratio", ratio);
            jr.counter("modeled_ms_on", on.total_ms);
            jr.counter("modeled_ms_off", off.total_ms);
        }
    }

    let dump = dump_cell(&w, base_seed, &mut failures);
    if let Some(d) = &dump {
        let batches = d
            .get("linked_batches")
            .and_then(|l| l.as_arr())
            .map_or(0, <[wukong_obs::Json]>::len);
        let events = d
            .get("events")
            .and_then(|e| e.as_arr())
            .map_or(0, <[wukong_obs::Json]>::len);
        println!("\nquarantine trace_dump: {batches} linked batches, {events} causal events");
        if let Some(path) = &dump_path {
            std::fs::write(path, d.to_string_pretty()).expect("write dump");
            println!("dump written to {path}");
        }
    }
    jr.counter("dump_captured", if dump.is_some() { 1.0 } else { 0.0 });
    jr.counter("all_pass", if failures.is_empty() { 1.0 } else { 0.0 });
    jr.finish();

    if !failures.is_empty() {
        eprintln!("\ntrace gates FAILED:");
        for f in &failures {
            eprintln!("  gate: {f}");
        }
        std::process::exit(1);
    }
    println!("\nall trace gates passed: identical results, bounded overhead, causal dump");
}
