//! Ablation: the SN-VTS plan's staleness bound (§4.3).
//!
//! "The Coordinator can leverage the interval of the mappings to control
//! the staleness of query results": a step of 1 batch gives the freshest
//! one-shot snapshots but constrains injectors; larger steps batch more
//! insertion per snapshot and leave one-shot results up to that many
//! batches stale. This binary sweeps the bound and reports the snapshot
//! cadence and the resulting one-shot staleness.

use wukong_bench::{feed_engine, ls_workload, print_header, print_row, BenchJson, Scale};
use wukong_core::EngineConfig;
use wukong_rdf::StreamId;
use wukong_stream::StalenessBound;

fn main() {
    let mut jr = BenchJson::from_env("exp_staleness");
    let scale = Scale::from_env();
    let w = ls_workload(scale);
    println!(
        "LSBench: {} stream tuples over {} ms (scale {scale:?})",
        w.timeline.len(),
        w.duration,
    );

    print_header(
        "§4.3 ablation: snapshot staleness bound",
        &["bound", "stable SN", "SN cadence ms", "one-shot lag ms"],
    );
    for bound in [1u64, 2, 5, 10] {
        let engine = feed_engine(
            EngineConfig {
                staleness: StalenessBound(bound),
                ..EngineConfig::cluster(4)
            },
            &w.strings,
            w.schemas(),
            &w.stored,
            &w.timeline,
            w.duration,
        );
        let sn = engine.stable_sn().0;
        // Snapshot cadence: stream time per snapshot; one-shot lag: how
        // far behind the freshest batch the stable snapshot's horizon is
        // in the worst case (bound × batch interval).
        let cadence = w.duration as f64 / sn.max(1) as f64;
        let lag = bound * 100;
        jr.counter(&format!("bound{bound}/stable_sn"), sn as f64);
        jr.counter(&format!("bound{bound}/cadence_ms"), cadence);
        jr.counter(&format!("bound{bound}/oneshot_lag_ms"), lag as f64);
        jr.engine(&engine);
        // Sanity: continuous visibility is unaffected by the bound.
        let fresh = engine.stable_ts(StreamId(0));
        print_row(vec![
            bound.to_string(),
            sn.to_string(),
            format!("{cadence:.0}"),
            format!("<= {lag} (streams stable at {fresh})"),
        ]);
    }
    println!(
        "\nLarger bounds advance the snapshot number less often (cheaper \
         coordination, staler one-shots); continuous queries always see \
         the stable VTS regardless."
    );
    jr.finish();
}
