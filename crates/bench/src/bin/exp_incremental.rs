//! Incremental (delta-maintenance) vs recompute execution across
//! window-overlap regimes.
//!
//! One seeded join fan-out workload — a small object domain makes the
//! `?X po ?Z . ?Y li ?Z` join the dominant cost, the way the paper's
//! group II queries are join-bound — runs through two otherwise
//! identical single-node deployments: one recomputing every firing from
//! the full window, one maintaining per-query state and processing only
//! the inserted suffix / expired prefix (`EngineConfig::incremental`,
//! DESIGN.md §10). Four window RANGEs over the same 100 ms STEP sweep
//! the overlap fraction a sliding firing reuses:
//!
//! | RANGE   | overlap | modeled floor `1/(d(1+s))` |
//! |---------|---------|----------------------------|
//! | 100 ms  | 0% (tumbling) | 1.00x                |
//! | 200 ms  | 50%     | 1.33x                      |
//! | 400 ms  | 75%     | 2.29x                      |
//! | 1000 ms | 90%     | 5.26x                      |
//!
//! Two things are gated per regime:
//!
//! - **Equivalence.** Both runs fold their firing sequences into an
//!   FNV-1a hash (window ends + every row in engine order); any
//!   difference fails the run. The modes must be byte-identical.
//! - **Modeled cost.** The work a mode *materializes*: full-width
//!   binding rows built per firing, counted from real execution.
//!   Recompute materializes the whole window result every firing
//!   (`Σ |result|`); maintenance materializes only the fresh delta rows
//!   (the engine's `rows_recomputed` counter — retraction drops rows
//!   without re-deriving anything). Their ratio is the modeled speedup;
//!   a window sliding by `d = 1 - s` of its range re-derives a
//!   `d(1+s)` fraction, so 75% overlap must clear its ~2.3x floor —
//!   the run fails below 2x. Because the workload is seeded and firing
//!   streams are deterministic, this gate is wall-clock-noise-free: a
//!   drop means the delta path materialized more than the delta.
//!
//! Wall time (sum of per-firing `latency_ms`, best of [`REPS`]
//! repetitions) is reported alongside for context; it includes the
//! shared result-emission floor — projection and canonical sort of the
//! identical full-window result — which both modes pay every firing.
//!
//! `--quick` shrinks the timeline (CI smoke); `--json <path>` writes the
//! machine-readable report (schema v4, including the `incremental`
//! member).

use std::sync::Arc;
use wukong_bench::{fmt_ms, print_header, print_row, BenchJson};
use wukong_core::{EngineConfig, WukongS};
use wukong_obs::IncrementalSnapshot;
use wukong_rdf::{StreamId, StringServer, Triple, Vid};
use wukong_stream::StreamSchema;

/// Mini-batch interval and window STEP, ms.
const INTERVAL_MS: u64 = 100;
/// Join fan-out: subjects per side.
const SUBJECTS: u64 = 40;
/// Join fan-out: shared-object domain (small ⇒ join-bound).
const OBJECTS: u64 = 4;
/// Repetitions per (regime, mode); wall-clock noise is almost entirely
/// upward, so the minimum total cost is the stable estimator.
const REPS: usize = 3;

/// SplitMix64 (the differential harness's primitive): seeded, so every
/// repetition and both modes replay the byte-identical timeline.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// FNV-1a over the canonical firing stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

struct Workload {
    strings: Arc<StringServer>,
    /// `(triple, raw timestamp)`, time-ordered.
    timeline: Vec<(Triple, u64)>,
    duration: u64,
}

fn workload(seed: u64, duration: u64, per_batch: u64) -> Workload {
    let strings = Arc::new(StringServer::new());
    let subjects: Vec<Vid> = (0..SUBJECTS)
        .map(|i| strings.intern_entity(&format!("s{i}")).expect("interns"))
        .collect();
    let objects: Vec<Vid> = (0..OBJECTS)
        .map(|i| strings.intern_entity(&format!("o{i}")).expect("interns"))
        .collect();
    let po = strings.intern_predicate("po").expect("interns");
    let li = strings.intern_predicate("li").expect("interns");

    let mut rng = Rng(seed);
    let mut timeline = Vec::new();
    for tick in (INTERVAL_MS..=duration).step_by(INTERVAL_MS as usize) {
        for _ in 0..per_batch {
            let p = if rng.below(2) == 0 { po } else { li };
            let t = Triple::new(
                subjects[rng.below(SUBJECTS) as usize],
                p,
                objects[rng.below(OBJECTS) as usize],
            );
            timeline.push((t, tick - rng.below(INTERVAL_MS)));
        }
    }
    timeline.sort_by_key(|(_, ts)| *ts);
    Workload {
        strings,
        timeline,
        duration,
    }
}

struct RunOutcome {
    /// Sum of per-firing wall latency, ms.
    total_ms: f64,
    firings: u64,
    rows: u64,
    hash: u64,
    counters: IncrementalSnapshot,
}

impl RunOutcome {
    /// Full-width binding rows this run materialized — the modeled work.
    /// Recompute builds the whole window result every firing; delta
    /// maintenance builds only the fresh rows its counters record.
    fn modeled_work(&self, incremental: bool) -> u64 {
        if incremental {
            self.counters.rows_recomputed
        } else {
            self.rows
        }
    }
}

fn run(w: &Workload, range_ms: u64, incremental: bool) -> RunOutcome {
    let engine = WukongS::with_strings(
        EngineConfig::single_node().with_incremental(incremental),
        Arc::clone(&w.strings),
    );
    let s = engine.register_stream(StreamSchema::timeless(StreamId(0), "S", INTERVAL_MS));
    engine
        .register_continuous(&format!(
            "REGISTER QUERY INC SELECT ?X ?Y ?Z \
             FROM S [RANGE {range_ms}ms STEP {INTERVAL_MS}ms] \
             WHERE {{ GRAPH S {{ ?X po ?Z }} GRAPH S {{ ?Y li ?Z }} }}"
        ))
        .expect("registers");

    let before = engine.cluster().obs().incremental().snapshot();
    let mut fed = 0;
    let mut total_ms = 0.0;
    let mut firings = 0u64;
    let mut rows = 0u64;
    let mut hash = Fnv::new();
    for tick in (INTERVAL_MS..=w.duration).step_by(INTERVAL_MS as usize) {
        while fed < w.timeline.len() && w.timeline[fed].1 <= tick {
            engine.ingest(s, w.timeline[fed].0, w.timeline[fed].1);
            fed += 1;
        }
        engine.advance_time(tick);
        for f in engine.fire_ready() {
            total_ms += f.latency_ms;
            firings += 1;
            hash.push(f.window_end);
            for row in &f.results.rows {
                rows += 1;
                for v in row {
                    hash.push(v.0);
                }
            }
        }
    }
    let counters = before.delta(&engine.cluster().obs().incremental().snapshot());
    RunOutcome {
        total_ms,
        firings,
        rows,
        hash: hash.0,
        counters,
    }
}

/// Best-of-[`REPS`] by wall cost; all repetitions must agree on the
/// firing hash (the modeled work is identical across repetitions by
/// construction — it only depends on the deterministic firing stream).
fn best_run(w: &Workload, range_ms: u64, incremental: bool) -> RunOutcome {
    let mut out = run(w, range_ms, incremental);
    for _ in 1..REPS {
        let rerun = run(w, range_ms, incremental);
        assert_eq!(
            rerun.hash, out.hash,
            "non-deterministic firing stream (range {range_ms}, incremental {incremental})"
        );
        if rerun.total_ms < out.total_ms {
            out = rerun;
        }
    }
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut jr = BenchJson::from_env("exp_incremental");
    let (duration, per_batch) = if quick { (2_000, 40) } else { (4_000, 60) };
    let w = workload(7, duration, per_batch);
    println!(
        "join fan-out workload: {} stream tuples over {} ms ({} subjects x {} shared objects)",
        w.timeline.len(),
        w.duration,
        SUBJECTS,
        OBJECTS,
    );

    print_header(
        "Delta maintenance vs recompute per window-overlap regime",
        &[
            "range ms",
            "overlap",
            "recompute",
            "incremental",
            "wall",
            "modeled",
            "reused",
            "result",
        ],
    );

    let regimes: &[(u64, &str)] = &[(100, "0%"), (200, "50%"), (400, "75%"), (1_000, "90%")];
    let mut modeled_at_75 = 0.0;
    let mut all_match = true;
    for &(range_ms, overlap) in regimes {
        let rec = best_run(&w, range_ms, false);
        let inc = best_run(&w, range_ms, true);
        let matches = rec.hash == inc.hash && rec.firings == inc.firings && rec.rows == inc.rows;
        all_match &= matches;
        let wall_speedup = rec.total_ms / inc.total_ms.max(f64::MIN_POSITIVE);
        let rec_work = rec.modeled_work(false);
        let inc_work = inc.modeled_work(true);
        let modeled = rec_work as f64 / (inc_work as f64).max(1.0);
        if range_ms == 400 {
            modeled_at_75 = modeled;
        }
        print_row(vec![
            format!("{range_ms}"),
            overlap.into(),
            fmt_ms(rec.total_ms),
            fmt_ms(inc.total_ms),
            format!("{wall_speedup:.2}x"),
            format!("{modeled:.2}x"),
            format!("{}", inc.counters.rows_reused),
            if matches { "MATCH" } else { "MISMATCH" }.into(),
        ]);

        let tag = format!("r{range_ms}");
        jr.counter(&format!("{tag}/recompute_total_ms"), rec.total_ms);
        jr.counter(&format!("{tag}/incremental_total_ms"), inc.total_ms);
        jr.counter(&format!("{tag}/wall_speedup"), wall_speedup);
        jr.counter(&format!("{tag}/modeled_work_recompute"), rec_work as f64);
        jr.counter(&format!("{tag}/modeled_work_incremental"), inc_work as f64);
        jr.counter(&format!("{tag}/modeled_speedup"), modeled);
        jr.counter(&format!("{tag}/firings"), inc.firings as f64);
        jr.counter(&format!("{tag}/rows"), inc.rows as f64);
        jr.counter(
            &format!("{tag}/rows_reused"),
            inc.counters.rows_reused as f64,
        );
        jr.counter(
            &format!("{tag}/rows_recomputed"),
            inc.counters.rows_recomputed as f64,
        );
        jr.counter(
            &format!("{tag}/rows_retracted"),
            inc.counters.rows_retracted as f64,
        );
        jr.counter(
            &format!("{tag}/hash_match"),
            if matches { 1.0 } else { 0.0 },
        );
        if range_ms == regimes.last().expect("non-empty").0 {
            jr.incremental(&inc.counters);
        }
    }

    jr.counter("speedup_75", modeled_at_75);
    jr.counter("all_match", if all_match { 1.0 } else { 0.0 });
    jr.finish();

    if !all_match {
        eprintln!("exp_incremental FAILED: incremental firings diverged from recompute");
        std::process::exit(1);
    }
    if modeled_at_75 < 2.0 {
        eprintln!(
            "exp_incremental FAILED: modeled speedup at 75% overlap is \
             {modeled_at_75:.2}x (< 2x)"
        );
        std::process::exit(1);
    }
    println!("\nall regimes byte-identical; modeled speedup at 75% overlap: {modeled_at_75:.2}x");
}
