//! Ablation: the value of global, cost-based planning (§2.3 Issue #2).
//!
//! The composite design's split plans are one of the paper's three
//! composite deficiencies. This experiment quantifies plan quality on the
//! *integrated* engine itself: each LSBench class runs with (a) the
//! cost-based greedy plan and (b) the worst same-shape plan (pattern
//! order reversed, anchors chosen without estimates), showing how much
//! early pruning matters even without a system boundary.

use wukong_bench::{feed_engine, fmt_ms, ls_workload, print_header, print_row, BenchJson, Scale};
use wukong_benchdata::lsbench;
use wukong_core::access::NodeAccess;
use wukong_core::{EngineConfig, LatencyRecorder};
use wukong_net::{NodeId, TaskTimer};
use wukong_query::exec::{ExecContext, StringLiteralResolver, WindowInstance};
use wukong_query::plan::Plan;
use wukong_query::{execute, parse_query, plan_patterns, plan_query};
use wukong_rdf::StreamId;

fn main() {
    let mut jr = BenchJson::from_env("exp_planner");
    let scale = Scale::from_env();
    let w = ls_workload(scale);
    let runs = scale.runs();
    println!(
        "LSBench: {} stored triples, {} stream tuples over {} ms (scale {scale:?})",
        w.stored.len(),
        w.timeline.len(),
        w.duration,
    );
    let engine = feed_engine(
        EngineConfig::single_node(),
        &w.strings,
        w.schemas(),
        &w.stored,
        &w.timeline,
        w.duration,
    );

    print_header(
        "Planner ablation: cost-based vs reversed pattern order (ms)",
        &["query", "planned", "reversed", "penalty"],
    );
    let cluster = engine.cluster();
    for class in 1..=lsbench::CONTINUOUS_CLASSES {
        let text = lsbench::continuous_query(&w.bench, class, 0);
        let query = parse_query(engine.strings(), &text).expect("parses");

        // Build the execution context the engine would use.
        let windows: Vec<WindowInstance> = query
            .streams
            .iter()
            .map(|(name, spec)| {
                let idx = cluster
                    .streams()
                    .iter()
                    .position(|s| s.schema.name == *name)
                    .expect("registered stream");
                let hi = engine.stable_ts(StreamId(idx as u16));
                WindowInstance {
                    stream: StreamId(idx as u16),
                    lo: hi.saturating_sub(spec.range_ms) + 1,
                    hi,
                }
            })
            .collect();
        let ctx = ExecContext {
            sn: engine.stable_sn(),
            windows,
        };
        let access = NodeAccess::new(cluster, NodeId(0));
        let lit = StringLiteralResolver(engine.strings());

        let good = plan_query(&query, &access, &ctx);
        // Worst same-shape plan: reversed textual order, no estimates
        // (plan_patterns still picks a legal anchor per step).
        let mut reversed = query.patterns.clone();
        reversed.reverse();
        let bad = Plan {
            steps: plan_patterns(
                &reversed,
                &vec![false; query.var_count as usize],
                // Estimate-free oracle: every anchor looks equally good,
                // so the textual order wins.
                &ConstOracle,
                &ctx,
            )
            .steps,
        };

        let sample = |plan: &Plan| {
            let mut rec = LatencyRecorder::new();
            for _ in 0..runs.min(30) {
                let mut timer = TaskTimer::start();
                let _ = execute(&query, plan, &ctx, &access, &lit, &mut timer);
                rec.record(timer.total_ms());
            }
            rec
        };
        let grec = sample(&good);
        let brec = sample(&bad);
        jr.series(&format!("L{class}/planned"), &grec);
        jr.series(&format!("L{class}/reversed"), &brec);
        let g = grec.median().expect("samples");
        let b = brec.median().expect("samples");
        print_row(vec![
            format!("L{class}"),
            fmt_ms(g),
            fmt_ms(b),
            format!("{:.1}X", b / g.max(1e-9)),
        ]);
    }
    jr.engine(&engine);
    jr.finish();
}

/// An oracle with no information: every estimate is the same.
struct ConstOracle;

impl wukong_query::GraphAccess for ConstOracle {
    fn neighbors(
        &self,
        _key: wukong_rdf::Key,
        _src: wukong_query::exec::PatternSource,
        _ctx: &ExecContext,
        _timer: &mut TaskTimer,
        _out: &mut Vec<wukong_rdf::Vid>,
    ) {
    }

    fn estimate(
        &self,
        _key: wukong_rdf::Key,
        _src: wukong_query::exec::PatternSource,
        _ctx: &ExecContext,
    ) -> usize {
        1
    }
}
