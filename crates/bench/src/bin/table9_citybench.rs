//! Table 9: CityBench continuous-query latency (ms), single node.
//!
//! Columns: Wukong+S | Storm+Wukong (total, Storm, Wukong) | Spark
//! Streaming; rows C1-C11. Paper shape: Wukong+S wins by 2.7-18× over
//! Storm+Wukong (whose cross-system cost runs 40-75%) and by three orders
//! of magnitude over Spark Streaming; C10/C11 are stream-only.

use wukong_baselines::{CompositePlan, CompositeProfile, SparkMode};
use wukong_bench::workload::CITY_STREAMS;
use wukong_bench::{
    city_workload, feed_composite, feed_engine, feed_spark, fmt_ms, print_header, print_row,
    sample_composite, sample_continuous, BenchJson, Scale,
};
use wukong_benchdata::citybench;
use wukong_core::metrics::geometric_mean;
use wukong_core::EngineConfig;

fn main() {
    let mut jr = BenchJson::from_env("table9_citybench");
    let scale = Scale::from_env();
    let w = city_workload(scale);
    let runs = scale.runs();
    println!(
        "CityBench: {} stored triples, {} stream tuples over {} ms (scale {scale:?})",
        w.stored.len(),
        w.timeline.len(),
        w.duration,
    );

    let engine = feed_engine(
        EngineConfig::single_node(),
        &w.strings,
        w.schemas(),
        &w.stored,
        &w.timeline,
        w.duration,
    );
    let mut storm = feed_composite(
        CompositeProfile::storm_wukong(1),
        &w.strings,
        &CITY_STREAMS,
        &w.stored,
        &w.timeline,
    );
    let mut spark = feed_spark(
        SparkMode::MicroBatch,
        &w.strings,
        &CITY_STREAMS,
        &w.stored,
        &w.timeline,
    );

    print_header(
        "Table 9: CityBench latency (ms), single node",
        &[
            "query", "Wukong+S", "S+W all", "(Storm)", "(Wukong)", "Spark",
        ],
    );

    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for class in 1..=citybench::CONTINUOUS_CLASSES {
        let text = citybench::continuous_query(&w.bench, class, 0);
        let wid = engine
            .register_continuous(&text)
            .expect("Wukong+S registration");
        let sid = storm
            .register_continuous(&text)
            .expect("Storm registration");
        let kid = spark
            .register_continuous(&text)
            .expect("Spark registration");

        let wrec = sample_continuous(&engine, wid, runs);
        jr.series(&format!("C{class}/wukong_s"), &wrec);
        let ws = wrec.median().expect("samples");
        let (srec, sbd) =
            sample_composite(&storm, sid, w.duration, CompositePlan::Interleaved, runs);
        jr.series(&format!("C{class}/storm_wukong"), &srec);
        let s_total = srec.median().expect("samples");

        let n = (runs / 10).max(3);
        let mut sp: Vec<f64> = (0..n).map(|_| spark.execute(kid, w.duration).1).collect();
        sp.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let sp_med = sp[sp.len() / 2];

        geo[0].push(ws);
        geo[1].push(s_total);
        geo[2].push(sp_med);
        // Stream-only classes have no Wukong sub-component (the paper
        // prints "-" there).
        let wukong_part = if text.contains("GRAPH Aarhus") {
            fmt_ms(sbd.store_ms)
        } else {
            "-".to_string()
        };
        print_row(vec![
            format!("C{class}"),
            fmt_ms(ws),
            fmt_ms(s_total),
            fmt_ms(sbd.stream_ms + sbd.cross_ms),
            wukong_part,
            fmt_ms(sp_med),
        ]);
    }
    print_row(vec![
        "Geo.M".into(),
        fmt_ms(geometric_mean(geo[0].iter().copied()).unwrap_or(0.0)),
        fmt_ms(geometric_mean(geo[1].iter().copied()).unwrap_or(0.0)),
        String::new(),
        String::new(),
        fmt_ms(geometric_mean(geo[2].iter().copied()).unwrap_or(0.0)),
    ]);
    for (name, series) in [
        ("wukong_s", &geo[0]),
        ("storm_wukong", &geo[1]),
        ("spark", &geo[2]),
    ] {
        jr.counter(
            &format!("geo_mean_{name}_ms"),
            geometric_mean(series.iter().copied()).unwrap_or(0.0),
        );
    }
    jr.engine(&engine);
    jr.finish();
}
