//! Table 7: memory usage of streaming data vs the stream index.
//!
//! Paper shape: the stream index costs a small fraction of the raw
//! streaming data (9.5% overall; up to ~46% for low-rate streams whose
//! per-batch key overhead amortises worse, and none at all for the
//! timing-only GPS stream).

use wukong_bench::{feed_engine, ls_workload, print_header, print_row, BenchJson, Scale};
use wukong_core::EngineConfig;

fn main() {
    let mut jr = BenchJson::from_env("table7_memory");
    let scale = Scale::from_env();
    let w = ls_workload(scale);
    let minutes = w.duration as f64 / 60_000.0;
    println!(
        "LSBench: {} stream tuples over {} ms (scale {scale:?})",
        w.timeline.len(),
        w.duration,
    );

    let engine = feed_engine(
        EngineConfig::cluster(8),
        &w.strings,
        w.schemas(),
        &w.stored,
        &w.timeline,
        w.duration,
    );

    print_header(
        "Table 7: memory (MB/min): raw stream data vs stream index",
        &["stream", "data MB/min", "index MB/min", "ratio"],
    );

    let names = ["PO", "PO-L", "PH", "PH-L", "GPS"];
    let mb = |bytes: f64| bytes / (1 << 20) as f64 / minutes;
    let mut total_data = 0.0;
    let mut total_index = 0.0;
    for (i, name) in names.iter().enumerate() {
        let stream = engine.cluster().stream(i);
        let data = *stream.raw_bytes.read() as f64;
        // GPS is timing-only: no stream index is built for it.
        let index = stream.index_bytes() as f64;
        let index_cell = if i == 4 {
            "-".to_string()
        } else {
            format!("{:.3}", mb(index))
        };
        let ratio = if i == 4 || data == 0.0 {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * index / data)
        };
        total_data += data;
        if i != 4 {
            total_index += index;
        }
        jr.counter(&format!("{name}/raw_bytes"), data);
        jr.counter(&format!("{name}/index_bytes"), index);
        print_row(vec![
            (*name).into(),
            format!("{:.3}", mb(data)),
            index_cell,
            ratio,
        ]);
    }
    print_row(vec![
        "Total".into(),
        format!("{:.3}", mb(total_data)),
        format!("{:.3}", mb(total_index)),
        format!("{:.1}%", 100.0 * total_index / total_data.max(1.0)),
    ]);
    jr.engine(&engine);
    jr.finish();
}
