//! Criterion micro-benchmarks of the mechanisms behind the evaluation:
//! store injection/lookup, the stream index's window extraction against
//! the Wukong/Ext-style full-value scan, snapshot scalarization, vector
//! timestamps, graph-exploration execution, and fabric cost charging.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wukong_net::{Fabric, NetworkProfile, NodeId, TaskTimer};
use wukong_query::exec::{ExecContext, GraphAccess, PatternSource};
use wukong_query::{execute, parse_query, plan_query};
use wukong_rdf::{Dir, Key, Pid, StringServer, Triple, Vid};
use wukong_store::{BaseStore, IndexBatch, PersistentShard, SnapshotId, StreamIndex};
use wukong_stream::{SnVtsPlanner, StalenessBound, Vts};

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("store");

    g.bench_function("insert_base_triple", |b| {
        let mut st = BaseStore::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            st.insert_base(Triple::new(Vid(i % 10_000 + 1), Pid(3), Vid(i + 20_000)));
        });
    });

    g.bench_function("inject_batch_100", |b| {
        let shard = PersistentShard::new(8);
        let mut sn = 1u64;
        b.iter(|| {
            let triples: Vec<Triple> = (0..100)
                .map(|i| Triple::new(Vid(sn * 100 + i + 1), Pid(3), Vid(900_000 + i)))
                .collect();
            let r = shard.inject_batch(&triples, SnapshotId(sn));
            sn += 1;
            black_box(r.len())
        });
    });

    let mut st = BaseStore::new();
    for i in 0..1_000 {
        st.insert_base(Triple::new(Vid(1), Pid(3), Vid(i + 10)));
    }
    g.bench_function("lookup_1k_neighbors", |b| {
        b.iter(|| black_box(st.neighbors_at(Key::new(Vid(1), Pid(3), Dir::Out), SnapshotId::BASE)))
    });
    g.finish();
}

/// The Table 4 mechanism: stream-index window extraction is O(window),
/// the Wukong/Ext-style timestamp scan is O(history).
fn bench_stream_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("window_extraction");
    for history_batches in [100u64, 1_000, 10_000] {
        // One key accumulating 4 neighbours per batch.
        let mut store = BaseStore::new();
        let mut index = StreamIndex::new();
        let mut log: Vec<(Vid, u64)> = Vec::new();
        let key = Key::new(Vid(1), Pid(3), Dir::Out);
        for batch in 0..history_batches {
            let mut rc = Vec::new();
            for i in 0..4u64 {
                let v = Vid(batch * 4 + i + 10);
                store.insert_at(Triple::new(Vid(1), Pid(3), v), SnapshotId(1), &mut rc);
                log.push((v, batch * 100));
            }
            index.push_batch(IndexBatch::from_receipts(
                batch * 100,
                &rc.iter()
                    .filter(|r| r.key == key)
                    .copied()
                    .collect::<Vec<_>>(),
            ));
        }
        let hi = history_batches * 100;
        let lo = hi - 1_000; // a 10-batch window at the end

        g.bench_with_input(
            BenchmarkId::new("stream_index", history_batches),
            &history_batches,
            |b, _| {
                b.iter(|| {
                    let mut out = Vec::new();
                    index.neighbors_in(&store, key, lo, hi, &mut out);
                    black_box(out.len())
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("ext_full_scan", history_batches),
            &history_batches,
            |b, _| {
                b.iter(|| {
                    let n = log.iter().filter(|(_, ts)| *ts >= lo && *ts <= hi).count();
                    black_box(n)
                })
            },
        );
    }
    g.finish();
}

fn bench_consistency(c: &mut Criterion) {
    let mut g = c.benchmark_group("consistency");

    g.bench_function("stable_vts_8_nodes_5_streams", |b| {
        let vts: Vec<Vts> = (0..8)
            .map(|n| Vts::from_entries((0..5).map(|s| 1_000 + n * 7 + s).collect()))
            .collect();
        b.iter(|| black_box(Vts::stable(vts.iter())))
    });

    g.bench_function("sn_vts_plan_round", |b| {
        b.iter(|| {
            let mut p = SnVtsPlanner::new(vec![100; 5], StalenessBound(1));
            p.announce_next(&Vts::new(5));
            let reached = vec![Vts::from_entries(vec![100; 5]); 8];
            black_box(p.on_vts_update(&reached))
        })
    });
    g.finish();
}

struct LocalAccess<'a>(&'a BaseStore);

impl GraphAccess for LocalAccess<'_> {
    fn neighbors(
        &self,
        key: Key,
        _src: PatternSource,
        ctx: &ExecContext,
        _timer: &mut TaskTimer,
        out: &mut Vec<Vid>,
    ) {
        self.0.for_each_neighbor(key, ctx.sn, |v| out.push(v));
    }

    fn estimate(&self, key: Key, _src: PatternSource, ctx: &ExecContext) -> usize {
        self.0.len_at(key, ctx.sn)
    }
}

fn bench_executor(c: &mut Criterion) {
    // The Fig. 2 one-shot query over a synthetic X-Lab-style graph.
    let ss = StringServer::new();
    let mut st = BaseStore::new();
    let po = ss.intern_predicate("po").unwrap();
    let ht = ss.intern_predicate("ht").unwrap();
    let li = ss.intern_predicate("li").unwrap();
    let logan = ss.intern_entity("Logan").unwrap();
    let erik = ss.intern_entity("Erik").unwrap();
    let tag = ss.intern_entity("#sosp17").unwrap();
    for i in 0..1_000u64 {
        let t = ss.intern_entity(&format!("T-{i}")).unwrap();
        st.insert_base(Triple::new(logan, po, t));
        if i % 3 == 0 {
            st.insert_base(Triple::new(t, ht, tag));
        }
        if i % 5 == 0 {
            st.insert_base(Triple::new(erik, li, t));
        }
    }
    let q = parse_query(
        &ss,
        "SELECT ?X WHERE { Logan po ?X . ?X ht #sosp17 . Erik li ?X }",
    )
    .unwrap();
    let access = LocalAccess(&st);
    let ctx = ExecContext::stored(SnapshotId::BASE);
    let plan = plan_query(&q, &access, &ctx);

    c.bench_function("executor_fig2_oneshot_1k_posts", |b| {
        b.iter(|| {
            let mut timer = TaskTimer::start();
            black_box(execute(
                &q,
                &plan,
                &ctx,
                &access,
                &wukong_query::exec::NoLiterals,
                &mut timer,
            ))
        })
    });
}

fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric");
    let rdma = Fabric::new(8, NetworkProfile::rdma());
    g.bench_function("charge_read", |b| {
        b.iter(|| {
            let mut t = TaskTimer::start();
            black_box(rdma.charge_read(NodeId(0), NodeId(1), 64, &mut t))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_store,
    bench_stream_index,
    bench_consistency,
    bench_executor,
    bench_fabric
);
criterion_main!(benches);
