//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] is a declarative description of what should go wrong
//! during a run: nodes that die (and possibly come back) at scheduled
//! simulated times, and links that drop, duplicate, or delay messages
//! with given probabilities. Installing a plan on a [`crate::Fabric`]
//! produces a [`FaultState`] — the runtime that draws from a seeded RNG,
//! tracks node liveness, fires the kill/restart schedule as the engine
//! advances stream time, and records every injected fault both as a
//! structured [`FaultEvent`] (so same-seed runs can be compared event by
//! event) and into shared [`FaultCounters`].
//!
//! Everything is deterministic for a fixed seed: the RNG is the offline
//! SplitMix64 shim, draws are serialized under a mutex in the engine's
//! single-threaded drivers, and a probability of zero consumes no draw —
//! so the decision sequence is a pure function of the plan, the seed, and
//! the order of fabric operations.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use wukong_obs::FaultCounters;

use crate::fabric::NodeId;

/// How many times the at-least-once dispatch layer re-sends a dropped
/// message before giving up (only reachable when a link drops with
/// probability 1.0 — real lossy links repair far earlier).
pub const MAX_RETRANSMITS: u32 = 16;

/// One lossy-link rule. `from`/`to` of `None` match any node; the first
/// matching rule in the plan wins.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFault {
    /// Source node the rule applies to (`None` = any).
    pub from: Option<NodeId>,
    /// Destination node the rule applies to (`None` = any).
    pub to: Option<NodeId>,
    /// Probability a message on this link is silently dropped.
    pub drop_p: f64,
    /// Probability a (non-dropped) message is delivered twice.
    pub dup_p: f64,
    /// Probability a (non-dropped) message is delayed by `delay_ns`.
    pub delay_p: f64,
    /// Extra charged latency applied to delayed messages.
    pub delay_ns: u64,
    /// Simulated-time window `[from_ms, until_ms)` the rule is active in;
    /// `None` = always. An inactive rule neither matches nor draws from
    /// the RNG, so clock-windowed rules keep the draw sequence a pure
    /// function of the outcomes.
    pub window: Option<(u64, u64)>,
}

impl LinkFault {
    fn matches(&self, from: NodeId, to: NodeId, now_ms: u64) -> bool {
        self.window
            .is_none_or(|(lo, hi)| now_ms >= lo && now_ms < hi)
            && self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
    }
}

/// A gray-failure rule: `node` runs slow (all fabric operations touching
/// it are charged `factor_x100 / 100` times their normal cost) during a
/// simulated-time window. Purely a function of the simulated clock — no
/// RNG draw — so slow nodes never perturb the lossy-link draw sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowNode {
    /// The slowed node.
    pub node: NodeId,
    /// Slowdown multiplier times 100 (`250` = 2.5× slower). Values at or
    /// below 100 are no-ops.
    pub factor_x100: u64,
    /// Simulated time the slowdown starts (inclusive).
    pub from_ms: u64,
    /// Simulated time the slowdown ends (exclusive); `u64::MAX` = forever.
    pub until_ms: u64,
}

/// What a corruption rule targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptTarget {
    /// In-flight sub-batch payloads between dispatch and store install.
    Message,
    /// Checkpoint images on the durable medium (bit rot at capture).
    Checkpoint,
}

/// One corruption rule: with probability `p`, flip a single bit in the
/// targeted artifact. Corruption draws come from a *separate* seeded RNG
/// (the plan seed salted), so adding a corruption rule never perturbs
/// the lossy-link draw sequence of an existing plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptFault {
    /// The artifact class this rule corrupts.
    pub target: CorruptTarget,
    /// Probability each candidate artifact has one bit flipped.
    pub p: f64,
}

/// One entry of the kill/restart schedule, in simulated milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// Simulated time (stream-time milliseconds) the event fires at.
    pub at_ms: u64,
    /// The node affected.
    pub node: NodeId,
    /// `true` kills the node, `false` restarts it.
    pub kill: bool,
}

/// A declarative, seeded description of the faults to inject.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// RNG seed; identical seeds and plans reproduce identical faults.
    pub seed: u64,
    /// Lossy-link rules; first match wins per message.
    pub links: Vec<LinkFault>,
    /// Kill/restart schedule (fired as the engine advances stream time).
    pub schedule: Vec<ScheduledEvent>,
    /// Gray-failure slowdown rules (clock-driven, no RNG).
    pub slow_nodes: Vec<SlowNode>,
    /// Bit-flip corruption rules (dedicated salted RNG).
    pub corrupt: Vec<CorruptFault>,
}

impl FaultPlan {
    /// An empty plan drawing from `seed` (typically `WUKONG_SEED`).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Self::default()
        }
    }

    /// Schedules `node` to die at simulated time `at_ms`.
    pub fn kill_at(mut self, node: NodeId, at_ms: u64) -> Self {
        self.schedule.push(ScheduledEvent {
            at_ms,
            node,
            kill: true,
        });
        self
    }

    /// Schedules `node` to come back at simulated time `at_ms`.
    pub fn restart_at(mut self, node: NodeId, at_ms: u64) -> Self {
        self.schedule.push(ScheduledEvent {
            at_ms,
            node,
            kill: false,
        });
        self
    }

    /// Makes the `from → to` link drop and duplicate messages.
    pub fn lossy_link(mut self, from: NodeId, to: NodeId, drop_p: f64, dup_p: f64) -> Self {
        self.links.push(LinkFault {
            from: Some(from),
            to: Some(to),
            drop_p,
            dup_p,
            ..LinkFault::default()
        });
        self
    }

    /// Makes every link drop and duplicate messages.
    pub fn lossy(mut self, drop_p: f64, dup_p: f64) -> Self {
        self.links.push(LinkFault {
            drop_p,
            dup_p,
            ..LinkFault::default()
        });
        self
    }

    /// Makes every link drop and duplicate messages, but only while the
    /// simulated clock is inside `[from_ms, until_ms)`.
    pub fn lossy_during(mut self, drop_p: f64, dup_p: f64, from_ms: u64, until_ms: u64) -> Self {
        self.links.push(LinkFault {
            drop_p,
            dup_p,
            window: Some((from_ms, until_ms)),
            ..LinkFault::default()
        });
        self
    }

    /// Makes every link delay messages by `delay_ns` with probability
    /// `delay_p`.
    pub fn delayed(mut self, delay_p: f64, delay_ns: u64) -> Self {
        self.links.push(LinkFault {
            delay_p,
            delay_ns,
            ..LinkFault::default()
        });
        self
    }

    /// Makes every link delay messages by `delay_ns` with probability
    /// `delay_p`, but only while the simulated clock is inside
    /// `[from_ms, until_ms)` — a delayed-but-not-dead episode.
    pub fn delayed_during(
        mut self,
        delay_p: f64,
        delay_ns: u64,
        from_ms: u64,
        until_ms: u64,
    ) -> Self {
        self.links.push(LinkFault {
            delay_p,
            delay_ns,
            window: Some((from_ms, until_ms)),
            ..LinkFault::default()
        });
        self
    }

    /// Slows `node` down by `factor_x100 / 100` for the whole run.
    pub fn slow_node(self, node: NodeId, factor_x100: u64) -> Self {
        self.slow_node_during(node, factor_x100, 0, u64::MAX)
    }

    /// Slows `node` down by `factor_x100 / 100` while the simulated clock
    /// is inside `[from_ms, until_ms)`.
    pub fn slow_node_during(
        mut self,
        node: NodeId,
        factor_x100: u64,
        from_ms: u64,
        until_ms: u64,
    ) -> Self {
        self.slow_nodes.push(SlowNode {
            node,
            factor_x100,
            from_ms,
            until_ms,
        });
        self
    }

    /// Flips one bit in each in-flight sub-batch payload with
    /// probability `p`.
    pub fn corrupt_messages(mut self, p: f64) -> Self {
        self.corrupt.push(CorruptFault {
            target: CorruptTarget::Message,
            p,
        });
        self
    }

    /// Flips one bit in each captured checkpoint image with
    /// probability `p`.
    pub fn corrupt_checkpoints(mut self, p: f64) -> Self {
        self.corrupt.push(CorruptFault {
            target: CorruptTarget::Checkpoint,
            p,
        });
        self
    }
}

/// One injected fault, recorded in occurrence order. Same-seed runs with
/// the same plan produce identical logs — the determinism tests compare
/// them element-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// A node died (schedule or drill).
    Killed {
        /// The node that died.
        node: NodeId,
        /// Simulated time of death.
        at_ms: u64,
    },
    /// A dead node came back (empty, pre-recovery).
    Restarted {
        /// The node that came back.
        node: NodeId,
        /// Simulated time of the restart.
        at_ms: u64,
    },
    /// A message was dropped (lossy link or dead destination).
    Dropped {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
    },
    /// A message was delivered twice.
    Duplicated {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
    },
    /// A message was delivered late.
    Delayed {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Extra charged nanoseconds.
        extra_ns: u64,
    },
    /// A one-sided read targeted a dead node.
    DeadRead {
        /// Reader.
        from: NodeId,
        /// Dead target.
        to: NodeId,
    },
    /// A bit was flipped in an in-flight message payload.
    CorruptedMsg {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
    },
    /// A bit was flipped in a captured checkpoint image.
    CorruptedCheckpoint {
        /// Simulated time of the capture.
        at_ms: u64,
    },
}

/// The delivery verdict for one message: how many copies arrive (0 =
/// dropped, 2 = duplicated) and any extra charged delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Copies delivered to the destination mailbox.
    pub copies: u32,
    /// Extra nanoseconds the copies are charged with.
    pub extra_ns: u64,
}

impl Delivery {
    const CLEAN: Delivery = Delivery {
        copies: 1,
        extra_ns: 0,
    };
}

/// Salt for the corruption RNG: corruption draws must not perturb the
/// link-fault draw sequence of a pre-existing plan with the same seed.
const CORRUPT_SEED_SALT: u64 = 0x0B17_F11B_50DD_C0DE_u64;

/// Runtime state of an installed [`FaultPlan`]: node liveness, the
/// seeded RNGs (link faults and corruption draw independently), the
/// schedule cursor, and the event log.
pub struct FaultState {
    plan: FaultPlan,
    rng: Mutex<StdRng>,
    crng: Mutex<StdRng>,
    up: Vec<AtomicBool>,
    clock_ms: AtomicU64,
    cursor: Mutex<usize>,
    log: Mutex<Vec<FaultEvent>>,
    counters: Arc<FaultCounters>,
}

impl FaultState {
    /// Instantiates `plan` over a `nodes`-node cluster, recording into
    /// `counters`. All nodes start alive; the schedule is fired by
    /// [`FaultState::advance_clock`].
    pub fn new(mut plan: FaultPlan, nodes: usize, counters: Arc<FaultCounters>) -> Self {
        plan.schedule.sort_by_key(|e| e.at_ms);
        let rng = Mutex::new(StdRng::seed_from_u64(plan.seed));
        let crng = Mutex::new(StdRng::seed_from_u64(plan.seed ^ CORRUPT_SEED_SALT));
        FaultState {
            rng,
            crng,
            up: (0..nodes).map(|_| AtomicBool::new(true)).collect(),
            clock_ms: AtomicU64::new(0),
            cursor: Mutex::new(0),
            log: Mutex::new(Vec::new()),
            counters,
            plan,
        }
    }

    /// The installed plan (schedule sorted by time).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The shared counters faults are recorded into.
    pub fn counters(&self) -> &Arc<FaultCounters> {
        &self.counters
    }

    /// Whether `node` is currently alive.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.up
            .get(node.idx())
            .is_some_and(|b| b.load(Ordering::Relaxed))
    }

    /// Kills `node` now; returns whether it was alive.
    pub fn kill(&self, node: NodeId) -> bool {
        let was_up = self.up[node.idx()].swap(false, Ordering::Relaxed);
        if was_up {
            self.counters.inc_kill();
            self.log.lock().push(FaultEvent::Killed {
                node,
                at_ms: self.clock_ms.load(Ordering::Relaxed),
            });
        }
        was_up
    }

    /// Restarts `node` (empty — recovery repopulates it); returns whether
    /// it was dead.
    pub fn restart(&self, node: NodeId) -> bool {
        let was_down = !self.up[node.idx()].swap(true, Ordering::Relaxed);
        if was_down {
            self.counters.inc_restart();
            self.log.lock().push(FaultEvent::Restarted {
                node,
                at_ms: self.clock_ms.load(Ordering::Relaxed),
            });
        }
        was_down
    }

    /// Advances simulated time to `now_ms` (monotonic) and fires every
    /// schedule entry that has come due.
    pub fn advance_clock(&self, now_ms: u64) {
        self.clock_ms.fetch_max(now_ms, Ordering::Relaxed);
        let now = self.clock_ms.load(Ordering::Relaxed);
        let mut cursor = self.cursor.lock();
        while let Some(e) = self.plan.schedule.get(*cursor) {
            if e.at_ms > now {
                break;
            }
            if e.kill {
                self.kill(e.node);
            } else {
                self.restart(e.node);
            }
            *cursor += 1;
        }
    }

    /// Decides the fate of one message `from → to`: a dead destination
    /// drops it, otherwise the first matching link rule draws from the
    /// seeded RNG.
    pub fn decide(&self, from: NodeId, to: NodeId) -> Delivery {
        if !self.is_up(to) {
            self.record_drop(from, to);
            return Delivery {
                copies: 0,
                extra_ns: 0,
            };
        }
        self.decide_link(from, to)
    }

    /// Link-rule verdict only (liveness checked by the caller). A zero
    /// probability consumes no RNG draw, and a dropped message skips the
    /// duplicate/delay draws, so the draw sequence is a pure function of
    /// the outcomes.
    pub fn decide_link(&self, from: NodeId, to: NodeId) -> Delivery {
        let now = self.clock_ms.load(Ordering::Relaxed);
        let Some(rule) = self.plan.links.iter().find(|r| r.matches(from, to, now)) else {
            return Delivery::CLEAN;
        };
        let mut rng = self.rng.lock();
        if rule.drop_p > 0.0 && rng.gen_bool(rule.drop_p) {
            drop(rng);
            self.record_drop(from, to);
            return Delivery {
                copies: 0,
                extra_ns: 0,
            };
        }
        let copies = if rule.dup_p > 0.0 && rng.gen_bool(rule.dup_p) {
            self.counters.inc_duplicated();
            self.log.lock().push(FaultEvent::Duplicated { from, to });
            2
        } else {
            1
        };
        let extra_ns = if rule.delay_p > 0.0 && rng.gen_bool(rule.delay_p) {
            self.counters.inc_delayed();
            self.log.lock().push(FaultEvent::Delayed {
                from,
                to,
                extra_ns: rule.delay_ns,
            });
            rule.delay_ns
        } else {
            0
        };
        Delivery { copies, extra_ns }
    }

    /// The slowdown multiplier (×100) currently applying to `node`: the
    /// maximum over active [`SlowNode`] rules, or 100 when none match.
    /// Purely a function of the plan and the simulated clock.
    pub fn slow_factor_x100(&self, node: NodeId) -> u64 {
        let now = self.clock_ms.load(Ordering::Relaxed);
        self.plan
            .slow_nodes
            .iter()
            .filter(|s| s.node == node && now >= s.from_ms && now < s.until_ms)
            .map(|s| s.factor_x100)
            .fold(100, u64::max)
    }

    /// Scales a charged duration for an operation between `from` and
    /// `to` by the worse of the two endpoints' slowdown factors, counting
    /// the operation as slowed when the factor bites.
    pub fn scale_ns(&self, from: NodeId, to: NodeId, ns: u64) -> u64 {
        let factor = self.slow_factor_x100(from).max(self.slow_factor_x100(to));
        if factor <= 100 || ns == 0 {
            return ns;
        }
        self.counters.inc_slowed();
        ns.saturating_mul(factor) / 100
    }

    /// Draws the corruption verdict for one in-flight message `from →
    /// to`: `Some(bits)` means the carrier should flip one bit chosen
    /// from the 64 random `bits`. A plan without a message-corruption
    /// rule (or with `p == 0`) consumes no draw.
    pub fn corrupt_message(&self, from: NodeId, to: NodeId) -> Option<u64> {
        let rule = self
            .plan
            .corrupt
            .iter()
            .find(|c| c.target == CorruptTarget::Message && c.p > 0.0)?;
        let mut rng = self.crng.lock();
        if !rng.gen_bool(rule.p) {
            return None;
        }
        let bits = rng.next_u64();
        drop(rng);
        self.counters.inc_corrupt_msg();
        self.log.lock().push(FaultEvent::CorruptedMsg { from, to });
        Some(bits)
    }

    /// Draws the corruption verdict for one captured checkpoint image:
    /// `Some(bits)` means the durable copy should have one bit flipped.
    pub fn corrupt_checkpoint(&self) -> Option<u64> {
        let rule = self
            .plan
            .corrupt
            .iter()
            .find(|c| c.target == CorruptTarget::Checkpoint && c.p > 0.0)?;
        let mut rng = self.crng.lock();
        if !rng.gen_bool(rule.p) {
            return None;
        }
        let bits = rng.next_u64();
        drop(rng);
        self.counters.inc_corrupt_checkpoint();
        self.log.lock().push(FaultEvent::CorruptedCheckpoint {
            at_ms: self.clock_ms.load(Ordering::Relaxed),
        });
        Some(bits)
    }

    /// Records a message lost on `from → to`.
    pub fn record_drop(&self, from: NodeId, to: NodeId) {
        self.counters.inc_dropped();
        self.log.lock().push(FaultEvent::Dropped { from, to });
    }

    /// Records a one-sided read that hit the dead node `to`.
    pub fn record_dead_read(&self, from: NodeId, to: NodeId) {
        self.counters.inc_dead_read();
        self.log.lock().push(FaultEvent::DeadRead { from, to });
    }

    /// A copy of the event log so far, in occurrence order.
    pub fn log(&self) -> Vec<FaultEvent> {
        self.log.lock().clone()
    }
}

impl std::fmt::Debug for FaultState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultState")
            .field("plan", &self.plan)
            .field("clock_ms", &self.clock_ms.load(Ordering::Relaxed))
            .field("events", &self.log.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(plan: FaultPlan) -> FaultState {
        FaultState::new(plan, 3, Arc::new(FaultCounters::default()))
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::seeded(7).lossy(0.3, 0.3).delayed(0.2, 5_000);
        let a = state(plan.clone());
        let b = state(plan);
        let da: Vec<Delivery> = (0..200).map(|_| a.decide(NodeId(0), NodeId(1))).collect();
        let db: Vec<Delivery> = (0..200).map(|_| b.decide(NodeId(0), NodeId(1))).collect();
        assert_eq!(da, db);
        assert_eq!(a.log(), b.log());
        assert!(a
            .log()
            .iter()
            .any(|e| matches!(e, FaultEvent::Dropped { .. })));

        let c = state(FaultPlan::seeded(8).lossy(0.3, 0.3).delayed(0.2, 5_000));
        let dc: Vec<Delivery> = (0..200).map(|_| c.decide(NodeId(0), NodeId(1))).collect();
        assert_ne!(da, dc, "different seeds must differ");
    }

    #[test]
    fn first_matching_rule_wins_and_rules_scope_links() {
        let plan = FaultPlan::seeded(1)
            .lossy_link(NodeId(0), NodeId(1), 1.0, 0.0)
            .lossy(0.0, 0.0);
        let s = state(plan);
        assert_eq!(s.decide(NodeId(0), NodeId(1)).copies, 0);
        assert_eq!(s.decide(NodeId(1), NodeId(0)), Delivery::CLEAN);
        assert_eq!(s.decide(NodeId(0), NodeId(2)), Delivery::CLEAN);
    }

    #[test]
    fn schedule_fires_in_time_order() {
        let plan = FaultPlan::seeded(0)
            .restart_at(NodeId(1), 900)
            .kill_at(NodeId(1), 400)
            .kill_at(NodeId(2), 600);
        let s = state(plan);
        assert!(s.is_up(NodeId(1)));
        s.advance_clock(500);
        assert!(!s.is_up(NodeId(1)));
        assert!(s.is_up(NodeId(2)));
        s.advance_clock(1_000);
        assert!(s.is_up(NodeId(1)), "restart fired");
        assert!(!s.is_up(NodeId(2)));
        // The clock is monotonic: rewinding is a no-op.
        s.advance_clock(100);
        assert!(!s.is_up(NodeId(2)));
        assert_eq!(
            s.log(),
            vec![
                FaultEvent::Killed {
                    node: NodeId(1),
                    at_ms: 500
                },
                FaultEvent::Killed {
                    node: NodeId(2),
                    at_ms: 1_000
                },
                FaultEvent::Restarted {
                    node: NodeId(1),
                    at_ms: 1_000
                },
            ]
        );
    }

    #[test]
    fn corruption_draws_are_deterministic_and_isolated() {
        // Same seed, same plan → identical corruption verdicts.
        let plan = FaultPlan::seeded(11).corrupt_messages(0.5);
        let a = state(plan.clone());
        let b = state(plan);
        let va: Vec<_> = (0..100)
            .map(|_| a.corrupt_message(NodeId(0), NodeId(1)))
            .collect();
        let vb: Vec<_> = (0..100)
            .map(|_| b.corrupt_message(NodeId(0), NodeId(1)))
            .collect();
        assert_eq!(va, vb);
        assert!(va.iter().any(Option::is_some));
        assert!(va.iter().any(Option::is_none));
        assert_eq!(
            a.counters().snapshot().msgs_corrupted,
            va.iter().filter(|v| v.is_some()).count() as u64
        );

        // Adding a corruption rule must not perturb the link-fault draw
        // sequence: interleaved corruption draws leave link verdicts
        // identical to a plan without the rule.
        let base = FaultPlan::seeded(7).lossy(0.3, 0.3);
        let plain = state(base.clone());
        let mixed = state(base.corrupt_messages(0.5));
        let dp: Vec<Delivery> = (0..100)
            .map(|_| plain.decide(NodeId(0), NodeId(1)))
            .collect();
        let dm: Vec<Delivery> = (0..100)
            .map(|_| {
                mixed.corrupt_message(NodeId(0), NodeId(1));
                mixed.decide(NodeId(0), NodeId(1))
            })
            .collect();
        assert_eq!(dp, dm);

        // A plan without corruption rules never draws or logs.
        let none = state(FaultPlan::seeded(11));
        assert_eq!(none.corrupt_message(NodeId(0), NodeId(1)), None);
        assert_eq!(none.corrupt_checkpoint(), None);
        assert!(none.log().is_empty());
    }

    #[test]
    fn checkpoint_corruption_counts_and_logs() {
        let s = state(FaultPlan::seeded(5).corrupt_checkpoints(1.0));
        s.advance_clock(250);
        assert!(s.corrupt_checkpoint().is_some());
        assert_eq!(s.counters().snapshot().checkpoints_corrupted, 1);
        assert_eq!(
            s.log(),
            vec![FaultEvent::CorruptedCheckpoint { at_ms: 250 }]
        );
    }

    #[test]
    fn dead_destination_drops_everything() {
        let s = state(FaultPlan::seeded(3));
        s.kill(NodeId(2));
        assert_eq!(s.decide(NodeId(0), NodeId(2)).copies, 0);
        assert_eq!(s.decide(NodeId(0), NodeId(1)), Delivery::CLEAN);
        assert_eq!(s.counters().snapshot().msgs_dropped, 1);
        s.restart(NodeId(2));
        assert_eq!(s.decide(NodeId(0), NodeId(2)), Delivery::CLEAN);
        assert_eq!(s.counters().snapshot().node_kills, 1);
        assert_eq!(s.counters().snapshot().node_restarts, 1);
    }
}
