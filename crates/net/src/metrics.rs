//! Fabric-wide operation counters.
//!
//! The benchmark harness uses these to report *why* a configuration is
//! slower (e.g. Non-RDMA turning each one-sided read into an RPC pair), and
//! the tests use them to assert operation counts — the quantity the
//! simulation is designed to reproduce faithfully.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of fabric activity.
#[derive(Debug, Default)]
pub struct FabricMetrics {
    one_sided_reads: AtomicU64,
    messages: AtomicU64,
    bytes_read: AtomicU64,
    bytes_sent: AtomicU64,
    charged_ns: AtomicU64,
}

/// A point-in-time copy of [`FabricMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Number of one-sided READ verbs issued.
    pub one_sided_reads: u64,
    /// Number of two-sided messages sent.
    pub messages: u64,
    /// Payload bytes moved by READs.
    pub bytes_read: u64,
    /// Payload bytes moved by messages.
    pub bytes_sent: u64,
    /// Total virtual nanoseconds charged for network activity.
    pub charged_ns: u64,
}

impl FabricMetrics {
    /// Records a one-sided read of `bytes` charged `ns`.
    pub fn record_read(&self, bytes: usize, ns: u64) {
        self.one_sided_reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
        self.charged_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records a two-sided message of `bytes` charged `ns`.
    pub fn record_message(&self, bytes: usize, ns: u64) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        self.charged_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            one_sided_reads: self.one_sided_reads.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            charged_ns: self.charged_ns.load(Ordering::Relaxed),
        }
    }
}

impl MetricsSnapshot {
    /// Difference of two snapshots (`later - self`).
    pub fn delta(&self, later: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            one_sided_reads: later.one_sided_reads - self.one_sided_reads,
            messages: later.messages - self.messages,
            bytes_read: later.bytes_read - self.bytes_read,
            bytes_sent: later.bytes_sent - self.bytes_sent,
            charged_ns: later.charged_ns - self.charged_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = FabricMetrics::default();
        m.record_read(100, 2_000);
        m.record_read(50, 2_000);
        m.record_message(10, 5_000);
        let s = m.snapshot();
        assert_eq!(s.one_sided_reads, 2);
        assert_eq!(s.messages, 1);
        assert_eq!(s.bytes_read, 150);
        assert_eq!(s.bytes_sent, 10);
        assert_eq!(s.charged_ns, 9_000);
    }

    #[test]
    fn snapshot_delta() {
        let m = FabricMetrics::default();
        m.record_read(100, 2_000);
        let before = m.snapshot();
        m.record_read(100, 2_000);
        let after = m.snapshot();
        let d = before.delta(&after);
        assert_eq!(d.one_sided_reads, 1);
        assert_eq!(d.bytes_read, 100);
    }
}
