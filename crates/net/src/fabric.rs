//! The simulated cluster fabric.
//!
//! A [`Fabric`] represents the interconnect of an `n`-node cluster. It does
//! not own any application state — shards live in the store layer — it owns
//! the *cost model* and the message channels, and it enforces the
//! simulation discipline: every cross-node access must pass through the
//! fabric so its latency is charged and counted.

use crate::clock::TaskTimer;
use crate::message::Envelope;
use crate::metrics::{FabricMetrics, MetricsSnapshot};
use crate::profile::NetworkProfile;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Identifier of a simulated cluster node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Index into per-node arrays.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// The interconnect of a simulated cluster.
pub struct Fabric {
    profile: NetworkProfile,
    nodes: usize,
    metrics: Arc<FabricMetrics>,
}

impl Fabric {
    /// Creates a fabric connecting `nodes` nodes under `profile` costs.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize, profile: NetworkProfile) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        Fabric {
            profile,
            nodes,
            metrics: Arc::new(FabricMetrics::default()),
        }
    }

    /// Number of nodes in the cluster.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The active cost model.
    pub fn profile(&self) -> NetworkProfile {
        self.profile
    }

    /// Shared operation counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Charges `timer` for a one-sided READ of `bytes` from `to`, issued by
    /// a task running on `from`. Local accesses are free.
    ///
    /// Returns the nanoseconds charged.
    pub fn charge_read(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        timer: &mut TaskTimer,
    ) -> u64 {
        if from == to {
            return 0;
        }
        let ns = self.profile.read_cost(bytes);
        self.metrics.record_read(bytes, ns);
        timer.charge(ns);
        ns
    }

    /// Charges `timer` for one two-sided message of `bytes` between two
    /// distinct nodes. Local sends are free.
    pub fn charge_message(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        timer: &mut TaskTimer,
    ) -> u64 {
        if from == to {
            return 0;
        }
        let ns = self.profile.message_cost(bytes);
        self.metrics.record_message(bytes, ns);
        timer.charge(ns);
        ns
    }

    /// Builds one typed mailbox per node for two-sided communication.
    ///
    /// Returns the per-node endpoints; each can send to any node and
    /// receive from its own mailbox. Sends through an endpoint charge the
    /// fabric's message cost automatically.
    pub fn endpoints<T>(&self) -> Vec<Endpoint<T>> {
        type Mailbox<T> = (Sender<Envelope<T>>, Receiver<Envelope<T>>);
        let channels: Vec<Mailbox<T>> = (0..self.nodes).map(|_| unbounded()).collect();
        let senders: Vec<Sender<Envelope<T>>> = channels.iter().map(|(s, _)| s.clone()).collect();
        channels
            .into_iter()
            .enumerate()
            .map(|(i, (_, rx))| Endpoint {
                node: NodeId(i as u16),
                profile: self.profile,
                metrics: Arc::clone(&self.metrics),
                senders: senders.clone(),
                rx,
            })
            .collect()
    }
}

/// A node's handle for two-sided messaging over the fabric.
pub struct Endpoint<T> {
    node: NodeId,
    profile: NetworkProfile,
    metrics: Arc<FabricMetrics>,
    senders: Vec<Sender<Envelope<T>>>,
    rx: Receiver<Envelope<T>>,
}

impl<T> Endpoint<T> {
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends `payload` of wire size `bytes` to `to`, charging the hop cost.
    ///
    /// Returns the nanoseconds charged for the hop. The same charge rides
    /// in the envelope so the receiver can account for arrival delay.
    pub fn send(&self, to: NodeId, bytes: usize, payload: T) -> u64 {
        let ns = if to == self.node {
            0
        } else {
            let ns = self.profile.message_cost(bytes);
            self.metrics.record_message(bytes, ns);
            ns
        };
        // Mailboxes are unbounded and live as long as any endpoint, so a
        // send can only fail if every endpoint for `to` was dropped; the
        // cluster tears endpoints down together, making that a bug.
        self.senders[to.idx()]
            .send(Envelope {
                from: self.node,
                bytes,
                charged_ns: ns,
                payload,
            })
            .expect("destination endpoint dropped while cluster still running");
        ns
    }

    /// Receives the next message, blocking until one arrives.
    pub fn recv(&self) -> Envelope<T> {
        self.rx.recv().expect("all senders dropped")
    }

    /// Receives with a real-time timeout (used by engine shutdown paths).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<T>, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<T>> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_ops_are_free() {
        let f = Fabric::new(2, NetworkProfile::rdma());
        let mut t = TaskTimer::start();
        assert_eq!(f.charge_read(NodeId(0), NodeId(0), 1024, &mut t), 0);
        assert_eq!(f.charge_message(NodeId(1), NodeId(1), 1024, &mut t), 0);
        assert_eq!(t.charged_ns(), 0);
        assert_eq!(f.metrics().one_sided_reads, 0);
    }

    #[test]
    fn remote_read_charges_and_counts() {
        let f = Fabric::new(2, NetworkProfile::rdma());
        let mut t = TaskTimer::start();
        let ns = f.charge_read(NodeId(0), NodeId(1), 64, &mut t);
        assert!(ns >= 2_000);
        assert_eq!(t.charged_ns(), ns);
        let m = f.metrics();
        assert_eq!(m.one_sided_reads, 1);
        assert_eq!(m.bytes_read, 64);
    }

    #[test]
    fn endpoints_deliver_messages() {
        let f = Fabric::new(3, NetworkProfile::rdma());
        let mut eps = f.endpoints::<&'static str>();
        let e2 = eps.remove(2);
        let e0 = eps.remove(0);
        let charged = e0.send(NodeId(2), 10, "hello");
        assert!(charged > 0);
        let env = e2.recv();
        assert_eq!(env.payload, "hello");
        assert_eq!(env.from, NodeId(0));
        assert_eq!(env.charged_ns, charged);
        assert_eq!(f.metrics().messages, 1);
    }

    #[test]
    fn self_send_is_free_but_delivered() {
        let f = Fabric::new(1, NetworkProfile::tcp());
        let eps = f.endpoints::<u32>();
        assert_eq!(eps[0].send(NodeId(0), 100, 7), 0);
        assert_eq!(eps[0].recv().payload, 7);
        assert_eq!(f.metrics().messages, 0);
    }

    #[test]
    fn tcp_profile_charges_more() {
        let rdma = Fabric::new(2, NetworkProfile::rdma());
        let tcp = Fabric::new(2, NetworkProfile::tcp());
        let mut tr = TaskTimer::start();
        let mut tt = TaskTimer::start();
        let r = rdma.charge_read(NodeId(0), NodeId(1), 256, &mut tr);
        let t = tcp.charge_read(NodeId(0), NodeId(1), 256, &mut tt);
        assert!(t > 10 * r);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_cluster_rejected() {
        let _ = Fabric::new(0, NetworkProfile::rdma());
    }
}
