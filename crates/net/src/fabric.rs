//! The simulated cluster fabric.
//!
//! A [`Fabric`] represents the interconnect of an `n`-node cluster. It does
//! not own any application state — shards live in the store layer — it owns
//! the *cost model* and the message channels, and it enforces the
//! simulation discipline: every cross-node access must pass through the
//! fabric so its latency is charged and counted.

use crate::clock::TaskTimer;
use crate::fault::{FaultEvent, FaultPlan, FaultState, MAX_RETRANSMITS};
use crate::message::Envelope;
use crate::metrics::{FabricMetrics, MetricsSnapshot};
use crate::profile::NetworkProfile;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;
use wukong_obs::FaultCounters;

/// Identifier of a simulated cluster node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Index into per-node arrays.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Error returned by [`Fabric::try_charge_read`] when the target node is
/// dead: the one-sided verb has no live NIC to complete against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeDown(pub NodeId);

impl std::fmt::Display for NodeDown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node {} is down", self.0 .0)
    }
}

impl std::error::Error for NodeDown {}

/// The interconnect of a simulated cluster.
pub struct Fabric {
    profile: NetworkProfile,
    nodes: usize,
    metrics: Arc<FabricMetrics>,
    faults: Option<Arc<FaultState>>,
}

impl Fabric {
    /// Creates a fabric connecting `nodes` nodes under `profile` costs.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize, profile: NetworkProfile) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        Fabric {
            profile,
            nodes,
            metrics: Arc::new(FabricMetrics::default()),
            faults: None,
        }
    }

    /// Installs a fault plan; subsequent sends, reads, and clock advances
    /// consult it. Faults are recorded into `counters` (normally the
    /// engine registry's shared [`FaultCounters`]).
    pub fn install_faults(&mut self, plan: FaultPlan, counters: Arc<FaultCounters>) {
        self.faults = Some(Arc::new(FaultState::new(plan, self.nodes, counters)));
    }

    /// Whether a fault plan is installed.
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// The installed fault runtime, if any.
    pub fn fault_state(&self) -> Option<&Arc<FaultState>> {
        self.faults.as_ref()
    }

    /// The injected-fault event log so far (empty without a plan).
    pub fn fault_log(&self) -> Vec<FaultEvent> {
        self.faults.as_ref().map_or_else(Vec::new, |f| f.log())
    }

    /// Whether `node` is alive. Always `true` without a fault plan.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.faults.as_ref().is_none_or(|f| f.is_up(node))
    }

    /// Kills `node` immediately (drill entry point). Returns whether the
    /// node was alive; a no-op without a fault plan.
    pub fn kill_node(&self, node: NodeId) -> bool {
        self.faults.as_ref().is_some_and(|f| f.kill(node))
    }

    /// Restarts a dead `node` (empty — recovery repopulates it). Returns
    /// whether the node was dead; a no-op without a fault plan.
    pub fn restart_node(&self, node: NodeId) -> bool {
        self.faults.as_ref().is_some_and(|f| f.restart(node))
    }

    /// Advances simulated time, firing any scheduled kills/restarts that
    /// have come due. The engine calls this from its ingest/advance path.
    pub fn advance_clock(&self, now_ms: u64) {
        if let Some(f) = &self.faults {
            f.advance_clock(now_ms);
        }
    }

    /// Number of nodes in the cluster.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The active cost model.
    pub fn profile(&self) -> NetworkProfile {
        self.profile
    }

    /// Shared operation counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Charges `timer` for a one-sided READ of `bytes` from `to`, issued by
    /// a task running on `from`. Local accesses are free.
    ///
    /// Returns the nanoseconds charged.
    pub fn charge_read(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        timer: &mut TaskTimer,
    ) -> u64 {
        if from == to {
            return 0;
        }
        let ns = self.scale(from, to, self.profile.read_cost(bytes));
        self.metrics.record_read(bytes, ns);
        timer.charge(ns);
        ns
    }

    /// Applies the installed slow-node profile (if any) to a charged
    /// duration: operations touching a slowed endpoint cost more.
    fn scale(&self, from: NodeId, to: NodeId, ns: u64) -> u64 {
        match &self.faults {
            Some(f) => f.scale_ns(from, to, ns),
            None => ns,
        }
    }

    /// Charges `timer` for one two-sided message of `bytes` between two
    /// distinct nodes. Local sends are free.
    pub fn charge_message(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        timer: &mut TaskTimer,
    ) -> u64 {
        if from == to {
            return 0;
        }
        let ns = self.scale(from, to, self.profile.message_cost(bytes));
        self.metrics.record_message(bytes, ns);
        timer.charge(ns);
        ns
    }

    /// Like [`Fabric::charge_read`], but fails when the target node is
    /// dead — the injected-fault analogue of an RDMA verb completing with
    /// an error status.
    pub fn try_charge_read(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        timer: &mut TaskTimer,
    ) -> Result<u64, NodeDown> {
        if from != to {
            if let Some(f) = &self.faults {
                if !f.is_up(to) {
                    f.record_dead_read(from, to);
                    // The verb completed with an error: to the issuing
                    // firing this is a missed read deadline, attributed
                    // through the caller's scoped flight recorder.
                    wukong_obs::trace::scoped_marker(
                        wukong_obs::trace::Marker::DeadlineMiss,
                        u64::from(to.0),
                    );
                    return Err(NodeDown(to));
                }
            }
        }
        Ok(self.charge_read(from, to, bytes, timer))
    }

    /// Sends one logical message `from → to` with at-least-once
    /// semantics: dropped transmissions are re-sent (each attempt charges
    /// the hop cost) until one is delivered, up to [`MAX_RETRANSMITS`].
    ///
    /// Returns how many copies reached the destination: `0` means the
    /// destination is dead (or a total-loss link exhausted its retries),
    /// `2` means a duplicating link delivered the message twice — the
    /// receiver's dedup layer is expected to suppress the extra copy.
    /// Without a fault plan this is exactly one charged message.
    pub fn send_at_least_once(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        timer: &mut TaskTimer,
    ) -> u32 {
        if from == to {
            return 1;
        }
        let Some(f) = &self.faults else {
            self.charge_message(from, to, bytes, timer);
            return 1;
        };
        let mut attempts = 0u32;
        loop {
            if !f.is_up(to) {
                f.record_drop(from, to);
                wukong_obs::trace::scoped_marker(
                    wukong_obs::trace::Marker::DeadlineMiss,
                    u64::from(to.0),
                );
                return 0;
            }
            self.charge_message(from, to, bytes, timer);
            let v = f.decide_link(from, to);
            timer.charge(v.extra_ns);
            if v.copies > 0 {
                return v.copies;
            }
            attempts += 1;
            if attempts >= MAX_RETRANSMITS {
                // A total-loss link exhausted its retry budget — the
                // delivery deadline is gone for good.
                wukong_obs::trace::scoped_marker(
                    wukong_obs::trace::Marker::DeadlineMiss,
                    u64::from(to.0),
                );
                return 0;
            }
            f.counters().inc_retransmit();
        }
    }

    /// Builds one typed mailbox per node for two-sided communication.
    ///
    /// Returns the per-node endpoints; each can send to any node and
    /// receive from its own mailbox. Sends through an endpoint charge the
    /// fabric's message cost automatically and consult the installed
    /// fault plan (if any) for drops, duplicates, and delays.
    pub fn endpoints<T>(&self) -> Vec<Endpoint<T>> {
        type Mailbox<T> = (Sender<Envelope<T>>, Receiver<Envelope<T>>);
        let channels: Vec<Mailbox<T>> = (0..self.nodes).map(|_| unbounded()).collect();
        let senders: Vec<Sender<Envelope<T>>> = channels.iter().map(|(s, _)| s.clone()).collect();
        channels
            .into_iter()
            .enumerate()
            .map(|(i, (_, rx))| Endpoint {
                node: NodeId(i as u16),
                profile: self.profile,
                metrics: Arc::clone(&self.metrics),
                faults: self.faults.clone(),
                senders: senders.clone(),
                rx,
            })
            .collect()
    }
}

/// A node's handle for two-sided messaging over the fabric.
pub struct Endpoint<T> {
    node: NodeId,
    profile: NetworkProfile,
    metrics: Arc<FabricMetrics>,
    faults: Option<Arc<FaultState>>,
    senders: Vec<Sender<Envelope<T>>>,
    rx: Receiver<Envelope<T>>,
}

impl<T> Endpoint<T> {
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends `payload` of wire size `bytes` to `to`, charging the hop cost.
    ///
    /// Returns the nanoseconds charged for the hop. The same charge rides
    /// in the envelope so the receiver can account for arrival delay.
    ///
    /// With a fault plan installed, the message may be dropped (nothing
    /// arrives), duplicated (two envelopes arrive), or delayed (the
    /// envelope carries extra charged latency); the sender still pays and
    /// records the hop cost either way. Self-sends are never faulted.
    pub fn send(&self, to: NodeId, bytes: usize, payload: T) -> u64
    where
        T: Clone,
    {
        let ns = if to == self.node {
            0
        } else {
            let mut ns = self.profile.message_cost(bytes);
            if let Some(f) = &self.faults {
                ns = f.scale_ns(self.node, to, ns);
            }
            self.metrics.record_message(bytes, ns);
            ns
        };
        let delivery = match &self.faults {
            Some(f) if to != self.node => f.decide(self.node, to),
            _ => crate::fault::Delivery {
                copies: 1,
                extra_ns: 0,
            },
        };
        // Mailboxes are unbounded and live as long as any endpoint, so a
        // send can only fail if every endpoint for `to` was dropped; the
        // cluster tears endpoints down together, making that a bug.
        for _ in 0..delivery.copies {
            self.senders[to.idx()]
                .send(Envelope {
                    from: self.node,
                    bytes,
                    charged_ns: ns + delivery.extra_ns,
                    payload: payload.clone(),
                })
                .expect("destination endpoint dropped while cluster still running");
        }
        ns
    }

    /// Receives the next message, blocking until one arrives.
    pub fn recv(&self) -> Envelope<T> {
        self.rx.recv().expect("all senders dropped")
    }

    /// Receives with a real-time timeout (used by engine shutdown paths).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<T>, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<T>> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_ops_are_free() {
        let f = Fabric::new(2, NetworkProfile::rdma());
        let mut t = TaskTimer::start();
        assert_eq!(f.charge_read(NodeId(0), NodeId(0), 1024, &mut t), 0);
        assert_eq!(f.charge_message(NodeId(1), NodeId(1), 1024, &mut t), 0);
        assert_eq!(t.charged_ns(), 0);
        assert_eq!(f.metrics().one_sided_reads, 0);
    }

    #[test]
    fn remote_read_charges_and_counts() {
        let f = Fabric::new(2, NetworkProfile::rdma());
        let mut t = TaskTimer::start();
        let ns = f.charge_read(NodeId(0), NodeId(1), 64, &mut t);
        assert!(ns >= 2_000);
        assert_eq!(t.charged_ns(), ns);
        let m = f.metrics();
        assert_eq!(m.one_sided_reads, 1);
        assert_eq!(m.bytes_read, 64);
    }

    #[test]
    fn endpoints_deliver_messages() {
        let f = Fabric::new(3, NetworkProfile::rdma());
        let mut eps = f.endpoints::<&'static str>();
        let e2 = eps.remove(2);
        let e0 = eps.remove(0);
        let charged = e0.send(NodeId(2), 10, "hello");
        assert!(charged > 0);
        let env = e2.recv();
        assert_eq!(env.payload, "hello");
        assert_eq!(env.from, NodeId(0));
        assert_eq!(env.charged_ns, charged);
        assert_eq!(f.metrics().messages, 1);
    }

    #[test]
    fn self_send_is_free_but_delivered() {
        let f = Fabric::new(1, NetworkProfile::tcp());
        let eps = f.endpoints::<u32>();
        assert_eq!(eps[0].send(NodeId(0), 100, 7), 0);
        assert_eq!(eps[0].recv().payload, 7);
        assert_eq!(f.metrics().messages, 0);
    }

    #[test]
    fn tcp_profile_charges_more() {
        let rdma = Fabric::new(2, NetworkProfile::rdma());
        let tcp = Fabric::new(2, NetworkProfile::tcp());
        let mut tr = TaskTimer::start();
        let mut tt = TaskTimer::start();
        let r = rdma.charge_read(NodeId(0), NodeId(1), 256, &mut tr);
        let t = tcp.charge_read(NodeId(0), NodeId(1), 256, &mut tt);
        assert!(t > 10 * r);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_cluster_rejected() {
        let _ = Fabric::new(0, NetworkProfile::rdma());
    }

    #[test]
    fn recv_timeout_expires_then_delivers() {
        let f = Fabric::new(2, NetworkProfile::rdma());
        let mut eps = f.endpoints::<u32>();
        let e1 = eps.remove(1);
        let e0 = eps.remove(0);
        assert!(matches!(
            e1.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        ));
        e0.send(NodeId(1), 8, 42);
        let env = e1.recv_timeout(Duration::from_millis(5)).expect("queued");
        assert_eq!(env.payload, 42);
    }

    #[test]
    fn try_recv_is_non_blocking() {
        let f = Fabric::new(2, NetworkProfile::rdma());
        let eps = f.endpoints::<u32>();
        assert!(eps[0].try_recv().is_none());
        eps[1].send(NodeId(0), 8, 9);
        assert_eq!(eps[0].try_recv().expect("queued").payload, 9);
        assert!(eps[0].try_recv().is_none());
    }

    #[test]
    fn recv_timeout_reports_disconnect() {
        // Endpoints hold every sender (including their own), so the
        // Disconnected arm is only reachable at the raw channel level.
        let (tx, rx) = unbounded::<Envelope<u32>>();
        drop(tx);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        ));
    }

    fn faulty(nodes: usize, plan: FaultPlan) -> Fabric {
        let mut f = Fabric::new(nodes, NetworkProfile::rdma());
        f.install_faults(plan, Arc::new(FaultCounters::default()));
        f
    }

    #[test]
    fn lossy_endpoint_sends_are_deterministic_per_seed() {
        let deliveries = |seed: u64| -> Vec<usize> {
            let f = faulty(2, FaultPlan::seeded(seed).lossy(0.4, 0.3));
            let eps = f.endpoints::<u32>();
            (0..100)
                .map(|i| {
                    eps[0].send(NodeId(1), 16, i);
                    let mut n = 0;
                    while eps[1].try_recv().is_some() {
                        n += 1;
                    }
                    n
                })
                .collect()
        };
        let a = deliveries(11);
        assert_eq!(a, deliveries(11));
        assert_ne!(a, deliveries(12));
        assert!(a.contains(&0), "some messages must drop");
        assert!(a.contains(&2), "some messages must duplicate");
    }

    #[test]
    fn killed_node_swallows_messages_and_fails_reads() {
        let f = faulty(3, FaultPlan::seeded(5));
        let eps = f.endpoints::<u32>();
        let mut t = TaskTimer::start();
        assert!(f.try_charge_read(NodeId(0), NodeId(2), 64, &mut t).is_ok());

        assert!(f.kill_node(NodeId(2)));
        assert!(!f.is_up(NodeId(2)));
        assert!(!f.kill_node(NodeId(2)), "already dead");
        eps[0].send(NodeId(2), 16, 1);
        assert!(eps[2].try_recv().is_none(), "dead mailbox gets nothing");
        assert_eq!(
            f.try_charge_read(NodeId(0), NodeId(2), 64, &mut t),
            Err(NodeDown(NodeId(2)))
        );

        assert!(f.restart_node(NodeId(2)));
        eps[0].send(NodeId(2), 16, 2);
        assert_eq!(eps[2].try_recv().expect("alive again").payload, 2);
        let log = f.fault_log();
        assert!(log.contains(&FaultEvent::Killed {
            node: NodeId(2),
            at_ms: 0
        }));
        assert!(log.contains(&FaultEvent::DeadRead {
            from: NodeId(0),
            to: NodeId(2)
        }));
    }

    #[test]
    fn advance_clock_fires_the_schedule() {
        let f = faulty(2, FaultPlan::seeded(0).kill_at(NodeId(1), 300));
        assert!(f.is_up(NodeId(1)));
        f.advance_clock(299);
        assert!(f.is_up(NodeId(1)));
        f.advance_clock(300);
        assert!(!f.is_up(NodeId(1)));
    }

    #[test]
    fn at_least_once_repairs_drops_but_not_death() {
        let plan = FaultPlan::seeded(21).lossy(0.5, 0.0);
        let f = faulty(2, plan);
        let mut t = TaskTimer::start();
        for _ in 0..50 {
            assert_eq!(f.send_at_least_once(NodeId(0), NodeId(1), 32, &mut t), 1);
        }
        let snap = f.fault_state().expect("installed").counters().snapshot();
        assert!(snap.retransmits > 0, "a 50% link must need retransmits");
        assert_eq!(snap.retransmits, snap.msgs_dropped);

        f.kill_node(NodeId(1));
        assert_eq!(f.send_at_least_once(NodeId(0), NodeId(1), 32, &mut t), 0);
        // Self-sends and fault-free fabrics deliver exactly once.
        assert_eq!(f.send_at_least_once(NodeId(0), NodeId(0), 32, &mut t), 1);
        let clean = Fabric::new(2, NetworkProfile::rdma());
        assert_eq!(
            clean.send_at_least_once(NodeId(0), NodeId(1), 32, &mut t),
            1
        );
    }
}
