//! Message envelope for two-sided communication.

use crate::fabric::NodeId;

/// A message in flight between two simulated nodes.
///
/// The envelope carries the latency that was charged when the message was
/// sent, so the receiver can fold the arrival delay into its own
/// [`crate::TaskTimer`] — this models "the reply arrives `charged_ns`
/// later" without any real sleeping.
#[derive(Debug, Clone)]
pub struct Envelope<T> {
    /// The sending node.
    pub from: NodeId,
    /// Wire size the payload was charged for, in bytes.
    pub bytes: usize,
    /// Virtual nanoseconds charged for this hop.
    pub charged_ns: u64,
    /// The payload itself.
    pub payload: T,
}
