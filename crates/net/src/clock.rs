//! Per-task virtual time accounting.
//!
//! A task's reported latency is the sum of its *real* compute time (the
//! Rust store and executor code genuinely runs) and the *charged* network
//! time accumulated from the simulated fabric. Keeping the two separate
//! also lets the benchmark harness report breakdowns such as Fig. 4's
//! cross-system cost percentages.

use std::time::Instant;

/// Tracks one task's real compute time plus charged virtual time.
#[derive(Debug, Clone)]
pub struct TaskTimer {
    start: Instant,
    charged_ns: u64,
    excluded_ns: u64,
}

impl Default for TaskTimer {
    fn default() -> Self {
        Self::start()
    }
}

impl TaskTimer {
    /// Starts timing now.
    pub fn start() -> Self {
        TaskTimer {
            start: Instant::now(),
            charged_ns: 0,
            excluded_ns: 0,
        }
    }

    /// Adds `ns` of simulated (network or modelled) latency.
    pub fn charge(&mut self, ns: u64) {
        self.charged_ns += ns;
    }

    /// Marks `ns` of already-elapsed real time as modelled elsewhere.
    ///
    /// Distribution drivers that *emulate* parallel work by running
    /// partitions sequentially measure each partition's real time, charge
    /// the maximum (the parallel latency), and exclude the sequential sum
    /// so it is not double-counted.
    pub fn exclude(&mut self, ns: u64) {
        self.excluded_ns += ns;
    }

    /// Merges the charges of a sub-task that ran *sequentially* within
    /// this task (e.g. a nested store lookup).
    pub fn absorb(&mut self, other: &TaskTimer) {
        self.charged_ns += other.charged_ns;
    }

    /// Simulated latency charged so far, in nanoseconds.
    pub fn charged_ns(&self) -> u64 {
        self.charged_ns
    }

    /// Real compute time elapsed so far, minus excluded spans, in
    /// nanoseconds.
    pub fn real_ns(&self) -> u64 {
        (self.start.elapsed().as_nanos() as u64).saturating_sub(self.excluded_ns)
    }

    /// Total task latency: real compute + charged virtual time.
    pub fn total_ns(&self) -> u64 {
        self.real_ns() + self.charged_ns
    }

    /// Total task latency in fractional milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns() as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut t = TaskTimer::start();
        t.charge(1_000);
        t.charge(500);
        assert_eq!(t.charged_ns(), 1_500);
        assert!(t.total_ns() >= 1_500);
    }

    #[test]
    fn absorb_merges_charges() {
        let mut outer = TaskTimer::start();
        let mut inner = TaskTimer::start();
        inner.charge(2_000);
        outer.absorb(&inner);
        assert_eq!(outer.charged_ns(), 2_000);
    }

    #[test]
    fn real_time_advances() {
        let t = TaskTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(t.real_ns() >= 1_000_000);
    }
}
