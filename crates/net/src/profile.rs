//! Network cost models.
//!
//! Per-operation latency charges calibrated from the hardware the paper
//! uses (§6.1): ConnectX-3 56 Gbps InfiniBand for the RDMA profile and an
//! Intel X540 10 GbE NIC for the non-RDMA (TCP) profile. The constants
//! follow widely published microbenchmarks of that generation of hardware
//! (e.g. the FaRM and Wukong papers): a small one-sided RDMA READ completes
//! in ≈ 2 µs, a two-sided RPC in ≈ 5 µs, while a kernel TCP round trip on
//! 10 GbE costs ≈ 30 µs.

/// Per-operation network latency model, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkProfile {
    /// Base latency of a one-sided READ of a small payload.
    pub one_sided_read_ns: u64,
    /// Base latency of a two-sided send+receive (one message).
    pub message_ns: u64,
    /// Additional cost per byte transferred (inverse bandwidth).
    pub per_byte_ns_x1000: u64,
    /// Whether one-sided verbs are available at all. Without RDMA every
    /// remote access degrades to a two-sided message pair (§6.2, Table 5).
    pub one_sided_available: bool,
}

impl NetworkProfile {
    /// 56 Gbps InfiniBand with RDMA verbs (the paper's default fabric).
    pub fn rdma() -> Self {
        NetworkProfile {
            one_sided_read_ns: 2_000,
            message_ns: 5_000,
            // 56 Gbps ≈ 7 GB/s ≈ 0.143 ns/byte.
            per_byte_ns_x1000: 143,
            one_sided_available: true,
        }
    }

    /// 10 GbE with kernel TCP (the paper's Non-RDMA configuration).
    pub fn tcp() -> Self {
        NetworkProfile {
            one_sided_read_ns: 30_000, // degrades to an RPC
            message_ns: 30_000,
            // 10 Gbps ≈ 1.25 GB/s ≈ 0.8 ns/byte.
            per_byte_ns_x1000: 800,
            one_sided_available: false,
        }
    }

    /// A zero-cost profile for unit tests that want determinism.
    pub fn free() -> Self {
        NetworkProfile {
            one_sided_read_ns: 0,
            message_ns: 0,
            per_byte_ns_x1000: 0,
            one_sided_available: true,
        }
    }

    /// Cost of a one-sided READ of `bytes` from a remote node.
    ///
    /// Without one-sided verbs this is the cost of a request/response
    /// message pair carrying the same payload.
    pub fn read_cost(&self, bytes: usize) -> u64 {
        let payload = self.byte_cost(bytes);
        if self.one_sided_available {
            self.one_sided_read_ns + payload
        } else {
            2 * self.message_ns + payload
        }
    }

    /// Cost of one two-sided message of `bytes`.
    pub fn message_cost(&self, bytes: usize) -> u64 {
        self.message_ns + self.byte_cost(bytes)
    }

    fn byte_cost(&self, bytes: usize) -> u64 {
        (bytes as u64 * self.per_byte_ns_x1000) / 1000
    }
}

impl Default for NetworkProfile {
    fn default() -> Self {
        Self::rdma()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdma_read_is_cheap() {
        let p = NetworkProfile::rdma();
        // A 64-byte read is dominated by the base latency.
        assert!(p.read_cost(64) < 3_000);
    }

    #[test]
    fn tcp_read_degrades_to_rpc() {
        let p = NetworkProfile::tcp();
        assert_eq!(p.read_cost(0), 2 * p.message_ns);
        assert!(p.read_cost(64) > NetworkProfile::rdma().read_cost(64) * 10);
    }

    #[test]
    fn payload_grows_cost_linearly() {
        let p = NetworkProfile::rdma();
        let small = p.read_cost(1_000);
        let large = p.read_cost(1_001_000);
        // 1 MB extra at 0.143 ns/byte ≈ 143 µs extra.
        assert!(large - small > 100_000);
        assert!(large - small < 200_000);
    }

    #[test]
    fn free_profile_charges_nothing() {
        let p = NetworkProfile::free();
        assert_eq!(p.read_cost(1 << 20), 0);
        assert_eq!(p.message_cost(1 << 20), 0);
    }
}
