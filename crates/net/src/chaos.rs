//! Seeded composed-fault chaos schedules.
//!
//! A [`ChaosSchedule`] composes every fault dimension the fabric and
//! engine understand — kills/restarts, lossy/dup links, delayed links,
//! slow-node (gray failure) multipliers, overload spikes (bounded
//! ingest), clock anomalies, and bit-flip corruption of in-flight
//! messages and checkpoints — into one randomized, reproducible
//! schedule on the simulated clock. `exp_chaos` crosses generated
//! schedules with the engine's feature matrix and gates convergence
//! against fault-free controls; on failure, [`shrink_schedule`] reduces
//! the event list to a minimal reproducer by greedy event removal (the
//! `tests/differential.rs` minimal-prefix shrinker pattern, applied to
//! an event set instead of an input prefix).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fabric::NodeId;
use crate::fault::FaultPlan;

/// One composed fault dimension, placed on the simulated clock.
/// Probabilities are stored per-mille so events stay `Eq`/hashable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Node `node` dies at `at_ms`.
    Kill {
        /// The victim node (never the entry node 0).
        node: u16,
        /// Simulated time of death.
        at_ms: u64,
    },
    /// Node `node` comes back (empty, pre-recovery) at `at_ms`.
    Restart {
        /// The restarted node.
        node: u16,
        /// Simulated time of the restart.
        at_ms: u64,
    },
    /// Every link drops/duplicates messages inside the window.
    LossyLinks {
        /// Drop probability, per mille.
        drop_pm: u32,
        /// Duplicate probability, per mille.
        dup_pm: u32,
        /// Window start (simulated ms, inclusive).
        from_ms: u64,
        /// Window end (simulated ms, exclusive).
        until_ms: u64,
    },
    /// Every link delays messages inside the window.
    DelayedLinks {
        /// Delay probability, per mille.
        delay_pm: u32,
        /// Extra charged nanoseconds per delayed message.
        delay_ns: u64,
        /// Window start (simulated ms, inclusive).
        from_ms: u64,
        /// Window end (simulated ms, exclusive).
        until_ms: u64,
    },
    /// Node `node` runs slow (gray failure) inside the window.
    SlowNode {
        /// The slowed node.
        node: u16,
        /// Slowdown multiplier ×100.
        factor_x100: u64,
        /// Window start (simulated ms, inclusive).
        from_ms: u64,
        /// Window end (simulated ms, exclusive).
        until_ms: u64,
    },
    /// The engine runs under a bounded ingest budget (tuples per batch),
    /// so bursts trip the PR 5 shed/catch-up state machine.
    OverloadSpike {
        /// `IngestBudget::tuples` value for the run.
        budget_tuples: usize,
    },
    /// One tuple arrives stamped far in the future (bad source clock),
    /// exercising the adaptor's gap-coalescing heartbeat path. Applied
    /// as a workload mutation — the fault-free control sees it too.
    ClockAnomaly,
    /// In-flight sub-batch payloads get one bit flipped.
    CorruptMessages {
        /// Corruption probability, per mille.
        pm: u32,
    },
    /// Captured checkpoint images get one bit flipped.
    CorruptCheckpoints {
        /// Corruption probability, per mille.
        pm: u32,
    },
}

/// A seeded, reproducible composition of fault dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSchedule {
    /// Seed the schedule was generated from; also seeds the compiled
    /// [`FaultPlan`]'s RNGs.
    pub seed: u64,
    /// Cluster size the schedule targets.
    pub nodes: u16,
    /// Simulated-time horizon the events were placed within.
    pub horizon_ms: u64,
    /// The composed events.
    pub events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// Generates a composed schedule for a `nodes`-node cluster over
    /// `horizon_ms` of simulated time. Each dimension is included with
    /// an independent probability; an empty draw falls back to a single
    /// mid-run kill so every schedule injects at least one fault.
    /// Deterministic per seed.
    pub fn generate(seed: u64, nodes: u16, horizon_ms: u64) -> Self {
        assert!(nodes >= 2, "chaos needs a remote node to fault");
        let h = horizon_ms.max(10);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let mut events = Vec::new();

        let window = |rng: &mut StdRng| {
            let from = rng.gen_range(h / 5..h / 2);
            let until = from + rng.gen_range(h / 5..h / 2);
            (from, until)
        };

        if rng.gen_bool(0.5) {
            let node = rng.gen_range(1..nodes);
            let at_ms = rng.gen_range(h / 3..2 * h / 3);
            events.push(ChaosEvent::Kill { node, at_ms });
            if rng.gen_bool(0.5) {
                let back = at_ms + rng.gen_range(h / 6..h / 3);
                events.push(ChaosEvent::Restart { node, at_ms: back });
            }
        }
        if rng.gen_bool(0.45) {
            let (from_ms, until_ms) = window(&mut rng);
            events.push(ChaosEvent::LossyLinks {
                drop_pm: rng.gen_range(30..250u32),
                dup_pm: rng.gen_range(0..200u32),
                from_ms,
                until_ms,
            });
        }
        if rng.gen_bool(0.35) {
            let (from_ms, until_ms) = window(&mut rng);
            events.push(ChaosEvent::DelayedLinks {
                delay_pm: rng.gen_range(100..400u32),
                delay_ns: rng.gen_range(50_000..500_000u64),
                from_ms,
                until_ms,
            });
        }
        if rng.gen_bool(0.35) {
            let (from_ms, until_ms) = window(&mut rng);
            events.push(ChaosEvent::SlowNode {
                node: rng.gen_range(0..nodes),
                factor_x100: rng.gen_range(150..400u64),
                from_ms,
                until_ms,
            });
        }
        if rng.gen_bool(0.4) {
            events.push(ChaosEvent::OverloadSpike {
                budget_tuples: rng.gen_range(8..48usize),
            });
        }
        if rng.gen_bool(0.3) {
            events.push(ChaosEvent::ClockAnomaly);
        }
        if rng.gen_bool(0.35) {
            events.push(ChaosEvent::CorruptMessages {
                pm: rng.gen_range(3..25u32),
            });
        }
        if rng.gen_bool(0.3) {
            events.push(ChaosEvent::CorruptCheckpoints {
                pm: rng.gen_range(400..1_000u32),
            });
        }

        if events.is_empty() {
            events.push(ChaosEvent::Kill {
                node: 1 + (seed % (nodes as u64 - 1).max(1)) as u16,
                at_ms: h / 2,
            });
        }

        ChaosSchedule {
            seed,
            nodes,
            horizon_ms: h,
            events,
        }
    }

    /// Compiles the fabric-visible dimensions into a [`FaultPlan`]
    /// seeded with the schedule's seed. `OverloadSpike` and
    /// `ClockAnomaly` are engine/workload knobs — read them via
    /// [`ChaosSchedule::ingest_budget`] / [`ChaosSchedule::clock_anomaly`].
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::seeded(self.seed);
        for e in &self.events {
            plan = match *e {
                ChaosEvent::Kill { node, at_ms } => plan.kill_at(NodeId(node), at_ms),
                ChaosEvent::Restart { node, at_ms } => plan.restart_at(NodeId(node), at_ms),
                ChaosEvent::LossyLinks {
                    drop_pm,
                    dup_pm,
                    from_ms,
                    until_ms,
                } => plan.lossy_during(
                    drop_pm as f64 / 1_000.0,
                    dup_pm as f64 / 1_000.0,
                    from_ms,
                    until_ms,
                ),
                ChaosEvent::DelayedLinks {
                    delay_pm,
                    delay_ns,
                    from_ms,
                    until_ms,
                } => plan.delayed_during(delay_pm as f64 / 1_000.0, delay_ns, from_ms, until_ms),
                ChaosEvent::SlowNode {
                    node,
                    factor_x100,
                    from_ms,
                    until_ms,
                } => plan.slow_node_during(NodeId(node), factor_x100, from_ms, until_ms),
                ChaosEvent::CorruptMessages { pm } => plan.corrupt_messages(pm as f64 / 1_000.0),
                ChaosEvent::CorruptCheckpoints { pm } => {
                    plan.corrupt_checkpoints(pm as f64 / 1_000.0)
                }
                ChaosEvent::OverloadSpike { .. } | ChaosEvent::ClockAnomaly => plan,
            };
        }
        plan
    }

    /// The ingest budget (tuples) if the schedule includes an overload
    /// spike.
    pub fn ingest_budget(&self) -> Option<usize> {
        self.events.iter().find_map(|e| match e {
            ChaosEvent::OverloadSpike { budget_tuples } => Some(*budget_tuples),
            _ => None,
        })
    }

    /// Whether the schedule includes a far-future clock anomaly.
    pub fn clock_anomaly(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, ChaosEvent::ClockAnomaly))
    }

    /// Whether the schedule injects any bit-flip corruption.
    pub fn corrupts(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e,
                ChaosEvent::CorruptMessages { .. } | ChaosEvent::CorruptCheckpoints { .. }
            )
        })
    }

    /// The schedule with event `i` removed — the shrinker's step. A
    /// removed `Kill` also removes its `Restart` (a restart without a
    /// kill is a no-op that would survive shrinking as noise).
    pub fn without(&self, i: usize) -> ChaosSchedule {
        let mut events = self.events.clone();
        let removed = events.remove(i);
        if let ChaosEvent::Kill { node, .. } = removed {
            events.retain(|e| !matches!(e, ChaosEvent::Restart { node: n, .. } if *n == node));
        }
        ChaosSchedule {
            events,
            ..self.clone()
        }
    }

    /// One line per event, for failure reports.
    pub fn describe(&self) -> String {
        let mut s = format!(
            "seed={} nodes={} horizon={}ms, {} event(s):\n",
            self.seed,
            self.nodes,
            self.horizon_ms,
            self.events.len()
        );
        for e in &self.events {
            s.push_str(&format!("  - {e:?}\n"));
        }
        s
    }
}

/// Greedily shrinks a failing schedule to a minimal reproducer:
/// repeatedly drop any single event whose removal preserves the failure
/// (`fails` returns `true`), until every remaining event is necessary.
/// The result is 1-minimal — removing any one event makes the failure
/// disappear — though not necessarily globally minimal.
pub fn shrink_schedule(
    mut schedule: ChaosSchedule,
    mut fails: impl FnMut(&ChaosSchedule) -> bool,
) -> ChaosSchedule {
    loop {
        let mut reduced = false;
        for i in 0..schedule.events.len() {
            let candidate = schedule.without(i);
            if candidate.events.len() < schedule.events.len() && fails(&candidate) {
                schedule = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return schedule;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = ChaosSchedule::generate(42, 4, 4_000);
        let b = ChaosSchedule::generate(42, 4, 4_000);
        assert_eq!(a, b);
        assert!(!a.events.is_empty());
        let c = ChaosSchedule::generate(43, 4, 4_000);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn every_dimension_appears_across_seeds() {
        let mut seen = [false; 9];
        for seed in 0..64 {
            for e in &ChaosSchedule::generate(seed, 4, 4_000).events {
                let i = match e {
                    ChaosEvent::Kill { .. } => 0,
                    ChaosEvent::Restart { .. } => 1,
                    ChaosEvent::LossyLinks { .. } => 2,
                    ChaosEvent::DelayedLinks { .. } => 3,
                    ChaosEvent::SlowNode { .. } => 4,
                    ChaosEvent::OverloadSpike { .. } => 5,
                    ChaosEvent::ClockAnomaly => 6,
                    ChaosEvent::CorruptMessages { .. } => 7,
                    ChaosEvent::CorruptCheckpoints { .. } => 8,
                };
                seen[i] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "64 seeds must cover every dimension, saw {seen:?}"
        );
    }

    #[test]
    fn compiled_plan_mirrors_events() {
        for seed in 0..32 {
            let s = ChaosSchedule::generate(seed, 4, 4_000);
            let plan = s.fault_plan();
            assert_eq!(plan.seed, seed);
            let kills = s
                .events
                .iter()
                .filter(|e| matches!(e, ChaosEvent::Kill { .. }))
                .count();
            let restarts = s
                .events
                .iter()
                .filter(|e| matches!(e, ChaosEvent::Restart { .. }))
                .count();
            assert_eq!(plan.schedule.len(), kills + restarts);
            let links = s
                .events
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        ChaosEvent::LossyLinks { .. } | ChaosEvent::DelayedLinks { .. }
                    )
                })
                .count();
            assert_eq!(plan.links.len(), links);
            let corrupts = s
                .events
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        ChaosEvent::CorruptMessages { .. } | ChaosEvent::CorruptCheckpoints { .. }
                    )
                })
                .count();
            assert_eq!(plan.corrupt.len(), corrupts);
            assert_eq!(s.corrupts(), corrupts > 0);
        }
    }

    #[test]
    fn shrinker_finds_minimal_event_set() {
        // Failure requires a Kill AND CorruptMessages together; every
        // other event is noise the shrinker must strip.
        let mut s = ChaosSchedule::generate(0, 4, 4_000);
        s.events = vec![
            ChaosEvent::SlowNode {
                node: 2,
                factor_x100: 200,
                from_ms: 100,
                until_ms: 900,
            },
            ChaosEvent::Kill {
                node: 1,
                at_ms: 500,
            },
            ChaosEvent::Restart {
                node: 1,
                at_ms: 900,
            },
            ChaosEvent::ClockAnomaly,
            ChaosEvent::CorruptMessages { pm: 10 },
            ChaosEvent::OverloadSpike { budget_tuples: 16 },
        ];
        let fails = |c: &ChaosSchedule| {
            c.events
                .iter()
                .any(|e| matches!(e, ChaosEvent::Kill { .. }))
                && c.events
                    .iter()
                    .any(|e| matches!(e, ChaosEvent::CorruptMessages { .. }))
        };
        assert!(fails(&s));
        let min = shrink_schedule(s, fails);
        assert_eq!(
            min.events,
            vec![
                ChaosEvent::Kill {
                    node: 1,
                    at_ms: 500
                },
                ChaosEvent::CorruptMessages { pm: 10 },
            ]
        );
    }

    #[test]
    fn without_kill_drops_orphaned_restart() {
        let mut s = ChaosSchedule::generate(0, 4, 4_000);
        s.events = vec![
            ChaosEvent::Kill {
                node: 1,
                at_ms: 500,
            },
            ChaosEvent::Restart {
                node: 1,
                at_ms: 900,
            },
        ];
        assert!(s.without(0).events.is_empty());
        assert_eq!(s.without(1).events.len(), 1);
    }
}
