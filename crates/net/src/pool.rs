//! Per-node worker pools with deterministic-by-construction results.
//!
//! Each simulated node owns a [`WorkerPool`]; the engine hands it the
//! independent tasks of one parallel region — continuous-query firings,
//! fork-join partitions, one-shot batches, per-node ingest application —
//! and gets the results back **in input order**, whatever interleaving
//! the OS scheduler produced. Determinism holds by construction: workers
//! claim task indices from a shared cursor, tag every result with its
//! index, and the pool reassembles the output by index, so the result
//! vector is byte-identical for any `workers` value (1, 2, 4, 8, …).
//!
//! Latency follows the same substitution discipline as the fabric: the
//! host running this simulation may have fewer cores than the modeled
//! node (possibly just one), so a region's *modeled* duration is not its
//! wall-clock but the makespan of a deterministic list schedule of the
//! measured per-task durations over `workers` lanes — exactly the
//! schedule the claim cursor produces. Both the serial sum and the
//! modeled duration land in the shared [`PoolCounters`], which is how
//! the worker-scaling benchmark reports ≥ real speedups on a single-core
//! container.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use wukong_obs::PoolCounters;

std::thread_local! {
    /// Set while the current thread is executing a pool task. A `map`
    /// call from such a thread is a *nested* region (e.g. a fork-join
    /// sub-query inside a pooled firing): it runs sequentially and stays
    /// out of the counters, so top-level regions alone account for pool
    /// time — no double-counted work, no thread explosion.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// Per-thread CPU time in nanoseconds. Task durations measured this way
/// stay honest when the pool is wider than the host (a single-core
/// container running a 4-lane region would otherwise charge every task
/// for the time it spent preempted). Falls back to 0 where the clock is
/// unavailable; callers then use wall time instead.
#[cfg(target_os = "linux")]
fn thread_cpu_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clock_id: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec { sec: 0, nsec: 0 };
    // SAFETY: `ts` outlives the call and the clock id is valid on Linux.
    if unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } == 0 {
        (ts.sec as u64).saturating_mul(1_000_000_000) + ts.nsec as u64
    } else {
        0
    }
}

#[cfg(not(target_os = "linux"))]
fn thread_cpu_ns() -> u64 {
    0
}

/// One lane's haul from a region: the lane index plus every
/// `(task index, result, duration ns)` it claimed.
type LaneResults<R> = (usize, Vec<(usize, R, u64)>);

/// Times one task: thread CPU time when available, wall time otherwise.
fn timed<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let cpu0 = thread_cpu_ns();
    let t0 = Instant::now();
    let r = f();
    let cpu1 = thread_cpu_ns();
    let ns = if cpu1 > 0 && cpu0 > 0 {
        cpu1.saturating_sub(cpu0)
    } else {
        t0.elapsed().as_nanos() as u64
    };
    (r, ns)
}

/// A fixed-width worker pool for one simulated node.
///
/// The pool spawns scoped threads per region rather than keeping
/// persistent workers: regions are short, tasks borrow engine state, and
/// scoped spawning keeps every borrow lifetime honest. Regions with one
/// task (or one worker) run inline with zero spawn overhead.
pub struct WorkerPool {
    workers: usize,
    counters: Arc<PoolCounters>,
}

impl WorkerPool {
    /// Creates a pool of `workers` lanes (clamped to ≥ 1) recording into
    /// `counters`.
    pub fn new(workers: usize, counters: Arc<PoolCounters>) -> Self {
        WorkerPool {
            workers: workers.max(1),
            counters,
        }
    }

    /// The configured lane count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every item, in parallel across the pool's lanes,
    /// returning the results in input order. `f` receives each item's
    /// index alongside the item.
    ///
    /// Tasks must be independent: the pool guarantees nothing about
    /// execution order, only about result order.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        // Nested region: the caller is itself a pool task. Run inline
        // without recording — the enclosing region's task durations
        // already cover this work.
        if IN_POOL_TASK.with(Cell::get) {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let region0 = Instant::now();
        let lanes = self.workers.min(n);
        if lanes <= 1 {
            let mut durations = Vec::with_capacity(n);
            IN_POOL_TASK.with(|c| c.set(true));
            let out = items
                .into_iter()
                .enumerate()
                .map(|(i, item)| {
                    let (r, ns) = timed(|| f(i, item));
                    durations.push(ns);
                    r
                })
                .collect();
            IN_POOL_TASK.with(|c| c.set(false));
            self.record(&durations, lanes, 0, region0.elapsed().as_nanos() as u64);
            return out;
        }

        // Shared claim cursor + per-task slots: a worker owns the task
        // whose index it claimed, and only that worker touches the slot.
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let worker = |lane: usize| {
            IN_POOL_TASK.with(|c| c.set(true));
            let mut local: Vec<(usize, R, u64)> = Vec::new();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let item = slots[i].lock().take().expect("each task is claimed once");
                let (r, ns) = timed(|| f(i, item));
                local.push((i, r, ns));
            }
            IN_POOL_TASK.with(|c| c.set(false));
            (lane, local)
        };

        let collected: Vec<LaneResults<R>> = std::thread::scope(|s| {
            let handles: Vec<_> = (1..lanes)
                .map(|lane| s.spawn(move || worker(lane)))
                .collect();
            // The calling thread is lane 0 — no idle coordinator.
            let mut all = vec![worker(0)];
            for h in handles {
                all.push(h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
            }
            all
        });

        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut durations = vec![0u64; n];
        let mut steals = 0u64;
        for (lane, local) in collected {
            for (i, r, ns) in local {
                if i % lanes != lane {
                    steals += 1;
                }
                durations[i] = ns;
                out[i] = Some(r);
            }
        }
        self.record(
            &durations,
            lanes,
            steals,
            region0.elapsed().as_nanos() as u64,
        );
        out.into_iter()
            .map(|r| r.expect("every task index was claimed"))
            .collect()
    }

    /// Records one region: serial cost is the duration sum, modeled cost
    /// is the makespan of a list schedule over `lanes` (each task, in
    /// claim order, goes to the earliest-free lane — exactly what the
    /// shared claim cursor does on real hardware), and `wall_ns` is the
    /// region's actual elapsed time (spawn overhead and host contention
    /// included — what a modeled run substitutes away).
    fn record(&self, durations: &[u64], lanes: usize, steals: u64, wall_ns: u64) {
        let serial: u64 = durations.iter().sum();
        let mut lane_ns = vec![0u64; lanes.max(1)];
        for &ns in durations {
            let next = lane_ns
                .iter()
                .enumerate()
                .min_by_key(|(_, free_at)| **free_at)
                .map(|(i, _)| i)
                .expect("at least one lane");
            lane_ns[next] += ns;
        }
        let modeled = lane_ns.into_iter().max().unwrap_or(0);
        self.counters.record_region(
            durations.len() as u64,
            steals,
            durations.len() as u64,
            serial,
            modeled,
            wall_ns,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(workers: usize) -> (WorkerPool, Arc<PoolCounters>) {
        let counters = Arc::new(PoolCounters::default());
        (WorkerPool::new(workers, Arc::clone(&counters)), counters)
    }

    #[test]
    fn results_keep_input_order_at_any_width() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 4, 8] {
            let (p, _) = pool(workers);
            assert_eq!(
                p.map(items.clone(), |_, x| x * x),
                expect,
                "{workers} workers"
            );
        }
    }

    #[test]
    fn empty_and_singleton_regions_run_inline() {
        let (p, c) = pool(8);
        let empty: Vec<u64> = Vec::new();
        assert!(p.map(empty, |_, x: u64| x).is_empty());
        assert_eq!(c.snapshot().regions, 0, "empty regions are not recorded");
        assert_eq!(p.map(vec![7u64], |i, x| (i, x)), vec![(0, 7)]);
        let snap = c.snapshot();
        assert_eq!(snap.regions, 1);
        assert_eq!(snap.tasks, 1);
        assert_eq!(snap.steals, 0, "inline regions cannot steal");
    }

    #[test]
    fn counters_model_list_schedule_makespan() {
        let (p, c) = pool(4);
        p.map((0..16u64).collect(), |_, x| x + 1);
        let snap = c.snapshot();
        assert_eq!(snap.tasks, 16);
        assert_eq!(snap.regions, 1);
        assert_eq!(snap.max_queue_depth, 16);
        assert!(snap.serial_busy_ns >= snap.modeled_busy_ns);
        // 16 uniform-ish tasks over 4 lanes: the makespan is well under
        // the serial sum.
        assert!(snap.modeled_busy_ns < snap.serial_busy_ns || snap.serial_busy_ns == 0);
    }

    #[test]
    fn index_is_passed_through() {
        let (p, _) = pool(4);
        let out = p.map(vec![10u64, 20, 30, 40, 50], |i, x| (i as u64) * 100 + x);
        assert_eq!(out, vec![10, 120, 230, 340, 450]);
    }

    #[test]
    fn worker_panics_propagate() {
        let (p, _) = pool(4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.map((0..8u64).collect(), |_, x| {
                assert!(x != 5, "boom");
                x
            })
        }));
        assert!(r.is_err());
    }

    #[test]
    fn zero_width_pool_clamps_to_one() {
        let (p, _) = pool(0);
        assert_eq!(p.workers(), 1);
        assert_eq!(p.map(vec![1u64, 2], |_, x| x), vec![1, 2]);
    }
}
