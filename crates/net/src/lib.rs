#![warn(missing_docs)]
//! Simulated RDMA-capable cluster fabric for Wukong+S.
//!
//! The paper evaluates on an 8-node cluster with ConnectX-3 56 Gbps
//! InfiniBand NICs and falls back to 10 GbE without RDMA (§6.1, Table 5).
//! This crate substitutes that hardware with an in-process simulation:
//!
//! - Every *node* is a shard of state inside one OS process, so a remote
//!   one-sided RDMA READ is emulated by reading the remote shard's memory
//!   directly and **charging** the calibrated latency of the verb to the
//!   calling task's [`TaskTimer`].
//! - Two-sided messaging (used by fork-join execution) is emulated with
//!   channels plus a (higher) per-message charge.
//! - A [`NetworkProfile`] switches between the RDMA cost model and a
//!   TCP-over-10GbE model, which is how the Table 5 experiment (RDMA vs
//!   Non-RDMA) is reproduced.
//!
//! The substitution preserves what the paper's evaluation actually
//! measures: *how many* network operations of each kind a design incurs
//! and what each costs — e.g. the stream index saving one of the two RDMA
//! reads per remote lookup (§5), or fork-join synchronisation charging a
//! round of messages per hop (Table 5's 1.8-3.5× slowdown).

//!
//! The [`fault`] module makes the simulation misbehave on demand: a
//! seeded [`FaultPlan`] can kill/restart nodes at scheduled times, make
//! links drop/duplicate/delay messages, and fail one-sided reads against
//! dead nodes — deterministically per seed, so failure drills are
//! reproducible.

pub mod chaos;
pub mod clock;
pub mod fabric;
pub mod fault;
pub mod message;
pub mod metrics;
pub mod pool;
pub mod profile;

pub use chaos::{shrink_schedule, ChaosEvent, ChaosSchedule};
pub use clock::TaskTimer;
pub use fabric::{Endpoint, Fabric, NodeDown, NodeId};
pub use fault::{
    CorruptFault, CorruptTarget, Delivery, FaultEvent, FaultPlan, FaultState, LinkFault,
    ScheduledEvent,
};
pub use message::Envelope;
pub use metrics::{FabricMetrics, MetricsSnapshot};
pub use pool::WorkerPool;
pub use profile::NetworkProfile;
