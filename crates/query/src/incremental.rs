//! Incremental (delta-maintenance) evaluation of continuous queries.
//!
//! A sliding window with high overlap re-derives almost all of its
//! binding rows on every firing: a window of range `R` sliding by step
//! `S` shares a `1 - S/R` fraction of its tuples with its predecessor.
//! The recompute path pays the full scan/join every time regardless.
//! This module maintains each registered query's result *between*
//! firings instead:
//!
//! * [`DeltaState`] materializes the previous firing's full-width binding
//!   rows, each carrying a precomputed **death timestamp** — the first
//!   window end at which the row stops being derivable ([`TaggedTable`]).
//! * A firing over overlapping windows first **retracts** rows whose
//!   death is not past the new window end (a contributing edge expired),
//!   then derives only the rows that touch the **inserted** slice
//!   `(prev_end, new_end]` of at least one stream.
//!
//! The delta derivation telescopes over plan steps: with per-step edge
//! slices `Nᵢ = Sᵢ ⊎ Dᵢ` (survivors ⊎ delta), multilinearity of the
//! step chain gives
//!
//! ```text
//! Q(N₁…Nₖ) = Q(S₁…Sₖ) + Σᵢ Q(N₁…Nᵢ₋₁, Dᵢ, Sᵢ₊₁…Sₖ)
//! ```
//!
//! where `Q(S₁…Sₖ)` is exactly the retained state. Every step mode
//! (subject/object expansion, predicate index scan) is *linear* in its
//! slice's edge multiset — one output row per edge occurrence — which is
//! what makes the identity exact under SPARQL bag semantics. The work a
//! maintained firing materializes is therefore proportional to the
//! *delta*, not the window: `d(1 + s)` of the full derivation at overlap
//! `s = 1 - d`, which is what `exp_incremental` gates on.
//!
//! Not every query is incrementalizable (see [`incrementalizable`]):
//! `OPTIONAL` / `UNION` / `NOT EXISTS` are non-monotone or re-plan per
//! row, and stored-graph patterns read state that mutates between
//! firings as absorbed tuples land. The engine falls back to recompute
//! for those. Aggregates, `GROUP BY`, `DISTINCT`, `ORDER BY` and `LIMIT`
//! need no special casing: state add/remove happens at the row-multiset
//! level and the shared [`finalize`] recomputes the folds over the
//! canonical row order at emit time (exact for floats, where a
//! subtract-combiner would not be).

use crate::ast::{GraphName, Query};
use crate::bindings::{BindingTable, UNBOUND};
use crate::exec::{ExecContext, LiteralResolver, TimedGraphAccess, WindowInstance};
use crate::executor::{concrete, finalize, ResultSet};
use crate::plan::{Plan, Step, StepMode};
use wukong_net::TaskTimer;
use wukong_obs::{Stage, StageTrace};
use wukong_rdf::{Dir, Key, Timestamp, Vid};

/// Death of a row no stream edge has contributed to yet (never expires).
pub const NO_DEATH: Timestamp = Timestamp::MAX;

/// Materialized binding rows with expiry provenance, stored flat.
///
/// Layout mirrors [`BindingTable`]: `vals` is `width`-strided variable
/// bindings ([`UNBOUND`] for never-bound slots); `death[i]` is row `i`'s
/// death timestamp, folded in during derivation as
/// `min` over contributing edges of `edge ts + RANGE(edge's stream)`.
/// Every window of a firing ends at the common fire time `hi`
/// ([`WindowInstance`]s from one `WindowState::fire`), so a row is
/// derivable from windows ending at `hi` iff `death > hi` — retraction
/// is one compacting sweep over a flat timestamp column, no per-stream
/// re-checks. Flat strides matter here: delta derivation appends
/// thousands of short-lived rows per firing, and heap allocations per
/// row (the naive `Vec<Vec<_>>` shape) cost more than the join itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaggedTable {
    width: usize,
    vals: Vec<Vid>,
    death: Vec<Timestamp>,
}

impl TaggedTable {
    fn empty(width: usize) -> Self {
        TaggedTable {
            width: width.max(1),
            vals: Vec::new(),
            death: Vec::new(),
        }
    }

    /// A single all-unbound, never-expiring seed row.
    fn seed(width: usize) -> Self {
        let mut t = Self::empty(width);
        t.vals.extend(std::iter::repeat_n(UNBOUND, t.width));
        t.death.push(NO_DEATH);
        t
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.death.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.death.is_empty()
    }

    /// The `i`-th row's variable bindings.
    pub fn vals(&self, i: usize) -> &[Vid] {
        &self.vals[i * self.width..(i + 1) * self.width]
    }

    /// The `i`-th row's death timestamp: the first window end it is no
    /// longer derivable at.
    pub fn death(&self, i: usize) -> Timestamp {
        self.death[i]
    }

    /// Appends row `i` of `src` with optional rebinding of one variable
    /// slot, lowering the death to `expiry` (the consumed edge's
    /// `ts + RANGE`); returns the new row's index. The only per-row cost
    /// is one `extend_from_slice` and one timestamp push.
    fn push_derived(
        &mut self,
        src: &TaggedTable,
        i: usize,
        bind: Option<(u8, Vid)>,
        expiry: Timestamp,
    ) -> usize {
        let vbase = self.vals.len();
        self.vals.extend_from_slice(src.vals(i));
        if let Some((v, val)) = bind {
            self.vals[vbase + v as usize] = val;
        }
        self.death.push(src.death[i].min(expiry));
        vbase / self.width
    }

    /// Drops the last row (a derivation that failed a post-bind check).
    fn pop(&mut self) {
        self.vals.truncate(self.vals.len() - self.width);
        self.death.pop();
    }

    /// In-place compaction keeping rows accepted by `keep(vals, death)`.
    fn retain(&mut self, mut keep: impl FnMut(&[Vid], Timestamp) -> bool) {
        let mut w = 0;
        for i in 0..self.len() {
            if keep(
                &self.vals[i * self.width..(i + 1) * self.width],
                self.death[i],
            ) {
                if w != i {
                    self.vals
                        .copy_within(i * self.width..(i + 1) * self.width, w * self.width);
                    self.death[w] = self.death[i];
                }
                w += 1;
            }
        }
        self.vals.truncate(w * self.width);
        self.death.truncate(w);
    }

    /// Appends every row of `other` accepted by `keep`; returns how many.
    fn absorb(&mut self, other: &TaggedTable, mut keep: impl FnMut(&[Vid]) -> bool) -> u64 {
        debug_assert_eq!(self.width, other.width);
        let mut n = 0;
        for i in 0..other.len() {
            if keep(other.vals(i)) {
                self.vals.extend_from_slice(other.vals(i));
                self.death.push(other.death[i]);
                n += 1;
            }
        }
        n
    }
}

/// The delta-maintenance state of one registered query.
#[derive(Debug, Clone, Default)]
pub struct DeltaState {
    /// Window instances of the firing the state reflects.
    windows: Vec<WindowInstance>,
    /// Materialized post-filter binding rows with death timestamps.
    rows: TaggedTable,
}

impl DeltaState {
    /// The materialized rows.
    pub fn rows(&self) -> &TaggedTable {
        &self.rows
    }

    /// The windows the state reflects.
    pub fn windows(&self) -> &[WindowInstance] {
        &self.windows
    }
}

/// What one maintained firing did, for the observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// State rows carried over from the previous firing unchanged.
    pub rows_reused: u64,
    /// Rows newly derived (from the delta slices, or all rows on rebuild).
    pub rows_recomputed: u64,
    /// State rows retracted because a contributing edge expired.
    pub rows_retracted: u64,
    /// Whether this firing rebuilt state from scratch (first firing,
    /// post-recovery, or a non-monotone window movement).
    pub rebuilt: bool,
}

/// Whether `q` can run under delta maintenance.
///
/// Monotone conjunctive stream queries qualify: every pattern reads a
/// stream window, joined by plain steps. Excluded (the engine recomputes
/// instead):
///
/// * `OPTIONAL` / `UNION` / `NOT EXISTS` — non-monotone (an insert can
///   *remove* an answer) or re-planned per row;
/// * stored-graph patterns — the stored graph itself grows between
///   firings as timeless stream tuples are absorbed, so retained rows
///   could silently miss new stored matches;
/// * pattern-free queries — nothing to maintain.
///
/// Projection, filters, aggregates, `GROUP BY`, `DISTINCT`, `ORDER BY`,
/// `LIMIT` and `CONSTRUCT` templates are all fine: they apply to the
/// maintained row multiset at emit time.
pub fn incrementalizable(q: &Query) -> bool {
    !q.patterns.is_empty()
        && q.optional.is_empty()
        && q.union_groups.is_empty()
        && q.not_exists.is_empty()
        && q.patterns
            .iter()
            .all(|p| matches!(p.graph, GraphName::Stream(_)))
}

fn stream_of(step: &Step) -> usize {
    match step.pattern.graph {
        GraphName::Stream(g) => g,
        GraphName::Stored => unreachable!("incremental plans read streams only"),
    }
}

/// `base` with stream `g`'s window overridden to `[lo, hi]`.
///
/// Slices are per *step*, not per stream: in one telescoped term, two
/// steps reading the same stream can need different slices (full window
/// before the delta step, survivors after it).
fn step_ctx(base: &ExecContext, g: usize, lo: Timestamp, hi: Timestamp) -> ExecContext {
    let mut ctx = base.clone();
    ctx.windows[g].lo = lo;
    ctx.windows[g].hi = hi;
    ctx
}

/// Within-step scan memo.
///
/// Join fan-in makes many input rows share one anchor vertex, and the
/// slice context is fixed for a whole step, so same-key scans repeat
/// verbatim. Fixed per-scan costs — lock acquisition, batch-list
/// bisection, remote read charging — dominate small delta slices, so
/// memoizing turns per-*row* scan pricing into per-*key* pricing. The
/// immutable firing snapshot is what makes replaying a cached result
/// sound; bag multiplicities are preserved because results are replayed
/// per input row, never deduplicated.
#[derive(Default)]
struct ScanMemo {
    map: std::collections::HashMap<Key, (usize, usize)>,
    arena: Vec<(Vid, Timestamp)>,
}

impl ScanMemo {
    fn scan(
        &mut self,
        key: Key,
        src: crate::exec::PatternSource,
        ctx: &ExecContext,
        access: &impl TimedGraphAccess,
        timer: &mut TaskTimer,
    ) -> std::ops::Range<usize> {
        if let Some(&(s, e)) = self.map.get(&key) {
            return s..e;
        }
        let s = self.arena.len();
        access.neighbors_timed(key, src, ctx, timer, &mut self.arena);
        let e = self.arena.len();
        self.map.insert(key, (s, e));
        s..e
    }
}

/// One plan step over death-carrying rows — mirrors
/// [`crate::executor::execute_step`], with every derivation consuming
/// exactly one `(edge, timestamp)` occurrence so bag multiplicities and
/// death timestamps stay exact. `range` is the step's stream's RANGE:
/// an edge at `ts` stops being visible once the window end passes
/// `ts + range`, so that is the expiry it imposes on derived rows.
fn execute_step_tagged(
    step: &Step,
    input: &TaggedTable,
    ctx: &ExecContext,
    range: Timestamp,
    access: &impl TimedGraphAccess,
    timer: &mut TaskTimer,
) -> TaggedTable {
    let mut out = TaggedTable::empty(input.width);
    let p = &step.pattern;
    let mut memo = ScanMemo::default();

    match step.mode {
        StepMode::FromSubject | StepMode::FromObject => {
            let (anchor_term, target_term, dir) = if step.mode == StepMode::FromSubject {
                (p.s, p.o, Dir::Out)
            } else {
                (p.o, p.s, Dir::In)
            };
            for i in 0..input.len() {
                let anchor = match concrete(anchor_term, input.vals(i)) {
                    Some(v) => v,
                    None => continue,
                };
                let key = Key::new(anchor, p.p, dir);
                let r = memo.scan(key, p.graph, ctx, access, timer);
                match concrete(target_term, input.vals(i)) {
                    Some(t) => {
                        for k in r {
                            let (n, ts) = memo.arena[k];
                            if n == t {
                                out.push_derived(input, i, None, ts.saturating_add(range));
                            }
                        }
                    }
                    None => {
                        let var = target_term.var().expect("non-concrete term is a var");
                        for k in r {
                            let (n, ts) = memo.arena[k];
                            out.push_derived(input, i, Some((var, n)), ts.saturating_add(range));
                        }
                    }
                }
            }
        }
        StepMode::IndexScan => {
            // Subject enumeration is untimed: a subject's membership in
            // the slice is implied by its expansion edge, whose timestamp
            // is the one that matters for expiry.
            let mut subjects: Vec<Vid> = Vec::new();
            access.neighbors(
                Key::index(p.p, Dir::Out),
                p.graph,
                ctx,
                timer,
                &mut subjects,
            );
            subjects.sort_unstable();
            subjects.dedup();
            let s_var = p.s.var();
            for i in 0..input.len() {
                for &s in &subjects {
                    if let Some(bound_s) = concrete(p.s, input.vals(i)) {
                        if bound_s != s {
                            continue;
                        }
                    }
                    let key = Key::new(s, p.p, Dir::Out);
                    let r = memo.scan(key, p.graph, ctx, access, timer);
                    match concrete(p.o, input.vals(i)) {
                        Some(t) => {
                            for k in r {
                                let (n, ts) = memo.arena[k];
                                if n != t {
                                    continue;
                                }
                                let bind = match s_var {
                                    Some(v) if input.vals(i)[v as usize] == UNBOUND => Some((v, s)),
                                    _ => None,
                                };
                                out.push_derived(input, i, bind, ts.saturating_add(range));
                            }
                        }
                        None => {
                            let o_var = p.o.var().expect("non-concrete term is a var");
                            for k in r {
                                let (n, ts) = memo.arena[k];
                                let ni = out.push_derived(input, i, None, ts.saturating_add(range));
                                let nr = &mut out.vals[ni * out.width..(ni + 1) * out.width];
                                if let Some(v) = s_var {
                                    if nr[v as usize] == UNBOUND {
                                        nr[v as usize] = s;
                                    }
                                }
                                // Repeated variable (`?X p ?X`): both
                                // positions must agree.
                                if s_var == Some(o_var) && nr[o_var as usize] != n {
                                    out.pop();
                                    continue;
                                }
                                nr[o_var as usize] = n;
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Runs the full step chain with per-step window slices chosen by
/// `slice_for(step_index, stream)`. `ranges[g]` is stream `g`'s
/// registered RANGE (not the possibly-clamped instance span — early
/// windows pin `lo` at the stream epoch, which must not shorten expiry).
fn run_term(
    query: &Query,
    plan: &Plan,
    base: &ExecContext,
    ranges: &[Timestamp],
    slice_for: impl Fn(usize, usize) -> (Timestamp, Timestamp),
    access: &impl TimedGraphAccess,
    timer: &mut TaskTimer,
) -> TaggedTable {
    let width = (query.var_count as usize).max(1);
    let mut rows = TaggedTable::seed(width);
    for (j, step) in plan.steps.iter().enumerate() {
        let g = stream_of(step);
        let (lo, hi) = slice_for(j, g);
        if lo > hi {
            return TaggedTable::empty(width);
        }
        let sctx = step_ctx(base, g, lo, hi);
        rows = execute_step_tagged(step, &rows, &sctx, ranges[g], access, timer);
        if rows.is_empty() {
            break;
        }
    }
    rows
}

/// All filters, with the shared [`finalize`] "unapplied" semantics: a
/// row passes iff the filtered variable is bound, numeric, and accepted.
/// Filters are per-row predicates, so applying them once to every fresh
/// row (state rows already passed) commutes with the telescoping.
fn passes_filters(query: &Query, lit: &impl LiteralResolver, vals: &[Vid]) -> bool {
    query.filters.iter().all(|f| {
        let v = vals[f.var as usize];
        v != UNBOUND && lit.numeric(v).map(|x| f.accepts(x)).unwrap_or(false)
    })
}

/// One maintained firing: retract expired state, derive the delta,
/// project the retained multiset.
///
/// `ctx.windows` holds the *new* window instances — all ending at the
/// common fire time, as produced by one `WindowState::fire`. `ranges[g]`
/// is stream `g`'s registered RANGE. `state` is rebuilt from scratch
/// when absent (first firing, post-recovery) or when any window moved
/// backwards; otherwise the firing materializes O(delta) rows instead of
/// O(window). The produced [`ResultSet`] is byte-identical to the
/// recompute path's: both funnel the same row multiset through
/// [`finalize`], which canonicalizes row order before projecting.
///
/// Stage attribution: retraction lands in [`Stage::StateRetract`], delta
/// derivation (and rebuild) in [`Stage::DeltaApply`], projection in
/// [`Stage::ResultEmit`] — mirroring the recompute path's
/// `PatternMatch`/`ResultEmit` split.
#[allow(clippy::too_many_arguments)]
pub fn maintain(
    query: &Query,
    plan: &Plan,
    state: &mut Option<DeltaState>,
    ctx: &ExecContext,
    ranges: &[Timestamp],
    access: &impl TimedGraphAccess,
    lit: &impl LiteralResolver,
    timer: &mut TaskTimer,
    trace: &mut StageTrace,
) -> (ResultSet, DeltaStats) {
    let mut stats = DeltaStats::default();
    let t0 = timer.total_ns();

    let rebuild = match state {
        Some(st) => {
            st.windows.len() != ctx.windows.len()
                || st
                    .windows
                    .iter()
                    .zip(&ctx.windows)
                    .any(|(o, n)| o.stream != n.stream || n.lo < o.lo || n.hi < o.hi)
        }
        None => true,
    };

    if rebuild {
        let _delta_span = wukong_obs::trace::scoped_span(Stage::DeltaApply);
        let mut rows = run_term(
            query,
            plan,
            ctx,
            ranges,
            |_, g| (ctx.windows[g].lo, ctx.windows[g].hi),
            access,
            timer,
        );
        rows.retain(|vals, _| passes_filters(query, lit, vals));
        stats.rebuilt = true;
        stats.rows_recomputed = rows.len() as u64;
        *state = Some(DeltaState {
            windows: ctx.windows.clone(),
            rows,
        });
        trace.add(Stage::DeltaApply, timer.total_ns().saturating_sub(t0));
    } else {
        let st = state.as_mut().expect("non-rebuild has state");
        let prev = st.windows.clone();

        let retract_span = wukong_obs::trace::scoped_span(Stage::StateRetract);
        // Retract: a row survives iff its death is past the common fire
        // time — every contributing edge is still inside the new window
        // of its stream.
        let hi = ctx.windows.iter().map(|w| w.hi).max().expect("windowed");
        debug_assert!(
            ctx.windows.iter().all(|w| w.hi == hi),
            "maintained firings share one fire time across windows"
        );
        let before = st.rows.len();
        st.rows.retain(|_, death| death > hi);
        stats.rows_retracted = (before - st.rows.len()) as u64;
        stats.rows_reused = st.rows.len() as u64;
        let retracted_at = timer.total_ns();
        drop(retract_span);
        trace.add(Stage::StateRetract, retracted_at.saturating_sub(t0));
        let _delta_span = wukong_obs::trace::scoped_span(Stage::DeltaApply);

        // Per-stream slices of the new window: survivors S = old ∩ new,
        // delta D = the inserted suffix. `lo > hi` encodes empty.
        let full: Vec<(Timestamp, Timestamp)> = ctx.windows.iter().map(|w| (w.lo, w.hi)).collect();
        let surv: Vec<(Timestamp, Timestamp)> = ctx
            .windows
            .iter()
            .zip(&prev)
            .map(|(n, o)| (n.lo, o.hi.min(n.hi)))
            .collect();
        let delta: Vec<(Timestamp, Timestamp)> = ctx
            .windows
            .iter()
            .zip(&prev)
            .map(|(n, o)| ((o.hi + 1).max(n.lo), n.hi))
            .collect();

        // Telescoped delta terms: term i derives every new row whose
        // *first* delta-slice edge (in plan-step order) is at step i.
        // Fresh rows absorb straight into state — no intermediate copy.
        for i in 0..plan.steps.len() {
            let gi = stream_of(&plan.steps[i]);
            let (dlo, dhi) = delta[gi];
            if dlo > dhi {
                continue;
            }
            let fresh = run_term(
                query,
                plan,
                ctx,
                ranges,
                |j, g| match j.cmp(&i) {
                    std::cmp::Ordering::Less => full[g],
                    std::cmp::Ordering::Equal => delta[g],
                    std::cmp::Ordering::Greater => surv[g],
                },
                access,
                timer,
            );
            stats.rows_recomputed += st
                .rows
                .absorb(&fresh, |vals| passes_filters(query, lit, vals));
        }
        st.windows = ctx.windows.clone();
        trace.add(
            Stage::DeltaApply,
            timer.total_ns().saturating_sub(retracted_at),
        );
    }

    let st = state.as_ref().expect("state just written");
    let emit_at = timer.total_ns();
    let emit_span = wukong_obs::trace::scoped_span(Stage::ResultEmit);
    let table = BindingTable::from_flat(query.var_count as usize, st.rows.vals.clone());
    let applied = vec![true; query.filters.len()];
    let out = finalize(query, table, &applied, lit);
    drop(emit_span);
    trace.add(Stage::ResultEmit, timer.total_ns().saturating_sub(emit_at));
    (out, stats)
}

/// Clears optional state — the engine calls this on recovery so a
/// restored query rebuilds rather than trusting pre-crash provenance.
pub fn reset(state: &mut Option<DeltaState>) {
    *state = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{GraphAccess, PatternSource, StringLiteralResolver};
    use crate::executor::execute;
    use crate::parse_query;
    use crate::planner::plan_query;
    use std::collections::HashMap;
    use wukong_rdf::{Pid, StringServer};
    use wukong_store::SnapshotId;

    /// In-memory timed stream edges: window filtering over explicit
    /// per-edge timestamps, plus the index-vertex entries IndexScan needs.
    #[derive(Default)]
    struct ToyStreams {
        edges: Vec<HashMap<Key, Vec<(Vid, Timestamp)>>>,
    }

    impl ToyStreams {
        fn new(n: usize) -> Self {
            ToyStreams {
                edges: (0..n).map(|_| HashMap::new()).collect(),
            }
        }

        fn add(&mut self, g: usize, s: Vid, p: Pid, o: Vid, ts: Timestamp) {
            let m = &mut self.edges[g];
            m.entry(Key::new(s, p, Dir::Out)).or_default().push((o, ts));
            m.entry(Key::new(o, p, Dir::In)).or_default().push((s, ts));
            m.entry(Key::index(p, Dir::Out)).or_default().push((s, ts));
        }

        fn in_window<'a>(
            &'a self,
            key: Key,
            src: PatternSource,
            ctx: &ExecContext,
        ) -> impl Iterator<Item = (Vid, Timestamp)> + 'a {
            let (g, w) = match src {
                GraphName::Stream(g) => (g, ctx.window(g)),
                GraphName::Stored => unreachable!("stream-only tests"),
            };
            self.edges[g]
                .get(&key)
                .map(|v| v.as_slice())
                .unwrap_or(&[])
                .iter()
                .copied()
                .filter(move |&(_, ts)| ts >= w.lo && ts <= w.hi)
        }
    }

    impl GraphAccess for ToyStreams {
        fn neighbors(
            &self,
            key: Key,
            src: PatternSource,
            ctx: &ExecContext,
            _timer: &mut TaskTimer,
            out: &mut Vec<Vid>,
        ) {
            out.extend(self.in_window(key, src, ctx).map(|(n, _)| n));
        }

        fn estimate(&self, key: Key, src: PatternSource, ctx: &ExecContext) -> usize {
            self.in_window(key, src, ctx).count()
        }
    }

    impl TimedGraphAccess for ToyStreams {
        fn neighbors_timed(
            &self,
            key: Key,
            src: PatternSource,
            ctx: &ExecContext,
            _timer: &mut TaskTimer,
            out: &mut Vec<(Vid, Timestamp)>,
        ) {
            out.extend(self.in_window(key, src, ctx));
        }
    }

    fn ctx_for(sids: &[u16], lo: Timestamp, hi: Timestamp) -> ExecContext {
        ExecContext {
            sn: SnapshotId::BASE,
            windows: sids
                .iter()
                .map(|&s| WindowInstance {
                    stream: wukong_rdf::StreamId(s),
                    lo,
                    hi,
                })
                .collect(),
        }
    }

    /// Seeds a join-heavy two-predicate workload on one stream.
    fn workload(ss: &StringServer, toy: &mut ToyStreams, horizon: u64) {
        let po = ss.intern_predicate("po").unwrap();
        let li = ss.intern_predicate("li").unwrap();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for ts in (100..=horizon).step_by(100) {
            for _ in 0..6 {
                let u = ss.intern_entity(&format!("u{}", rng() % 8)).unwrap();
                let t = ss.intern_entity(&format!("t{}", rng() % 5)).unwrap();
                toy.add(0, u, po, t, ts);
            }
            for _ in 0..6 {
                let v = ss.intern_entity(&format!("v{}", rng() % 8)).unwrap();
                let t = ss.intern_entity(&format!("t{}", rng() % 5)).unwrap();
                toy.add(0, v, li, t, ts);
            }
        }
    }

    const Q: &str = "REGISTER QUERY QJ SELECT ?X ?Y ?Z \
        FROM S [RANGE 10s STEP 1s] \
        WHERE { GRAPH S { ?X po ?Z } GRAPH S { ?Y li ?Z } }";

    /// Slides a window over the workload in every overlap regime
    /// (tumbling, 50/75% overlap, disjoint) and checks each maintained
    /// firing equals a from-scratch recompute of the same window.
    #[test]
    fn maintained_firings_equal_recompute_at_every_overlap() {
        for (range, step) in [(100u64, 100u64), (200, 100), (400, 100), (100, 300)] {
            let ss = StringServer::new();
            let mut toy = ToyStreams::new(1);
            workload(&ss, &mut toy, 2_000);
            let q = parse_query(&ss, Q).unwrap();
            let lit = StringLiteralResolver(&ss);

            let plan_ctx = ctx_for(&[0], 1, 2_000);
            let plan = plan_query(&q, &toy, &plan_ctx);
            let mut state: Option<DeltaState> = None;
            let mut nonempty = 0;
            let mut hi = range;
            while hi <= 2_000 {
                let ctx = ctx_for(&[0], hi.saturating_sub(range) + 1, hi);
                let mut timer = TaskTimer::start();
                let mut trace = StageTrace::new();
                let (inc, _) = maintain(
                    &q,
                    &plan,
                    &mut state,
                    &ctx,
                    &[range],
                    &toy,
                    &lit,
                    &mut timer,
                    &mut trace,
                );
                let full = execute(&q, &plan, &ctx, &toy, &lit, &mut timer);
                assert_eq!(
                    inc, full,
                    "range {range} step {step} window ending {hi} diverged"
                );
                nonempty += usize::from(!inc.rows.is_empty());
                hi += step;
            }
            assert!(nonempty > 3, "workload must exercise non-empty windows");
        }
    }

    /// The overlapping slide mostly reuses state instead of re-deriving.
    #[test]
    fn overlapping_slide_reuses_rows() {
        let ss = StringServer::new();
        let mut toy = ToyStreams::new(1);
        workload(&ss, &mut toy, 2_000);
        let q = parse_query(&ss, Q).unwrap();
        let lit = StringLiteralResolver(&ss);
        let plan = plan_query(&q, &toy, &ctx_for(&[0], 1, 2_000));

        let mut state = None;
        let mut timer = TaskTimer::start();
        let mut trace = StageTrace::new();
        let (_, s1) = maintain(
            &q,
            &plan,
            &mut state,
            &ctx_for(&[0], 601, 1_000),
            &[400],
            &toy,
            &lit,
            &mut timer,
            &mut trace,
        );
        assert!(s1.rebuilt && s1.rows_recomputed > 0);
        let (_, s2) = maintain(
            &q,
            &plan,
            &mut state,
            &ctx_for(&[0], 701, 1_100),
            &[400],
            &toy,
            &lit,
            &mut timer,
            &mut trace,
        );
        assert!(!s2.rebuilt);
        assert!(s2.rows_reused > 0, "75% overlap must carry rows over");
        assert!(
            s2.rows_reused > s2.rows_recomputed,
            "most rows should be reused on a 10% slide: {s2:?}"
        );
        // Every surviving row's death must cover edges inside the window:
        // the minimum contributing timestamp is in [lo, hi], so the death
        // (min ts + RANGE) lies in [lo + RANGE, hi + RANGE] — and must be
        // strictly past the current fire time.
        let rows = state.as_ref().unwrap().rows();
        for i in 0..rows.len() {
            assert!(rows.death(i) > 1_100 && rows.death(i) <= 1_500);
        }
    }

    /// A backwards window movement (or a reset) rebuilds from scratch.
    #[test]
    fn regression_and_reset_rebuild() {
        let ss = StringServer::new();
        let mut toy = ToyStreams::new(1);
        workload(&ss, &mut toy, 1_000);
        let q = parse_query(&ss, Q).unwrap();
        let lit = StringLiteralResolver(&ss);
        let plan = plan_query(&q, &toy, &ctx_for(&[0], 1, 1_000));
        let mut timer = TaskTimer::start();
        let mut trace = StageTrace::new();

        let mut state = None;
        let (_, s1) = maintain(
            &q,
            &plan,
            &mut state,
            &ctx_for(&[0], 301, 700),
            &[400],
            &toy,
            &lit,
            &mut timer,
            &mut trace,
        );
        assert!(s1.rebuilt);
        // Backwards: window end regressed.
        let (_, s2) = maintain(
            &q,
            &plan,
            &mut state,
            &ctx_for(&[0], 201, 600),
            &[400],
            &toy,
            &lit,
            &mut timer,
            &mut trace,
        );
        assert!(s2.rebuilt, "window regression must rebuild");
        // Explicit reset (the engine's recovery hook).
        reset(&mut state);
        assert!(state.is_none());
        let (_, s3) = maintain(
            &q,
            &plan,
            &mut state,
            &ctx_for(&[0], 301, 700),
            &[400],
            &toy,
            &lit,
            &mut timer,
            &mut trace,
        );
        assert!(s3.rebuilt);
    }

    /// Classification accepts monotone stream joins and rejects the
    /// non-incrementalizable shapes.
    #[test]
    fn classification_matches_supported_shapes() {
        let ss = StringServer::new();
        let ok = parse_query(&ss, Q).unwrap();
        assert!(incrementalizable(&ok));

        let opt = parse_query(
            &ss,
            "REGISTER QUERY O SELECT ?X ?Z FROM S [RANGE 10s STEP 1s] \
             WHERE { GRAPH S { ?X po ?Z } OPTIONAL { ?Z ht ?T } }",
        )
        .unwrap();
        assert!(!incrementalizable(&opt), "OPTIONAL is non-monotone");

        let stored = parse_query(
            &ss,
            "REGISTER QUERY M SELECT ?X ?Y ?Z FROM S [RANGE 10s STEP 1s] \
             WHERE { GRAPH S { ?X po ?Z } ?X fo ?Y }",
        )
        .unwrap();
        assert!(
            !incrementalizable(&stored),
            "stored-graph patterns read mutating state"
        );
    }

    /// Filters and aggregates ride through maintenance byte-identically
    /// (filters prune state rows; folds recompute over canonical order).
    #[test]
    fn filters_and_aggregates_match_recompute() {
        let ss = StringServer::new();
        let mut toy = ToyStreams::new(1);
        let rd = ss.intern_predicate("rd").unwrap();
        let mut val = 0u64;
        for ts in (100..=1_500u64).step_by(100) {
            for i in 0..4 {
                val = (val * 37 + 11) % 100;
                let s = ss.intern_entity(&format!("sensor{i}")).unwrap();
                let v = ss.intern_entity(&format!("{val}")).unwrap();
                toy.add(0, s, rd, v, ts);
            }
        }
        let q = parse_query(
            &ss,
            "REGISTER QUERY A SELECT AVG(?V) COUNT(?V) \
             FROM S [RANGE 10s STEP 1s] \
             WHERE { GRAPH S { ?X rd ?V } FILTER(?V > 20) }",
        )
        .unwrap();
        let lit = StringLiteralResolver(&ss);
        let plan = plan_query(&q, &toy, &ctx_for(&[0], 1, 1_500));

        let mut state = None;
        let mut hi = 400;
        while hi <= 1_500 {
            let ctx = ctx_for(&[0], hi - 399, hi);
            let mut timer = TaskTimer::start();
            let mut trace = StageTrace::new();
            let (inc, _) = maintain(
                &q,
                &plan,
                &mut state,
                &ctx,
                &[400],
                &toy,
                &lit,
                &mut timer,
                &mut trace,
            );
            let full = execute(&q, &plan, &ctx, &toy, &lit, &mut timer);
            assert_eq!(inc, full, "window ending {hi} diverged");
            assert!(inc.aggregates[1].unwrap_or(0.0) > 0.0, "filter passes rows");
            hi += 100;
        }
    }
}
