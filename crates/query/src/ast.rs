//! Abstract syntax of the supported C-SPARQL subset.

use wukong_rdf::{Pid, Vid};

/// A variable's index within a query (dense, assigned in first-use order).
pub type VarId = u8;

/// Subject/object position of a triple pattern: constant or variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Term {
    /// A constant entity, already resolved through the string server.
    Const(Vid),
    /// A variable.
    Var(VarId),
}

impl Term {
    /// The variable, if this term is one.
    pub fn var(self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

/// Which graph a pattern reads (the `GRAPH` clause of Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphName {
    /// The stored (persistent) graph — the default.
    Stored,
    /// A registered stream, by its dense index in [`Query::streams`].
    Stream(usize),
}

/// One triple pattern of the `WHERE` clause.
///
/// Predicates are constant in every LSBench and CityBench query; variable
/// predicates are rejected at parse time (the paper's graph-exploration
/// strategy keys lookups by `[vid|pid|dir]`, which needs a concrete
/// predicate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject term.
    pub s: Term,
    /// Predicate (constant).
    pub p: Pid,
    /// Object term.
    pub o: Term,
    /// Source graph.
    pub graph: GraphName,
}

/// A stream window: `[RANGE range_ms STEP step_ms]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window length in milliseconds.
    pub range_ms: u64,
    /// Slide step in milliseconds.
    pub step_ms: u64,
}

/// Comparison operator in a `FILTER`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

/// A numeric filter `FILTER(?v OP constant)`.
///
/// The variable's binding is interpreted as a numeric literal through the
/// engine's [`crate::exec::LiteralResolver`]; non-numeric bindings fail
/// the filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Filter {
    /// The filtered variable.
    pub var: VarId,
    /// The comparison operator.
    pub op: CmpOp,
    /// The constant right-hand side.
    pub value: f64,
}

impl Filter {
    /// Applies the filter to a resolved numeric value.
    pub fn accepts(&self, v: f64) -> bool {
        match self.op {
            CmpOp::Lt => v < self.value,
            CmpOp::Le => v <= self.value,
            CmpOp::Gt => v > self.value,
            CmpOp::Ge => v >= self.value,
            CmpOp::Eq => v == self.value,
            CmpOp::Ne => v != self.value,
        }
    }
}

/// Aggregate function over a selected variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count.
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric average.
    Avg,
    /// Numeric minimum.
    Min,
    /// Numeric maximum.
    Max,
}

/// One aggregate in the `SELECT` clause, e.g. `AVG(?density)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aggregate {
    /// The function.
    pub func: AggFunc,
    /// The aggregated variable.
    pub var: VarId,
}

/// One-shot vs continuous execution (§1 footnote 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Runs immediately, once, over the stored graph at a stable snapshot.
    OneShot,
    /// Registered; re-executed whenever its windows advance.
    Continuous,
}

/// A `CONSTRUCT` template triple: instantiate per result row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstructTemplate {
    /// Subject term.
    pub s: Term,
    /// Predicate (constant).
    pub p: Pid,
    /// Object term.
    pub o: Term,
}

/// A parsed, name-resolved query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Optional `REGISTER QUERY <name>` label.
    pub name: Option<String>,
    /// One-shot or continuous.
    pub kind: QueryKind,
    /// Whether `SELECT DISTINCT` deduplicates the projected rows.
    pub distinct: bool,
    /// `LIMIT n`, if present.
    pub limit: Option<usize>,
    /// `CONSTRUCT` templates; non-empty makes this a construct query
    /// whose firings emit instantiated triples (C-SPARQL's derived
    /// streams). `select` then carries the template's variables.
    pub construct: Vec<ConstructTemplate>,
    /// Projected variables, in `SELECT` order (empty if aggregates only).
    pub select: Vec<VarId>,
    /// Aggregates in the `SELECT` clause.
    pub aggregates: Vec<Aggregate>,
    /// Streams referenced by `FROM <stream> [RANGE … STEP …]`, in
    /// declaration order; `GraphName::Stream(i)` indexes this list.
    pub streams: Vec<(String, WindowSpec)>,
    /// The `WHERE` patterns.
    pub patterns: Vec<TriplePattern>,
    /// `OPTIONAL { … }` patterns: a left outer join against the required
    /// patterns — rows keep their bindings (optional variables unbound)
    /// when the block does not match.
    pub optional: Vec<TriplePattern>,
    /// `UNION { … }` alternative pattern groups: each group is evaluated
    /// independently (joined with the required patterns) and the result
    /// is the bag union over all groups. Empty = no UNION.
    pub union_groups: Vec<Vec<TriplePattern>>,
    /// `FILTER NOT EXISTS { … }` pattern groups: a row survives only if
    /// the group has no match given the row's bindings.
    pub not_exists: Vec<Vec<TriplePattern>>,
    /// `ORDER BY` keys: `(variable, descending)` in priority order.
    pub order_by: Vec<(VarId, bool)>,
    /// `GROUP BY` variables (aggregates compute per group when present).
    pub group_by: Vec<VarId>,
    /// `FILTER` clauses.
    pub filters: Vec<Filter>,
    /// Total number of distinct variables.
    pub var_count: u8,
    /// Variable names by [`VarId`] (for result printing).
    pub var_names: Vec<String>,
}

impl Query {
    /// Whether any pattern reads a stream.
    pub fn touches_stream(&self) -> bool {
        self.patterns
            .iter()
            .any(|p| matches!(p.graph, GraphName::Stream(_)))
    }

    /// Whether any pattern reads the stored graph.
    pub fn touches_store(&self) -> bool {
        self.patterns.iter().any(|p| p.graph == GraphName::Stored)
    }

    /// The widest window range over all streams (drives GC horizons).
    pub fn max_range_ms(&self) -> u64 {
        self.streams
            .iter()
            .map(|(_, w)| w.range_ms)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_semantics() {
        let f = Filter {
            var: 0,
            op: CmpOp::Ge,
            value: 10.0,
        };
        assert!(f.accepts(10.0));
        assert!(f.accepts(11.0));
        assert!(!f.accepts(9.9));
    }

    #[test]
    fn term_var_accessor() {
        assert_eq!(Term::Var(3).var(), Some(3));
        assert_eq!(Term::Const(Vid(1)).var(), None);
    }
}
