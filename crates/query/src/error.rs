//! Error type for parsing, planning and execution.

use core::fmt;

/// Errors from the query front end and executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Lexical error in the query text.
    Lex {
        /// Byte position in the input.
        pos: usize,
        /// Description of the problem.
        reason: String,
    },
    /// Syntactic error in the query text.
    Syntax {
        /// Token index where parsing failed.
        at: String,
        /// What the parser expected.
        expected: String,
    },
    /// A name (stream, graph, entity, predicate) could not be resolved.
    Unresolved(String),
    /// The query uses a feature outside the supported C-SPARQL subset.
    Unsupported(String),
    /// The planner could not connect every pattern into one exploration.
    Disconnected,
    /// A continuous query referenced a stream with no registered window.
    MissingWindow(String),
    /// Admission control rejected the query: the engine is shedding load
    /// and one-shot work is turned away before continuous queries degrade.
    Overloaded(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { pos, reason } => write!(f, "lex error at byte {pos}: {reason}"),
            QueryError::Syntax { at, expected } => {
                write!(f, "syntax error at {at:?}: expected {expected}")
            }
            QueryError::Unresolved(n) => write!(f, "unresolved name: {n}"),
            QueryError::Unsupported(s) => write!(f, "unsupported feature: {s}"),
            QueryError::Disconnected => {
                write!(f, "query patterns do not form a connected exploration")
            }
            QueryError::MissingWindow(s) => {
                write!(f, "stream {s} used in GRAPH clause but has no FROM window")
            }
            QueryError::Overloaded(s) => {
                write!(f, "engine overloaded, one-shot query rejected: {s}")
            }
        }
    }
}

impl std::error::Error for QueryError {}
