//! Binding tables for graph exploration.
//!
//! Graph exploration carries a table of partial variable bindings from
//! step to step; each expansion step consumes one column and may bind
//! another. Rows are fixed-width (one slot per query variable) with an
//! explicit *unbound* sentinel, which keeps row handling branch-light and
//! lets the fork-join driver repartition rows cheaply.

use wukong_rdf::Vid;

/// Sentinel marking an unbound variable slot.
pub const UNBOUND: Vid = Vid(u64::MAX);

/// A table of partial bindings: `rows.len()` rows, each `width` slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindingTable {
    width: usize,
    rows: Vec<Vid>,
}

impl BindingTable {
    /// Creates a table with a single all-unbound seed row.
    pub fn seed(width: usize) -> Self {
        BindingTable {
            width: width.max(1),
            rows: vec![UNBOUND; width.max(1)],
        }
    }

    /// Creates an empty table (no rows) of the given width.
    pub fn empty(width: usize) -> Self {
        BindingTable {
            width: width.max(1),
            rows: Vec::new(),
        }
    }

    /// Wraps an already width-strided flat buffer as a table (one move,
    /// no per-row copying — the bulk-ingest twin of [`Self::push_row`]).
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of the effective width.
    pub fn from_flat(width: usize, rows: Vec<Vid>) -> Self {
        let width = width.max(1);
        assert_eq!(rows.len() % width, 0, "flat buffer is not width-strided");
        BindingTable { width, rows }
    }

    /// Number of variable slots per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len() / self.width
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The `i`-th row.
    pub fn row(&self, i: usize) -> &[Vid] {
        &self.rows[i * self.width..(i + 1) * self.width]
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != width`.
    pub fn push_row(&mut self, row: &[Vid]) {
        assert_eq!(row.len(), self.width, "row width mismatch");
        self.rows.extend_from_slice(row);
    }

    /// Appends `base` with slot `var` replaced by `value`.
    pub fn push_bound(&mut self, base: &[Vid], var: u8, value: Vid) {
        let start = self.rows.len();
        self.rows.extend_from_slice(base);
        self.rows[start + var as usize] = value;
    }

    /// Retains only rows for which `keep` returns true.
    pub fn retain(&mut self, mut keep: impl FnMut(&[Vid]) -> bool) {
        let width = self.width;
        let mut out = Vec::with_capacity(self.rows.len());
        for chunk in self.rows.chunks_exact(width) {
            if keep(chunk) {
                out.extend_from_slice(chunk);
            }
        }
        self.rows = out;
    }

    /// Iterates over rows.
    pub fn iter(&self) -> impl Iterator<Item = &[Vid]> + Clone {
        self.rows.chunks_exact(self.width)
    }

    /// Sorts rows lexicographically (unbound slots sort last — the
    /// sentinel is the maximum id). Execution strategies (in-place,
    /// fork-join, incremental delta maintenance) produce the same result
    /// *multiset* in different row orders; canonicalizing before
    /// projection makes row order, float-aggregation order, and
    /// `LIMIT` truncation identical across all of them.
    pub fn sort_rows(&mut self) {
        let width = self.width;
        if self.rows.len() <= width {
            return;
        }
        let mut chunks: Vec<&[Vid]> = self.rows.chunks_exact(width).collect();
        chunks.sort_unstable();
        let mut out = Vec::with_capacity(self.rows.len());
        for c in chunks {
            out.extend_from_slice(c);
        }
        self.rows = out;
    }

    /// Approximate wire size when shipped between nodes (fork-join cost).
    pub fn wire_bytes(&self) -> usize {
        self.rows.len() * std::mem::size_of::<Vid>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_has_one_unbound_row() {
        let t = BindingTable::seed(3);
        assert_eq!(t.len(), 1);
        assert_eq!(t.row(0), &[UNBOUND, UNBOUND, UNBOUND]);
    }

    #[test]
    fn push_bound_replaces_one_slot() {
        let mut t = BindingTable::empty(2);
        t.push_bound(&[UNBOUND, UNBOUND], 1, Vid(42));
        assert_eq!(t.row(0), &[UNBOUND, Vid(42)]);
        t.push_bound(t.row(0).to_vec().as_slice(), 0, Vid(7));
        assert_eq!(t.row(1), &[Vid(7), Vid(42)]);
    }

    #[test]
    fn retain_filters_rows() {
        let mut t = BindingTable::empty(1);
        for i in 0..10 {
            t.push_row(&[Vid(i)]);
        }
        t.retain(|r| r[0].0 % 2 == 0);
        assert_eq!(t.len(), 5);
        assert!(t.iter().all(|r| r[0].0 % 2 == 0));
    }

    #[test]
    fn zero_width_is_clamped() {
        // Queries with only constant patterns still need a seed row.
        let t = BindingTable::seed(0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = BindingTable::empty(2);
        t.push_row(&[Vid(1)]);
    }

    #[test]
    fn sort_rows_is_lexicographic_with_unbound_last() {
        let mut t = BindingTable::empty(2);
        t.push_row(&[Vid(2), Vid(1)]);
        t.push_row(&[UNBOUND, Vid(0)]);
        t.push_row(&[Vid(2), Vid(0)]);
        t.push_row(&[Vid(1), Vid(9)]);
        t.sort_rows();
        assert_eq!(t.row(0), &[Vid(1), Vid(9)]);
        assert_eq!(t.row(1), &[Vid(2), Vid(0)]);
        assert_eq!(t.row(2), &[Vid(2), Vid(1)]);
        assert_eq!(t.row(3), &[UNBOUND, Vid(0)]);
    }
}
