#![warn(missing_docs)]
//! SPARQL / C-SPARQL front end and graph-exploration execution.
//!
//! Wukong+S adopts the Continuous SPARQL (C-SPARQL) interface over the RDF
//! data model (§1, §5). This crate implements the slice of the language the
//! paper's workloads exercise:
//!
//! - one-shot `SELECT` queries over the stored graph;
//! - `REGISTER QUERY` continuous queries with per-stream windows
//!   (`FROM <stream> [RANGE ns STEP ms]`) and `GRAPH` clauses binding
//!   patterns to a stream or to the stored graph (Fig. 2);
//! - `FILTER` comparisons and `COUNT`/`SUM`/`AVG`/`MIN`/`MAX` aggregates
//!   (CityBench queries aggregate over sensor readings);
//! - `PREFIX` declarations, `# ` comments, `SELECT DISTINCT`,
//!   `OPTIONAL { … }` (left outer join), `UNION { … }` (alternation),
//!   `FILTER NOT EXISTS { … }` (negation), `GROUP BY` (per-group
//!   aggregates), `ORDER BY ?v / DESC(?v)`, `LIMIT n`, and
//!   `CONSTRUCT { … }` templates (the engine feeds their firings into
//!   derived streams — C-SPARQL's stream composition).
//!
//! Queries compile to *graph-exploration* plans ([`plan`]): an ordered
//! chain of expansion steps starting from a constant or index vertex,
//! exactly the execution style Wukong uses instead of relational joins
//! (§4.1). The [`planner`] orders patterns by estimated cardinality with
//! full knowledge of both streaming and stored data — the "global
//! semantics" advantage of the integrated design (§3). The [`executor`]
//! runs plans against any [`exec::GraphAccess`] implementation, which is
//! how the same code drives a single-node store, the distributed engine,
//! and the baselines.

pub mod adaptive;
pub mod ast;
pub mod bindings;
pub mod error;
pub mod exec;
pub mod executor;
pub mod incremental;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod planner;

pub use adaptive::{normalize_query_text, DriftPolicy, PlanCache, PlanFeedback};
pub use ast::{Aggregate, Filter, GraphName, Query, QueryKind, Term, TriplePattern, WindowSpec};
pub use bindings::BindingTable;
pub use error::QueryError;
pub use exec::{GraphAccess, LiteralResolver, PatternSource, TimedGraphAccess};
pub use executor::{
    apply_not_exists, apply_optional, apply_ready_filters, apply_union, execute, execute_step,
    execute_traced, execute_with_fanout, finalize, Degraded, ResultSet,
};
pub use incremental::{incrementalizable, DeltaState, DeltaStats};
pub use parser::parse_query;
pub use plan::{Plan, Step, StepMode};
pub use planner::{plan_patterns, plan_query};
