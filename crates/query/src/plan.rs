//! Graph-exploration plans.
//!
//! A plan is an ordered list of steps, each consuming one triple pattern.
//! Execution walks the binding table through the steps; at every step the
//! pattern is anchored on a side that is already concrete (a constant or a
//! bound variable) or, failing that, on the predicate's index vertex
//! (§4.1: "queries that rely on retrieving a set of normal vertices
//! connected by edges with a certain label").

use std::collections::HashSet;

use crate::ast::{GraphName, TriplePattern};

/// How a step anchors its pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepMode {
    /// Subject side is concrete: look up `[s|p|out]`, match/bind object.
    FromSubject,
    /// Object side is concrete: look up `[o|p|in]`, match/bind subject.
    FromObject,
    /// Neither side concrete: scan the predicate index `[0|p|out]` to
    /// enumerate subjects, then expand each to its objects.
    IndexScan,
}

/// One step of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// The pattern this step satisfies.
    pub pattern: TriplePattern,
    /// Anchoring mode.
    pub mode: StepMode,
    /// Planner's cardinality estimate when the step was chosen (kept for
    /// inspection and the breakdown benches).
    pub estimate: usize,
}

/// An ordered graph-exploration plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Steps in execution order.
    pub steps: Vec<Step>,
}

impl Plan {
    /// The sources (stored graph / streams) the plan touches, deduped in
    /// first-appearance order. Fork-join fan-out iterates this per
    /// firing, so dedup runs through a seen-set rather than the old
    /// O(n²) `Vec::contains` scan.
    pub fn sources(&self) -> Vec<GraphName> {
        let mut seen: HashSet<GraphName> = HashSet::with_capacity(self.steps.len());
        let mut out: Vec<GraphName> = Vec::new();
        for s in &self.steps {
            if seen.insert(s.pattern.graph) {
                out.push(s.pattern.graph);
            }
        }
        out
    }

    /// Whether any step requires an index scan (non-selective start).
    pub fn has_index_scan(&self) -> bool {
        self.steps.iter().any(|s| s.mode == StepMode::IndexScan)
    }

    /// The plan's modeled cost: the sum of per-step cardinality
    /// estimates, i.e. the number of index-edge traversals the planner
    /// expects execution to perform. Used by the adaptive layer to
    /// compare candidate plans and pick an execution mode.
    pub fn cost(&self) -> u64 {
        self.steps
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.estimate as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;
    use wukong_rdf::{Pid, Vid};

    fn step(graph: GraphName, estimate: usize) -> Step {
        Step {
            pattern: TriplePattern {
                s: Term::Const(Vid(1)),
                p: Pid(1),
                o: Term::Var(0),
                graph,
            },
            mode: StepMode::FromSubject,
            estimate,
        }
    }

    #[test]
    fn sources_dedup_preserves_first_appearance_order() {
        // Fork-join shard fan-out iterates `sources()` per firing, so
        // the order must be the step order (first appearance), not some
        // hash order — and repeats must collapse.
        let plan = Plan {
            steps: vec![
                step(GraphName::Stream(2), 1),
                step(GraphName::Stored, 1),
                step(GraphName::Stream(2), 1),
                step(GraphName::Stream(0), 1),
                step(GraphName::Stored, 1),
                step(GraphName::Stream(0), 1),
            ],
        };
        assert_eq!(
            plan.sources(),
            vec![
                GraphName::Stream(2),
                GraphName::Stored,
                GraphName::Stream(0)
            ]
        );
    }

    #[test]
    fn cost_sums_step_estimates_saturating() {
        let plan = Plan {
            steps: vec![
                step(GraphName::Stored, 3),
                step(GraphName::Stored, 40),
                step(GraphName::Stored, 500),
            ],
        };
        assert_eq!(plan.cost(), 543);
        let huge = Plan {
            steps: vec![
                step(GraphName::Stored, usize::MAX),
                step(GraphName::Stored, usize::MAX),
            ],
        };
        assert_eq!(huge.cost(), u64::MAX);
    }
}
