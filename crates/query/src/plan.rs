//! Graph-exploration plans.
//!
//! A plan is an ordered list of steps, each consuming one triple pattern.
//! Execution walks the binding table through the steps; at every step the
//! pattern is anchored on a side that is already concrete (a constant or a
//! bound variable) or, failing that, on the predicate's index vertex
//! (§4.1: "queries that rely on retrieving a set of normal vertices
//! connected by edges with a certain label").

use crate::ast::{GraphName, TriplePattern};

/// How a step anchors its pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepMode {
    /// Subject side is concrete: look up `[s|p|out]`, match/bind object.
    FromSubject,
    /// Object side is concrete: look up `[o|p|in]`, match/bind subject.
    FromObject,
    /// Neither side concrete: scan the predicate index `[0|p|out]` to
    /// enumerate subjects, then expand each to its objects.
    IndexScan,
}

/// One step of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// The pattern this step satisfies.
    pub pattern: TriplePattern,
    /// Anchoring mode.
    pub mode: StepMode,
    /// Planner's cardinality estimate when the step was chosen (kept for
    /// inspection and the breakdown benches).
    pub estimate: usize,
}

/// An ordered graph-exploration plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Steps in execution order.
    pub steps: Vec<Step>,
}

impl Plan {
    /// The sources (stored graph / streams) the plan touches, deduped.
    pub fn sources(&self) -> Vec<GraphName> {
        let mut out: Vec<GraphName> = Vec::new();
        for s in &self.steps {
            if !out.contains(&s.pattern.graph) {
                out.push(s.pattern.graph);
            }
        }
        out
    }

    /// Whether any step requires an index scan (non-selective start).
    pub fn has_index_scan(&self) -> bool {
        self.steps.iter().any(|s| s.mode == StepMode::IndexScan)
    }
}
