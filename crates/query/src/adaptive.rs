//! Adaptive planning primitives: plan caching and cardinality feedback.
//!
//! The planner picks an exploration order from whatever cardinalities the
//! store reported *at planning time*. Over a fast-evolving stream those
//! numbers rot — LSBench's post/GPS mixes shift per-predicate selectivity
//! by orders of magnitude — so a continuous query registered once can
//! keep firing a stale plan forever. This module provides the two
//! engine-independent pieces of the fix:
//!
//! * [`PlanCache`] — memoizes plans keyed on `(normalized query text,
//!   stats epoch)`. One-shot bursts and fork-join sub-queries re-submit
//!   textually identical queries many times per second; as long as the
//!   store's statistics epoch has not advanced, the cached plan is
//!   exactly what the planner would produce again.
//! * [`PlanFeedback`] + [`DriftPolicy`] — per-step cardinality feedback.
//!   The executor reports each step's actual fan-out next to the
//!   planner's [`crate::plan::Step::estimate`]; a drift detector trips
//!   when the estimate/actual ratio leaves a configurable band for K
//!   consecutive firings, signalling the engine to re-plan against fresh
//!   statistics.
//!
//! Both pieces are deterministic: cache hits depend only on (text,
//! epoch), and the drift detector's trip points are a pure function of
//! the observed fan-out sequence — so adaptive runs replay identically
//! under the same seed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::plan::Plan;

/// Collapses every whitespace run in `text` to a single space and trims,
/// so cosmetic formatting differences (newlines, indentation) between
/// textually identical queries hit the same [`PlanCache`] entry. Nothing
/// else is rewritten — `#` introduces hashtag entities in this dialect,
/// not comments, so the text is otherwise preserved byte for byte.
pub fn normalize_query_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_gap = true; // leading whitespace trims
    for ch in text.chars() {
        if ch.is_whitespace() {
            if !in_gap {
                out.push(' ');
                in_gap = true;
            }
        } else {
            out.push(ch);
            in_gap = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// A concurrent plan memo keyed on `(normalized query text, stats
/// epoch)`. Entries from older epochs are evicted first when the cache
/// fills; eviction is deterministic (stale-epoch sweep, then full clear)
/// so cache behaviour never depends on hash iteration order.
pub struct PlanCache {
    inner: Mutex<HashMap<(String, u64), Plan>>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

impl PlanCache {
    /// Default capacity: plenty for every registered query plus a burst
    /// of distinct one-shot texts, small enough to stay cheap to sweep.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Creates a cache holding at most `capacity` plans (min 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Looks up the plan for `text` (normalized internally) at `epoch`.
    pub fn get(&self, text: &str, epoch: u64) -> Option<Plan> {
        let key = (normalize_query_text(text), epoch);
        let found = self
            .inner
            .lock()
            .expect("plan cache poisoned")
            .get(&key)
            .cloned();
        match found {
            Some(p) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(p)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `plan` for `text` at `epoch`, evicting if full: first
    /// every entry from an older epoch, then (if still full) everything.
    pub fn insert(&self, text: &str, epoch: u64, plan: Plan) {
        let key = (normalize_query_text(text), epoch);
        let mut map = self.inner.lock().expect("plan cache poisoned");
        if !map.contains_key(&key) && map.len() >= self.capacity {
            map.retain(|(_, e), _| *e >= epoch);
            if map.len() >= self.capacity {
                map.clear();
            }
        }
        map.insert(key, plan);
    }

    /// The cached plan for `text` at `epoch`, planning via `plan_fn` and
    /// caching on a miss.
    pub fn get_or_plan(&self, text: &str, epoch: u64, plan_fn: impl FnOnce() -> Plan) -> Plan {
        if let Some(p) = self.get(text, epoch) {
            return p;
        }
        let p = plan_fn();
        self.insert(text, epoch, p.clone());
        p
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// When the drift detector trips: the per-step estimate/actual ratio
/// must leave `band` for `trip_after` *consecutive* firings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftPolicy {
    /// Maximum tolerated smoothed ratio `max((a+1)/(e+1), (e+1)/(a+1))`
    /// between a step's estimate and its observed per-input-row fan-out.
    /// The default (8×) absorbs the planner's own fudge factors (the
    /// bound-expansion guess and the 4× index-scan multiplier) so only
    /// order-of-magnitude drift re-plans.
    pub band: f64,
    /// Consecutive drifted firings required before re-planning, so one
    /// anomalous window does not thrash the plan.
    pub trip_after: u32,
}

impl Default for DriftPolicy {
    fn default() -> Self {
        DriftPolicy {
            band: 8.0,
            trip_after: 3,
        }
    }
}

/// Per-registered-query cardinality feedback: the plan's frozen
/// estimates plus the drift streak across firings.
///
/// A firing's observation is one `(input_rows, output_rows)` pair per
/// plan step (see `execute_with_fanout`); the observed per-input-row
/// fan-out `out / max(in, 1)` is comparable to `Step::estimate` for
/// every step mode — constant anchors expand the same key for every
/// input row, bound-variable anchors are estimated per row, and index
/// scans run once over a unit seed row. Steps with `input_rows == 0`
/// never executed (upstream emptiness short-circuited) and are skipped.
#[derive(Debug, Clone)]
pub struct PlanFeedback {
    estimates: Vec<u64>,
    streak: u32,
    firings: u64,
    drifted_firings: u64,
}

impl PlanFeedback {
    /// Fresh feedback for `plan`, freezing its per-step estimates.
    pub fn for_plan(plan: &Plan) -> Self {
        PlanFeedback {
            estimates: plan.steps.iter().map(|s| s.estimate as u64).collect(),
            streak: 0,
            firings: 0,
            drifted_firings: 0,
        }
    }

    /// Records one firing's per-step fan-out. Returns `true` when the
    /// drift streak reaches `policy.trip_after` — the caller should
    /// re-plan; the streak resets so the rebuilt plan starts clean.
    pub fn observe(&mut self, fanout: &[(u64, u64)], policy: &DriftPolicy) -> bool {
        self.firings += 1;
        let mut drifted = false;
        for (i, &(in_rows, out_rows)) in fanout.iter().enumerate() {
            if in_rows == 0 {
                continue; // step never ran (or probe had no observation)
            }
            let Some(&est) = self.estimates.get(i) else {
                break;
            };
            let actual = out_rows as f64 / in_rows as f64;
            let e = est as f64 + 1.0;
            let a = actual + 1.0;
            let ratio = (a / e).max(e / a);
            if ratio > policy.band {
                drifted = true;
            }
        }
        if drifted {
            self.drifted_firings += 1;
            self.streak += 1;
            if self.streak >= policy.trip_after {
                self.streak = 0;
                return true;
            }
        } else {
            self.streak = 0;
        }
        false
    }

    /// Firings observed since this feedback was created.
    pub fn firings(&self) -> u64 {
        self.firings
    }

    /// Firings whose fan-out left the band.
    pub fn drifted_firings(&self) -> u64 {
        self.drifted_firings
    }

    /// Current consecutive-drift streak.
    pub fn streak(&self) -> u32 {
        self.streak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{GraphName, Term, TriplePattern};
    use crate::plan::{Step, StepMode};
    use wukong_rdf::{Pid, Vid};

    fn plan_with_estimates(estimates: &[usize]) -> Plan {
        Plan {
            steps: estimates
                .iter()
                .map(|&estimate| Step {
                    pattern: TriplePattern {
                        s: Term::Const(Vid(1)),
                        p: Pid(estimate as u64),
                        o: Term::Var(0),
                        graph: GraphName::Stored,
                    },
                    mode: StepMode::FromSubject,
                    estimate,
                })
                .collect(),
        }
    }

    #[test]
    fn normalization_collapses_whitespace_only() {
        assert_eq!(
            normalize_query_text("  SELECT ?X\n\tWHERE  { ?X ht #sosp17 }  "),
            "SELECT ?X WHERE { ?X ht #sosp17 }"
        );
        // Hashtag entities survive untouched (no comment stripping).
        assert!(normalize_query_text("?X ht #sosp17").contains("#sosp17"));
    }

    #[test]
    fn cache_hits_on_equivalent_text_same_epoch_only() {
        let cache = PlanCache::new(8);
        let plan = plan_with_estimates(&[3]);
        cache.insert("SELECT ?X  WHERE { a p ?X }", 1, plan.clone());
        assert_eq!(cache.get("SELECT ?X WHERE { a p ?X }", 1), Some(plan));
        assert_eq!(cache.get("SELECT ?X WHERE { a p ?X }", 2), None);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn eviction_sweeps_stale_epochs_first() {
        let cache = PlanCache::new(2);
        cache.insert("q1", 1, plan_with_estimates(&[1]));
        cache.insert("q2", 1, plan_with_estimates(&[2]));
        // Full; inserting at a newer epoch sweeps the epoch-1 entries.
        cache.insert("q3", 2, plan_with_estimates(&[3]));
        assert!(cache.get("q3", 2).is_some());
        assert!(cache.get("q1", 1).is_none());
        assert!(cache.get("q2", 1).is_none());
    }

    #[test]
    fn get_or_plan_plans_once_per_key() {
        let cache = PlanCache::default();
        let mut calls = 0;
        for _ in 0..3 {
            cache.get_or_plan("q", 7, || {
                calls += 1;
                plan_with_estimates(&[9])
            });
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn detector_trips_after_consecutive_drift_only() {
        let plan = plan_with_estimates(&[2]);
        let mut fb = PlanFeedback::for_plan(&plan);
        let policy = DriftPolicy {
            band: 4.0,
            trip_after: 3,
        };
        // Estimate 2, actual 100 → smoothed ratio 101/3 ≈ 33 > 4.
        assert!(!fb.observe(&[(1, 100)], &policy));
        assert!(!fb.observe(&[(1, 100)], &policy));
        // An in-band firing resets the streak.
        assert!(!fb.observe(&[(1, 2)], &policy));
        assert!(!fb.observe(&[(1, 100)], &policy));
        assert!(!fb.observe(&[(1, 100)], &policy));
        assert!(fb.observe(&[(1, 100)], &policy), "third consecutive trips");
        assert_eq!(fb.streak(), 0, "trip resets the streak");
        assert_eq!(fb.firings(), 6);
        assert_eq!(fb.drifted_firings(), 5);
    }

    #[test]
    fn in_band_and_skipped_steps_never_drift() {
        let plan = plan_with_estimates(&[8, 50]);
        let mut fb = PlanFeedback::for_plan(&plan);
        let policy = DriftPolicy::default();
        for _ in 0..10 {
            // Step 0 within band; step 1 skipped (no input rows).
            assert!(!fb.observe(&[(4, 40), (0, 0)], &policy));
        }
        assert_eq!(fb.drifted_firings(), 0);
    }

    #[test]
    fn per_row_fanout_normalizes_by_input_rows() {
        // Estimate 8 per row; 10 input rows producing 80 outputs is
        // exactly on-model even though 80 >> 8.
        let plan = plan_with_estimates(&[8]);
        let mut fb = PlanFeedback::for_plan(&plan);
        let policy = DriftPolicy {
            band: 2.0,
            trip_after: 1,
        };
        assert!(!fb.observe(&[(10, 80)], &policy));
        // The same 80 outputs from one row is 10× the estimate: drift.
        assert!(fb.observe(&[(1, 80)], &policy));
    }
}
