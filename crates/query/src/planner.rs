//! Greedy cost-based pattern ordering.
//!
//! The integrated design gives the planner *global* information: live
//! cardinalities of both stored keys (at the query's snapshot) and stream
//! windows (via the stream index), so it can pick the execution order with
//! the most selective anchor first — exactly what the composite designs
//! cannot do across their system boundary (§2.3, Issue #2).
//!
//! The algorithm is the classic greedy exploration order: repeatedly pick,
//! among patterns touching an already-bound variable (or anchored on a
//! constant), the one with the smallest estimated fan-out; fall back to a
//! predicate index scan when nothing is anchored.

use crate::ast::{GraphName, Query, Term, TriplePattern};
use crate::exec::{ExecContext, GraphAccess};
use crate::plan::{Plan, Step, StepMode};
use wukong_rdf::{Dir, Key};

/// Total order over pattern content, used to break estimate ties. With a
/// content-based tie-break the greedy choice at every iteration is a pure
/// function of the *set* of remaining patterns (mode and estimate already
/// depend only on pattern + bound vars), so the produced plan — and its
/// cost — is invariant under permutation of the input pattern list.
fn pattern_key(p: &TriplePattern) -> (u8, usize, u64, (u8, u64), (u8, u64)) {
    let term_key = |t: Term| match t {
        Term::Const(v) => (0u8, v.0),
        Term::Var(v) => (1u8, v as u64),
    };
    let graph_key = match p.graph {
        GraphName::Stored => (0u8, 0usize),
        GraphName::Stream(i) => (1u8, i),
    };
    (
        graph_key.0,
        graph_key.1,
        p.p.0,
        term_key(p.s),
        term_key(p.o),
    )
}

/// Cost assigned to expanding from an already-bound variable: the planner
/// cannot know the concrete vertex yet, so it charges a per-row fan-out
/// guess. Small enough to prefer bound expansion over index scans.
const BOUND_EXPANSION_COST: usize = 8;

fn anchor_estimate(
    p: &TriplePattern,
    bound: &[bool],
    access: &impl GraphAccess,
    ctx: &ExecContext,
) -> (StepMode, usize) {
    let s_concrete = match p.s {
        Term::Const(_) => true,
        Term::Var(v) => bound[v as usize],
    };
    let o_concrete = match p.o {
        Term::Const(_) => true,
        Term::Var(v) => bound[v as usize],
    };

    let s_cost = match p.s {
        Term::Const(c) => access.estimate(Key::new(c, p.p, Dir::Out), p.graph, ctx),
        Term::Var(_) if s_concrete => BOUND_EXPANSION_COST,
        _ => usize::MAX,
    };
    let o_cost = match p.o {
        Term::Const(c) => access.estimate(Key::new(c, p.p, Dir::In), p.graph, ctx),
        Term::Var(_) if o_concrete => BOUND_EXPANSION_COST,
        _ => usize::MAX,
    };

    if s_cost == usize::MAX && o_cost == usize::MAX {
        // Nothing concrete: index scan over the predicate.
        let est = access
            .estimate(Key::index(p.p, Dir::Out), p.graph, ctx)
            .max(1);
        (StepMode::IndexScan, est.saturating_mul(4))
    } else if s_cost <= o_cost {
        (StepMode::FromSubject, s_cost)
    } else {
        (StepMode::FromObject, o_cost)
    }
}

fn mark_bound(p: &TriplePattern, bound: &mut [bool]) {
    if let Term::Var(v) = p.s {
        bound[v as usize] = true;
    }
    if let Term::Var(v) = p.o {
        bound[v as usize] = true;
    }
}

/// Orders `query`'s patterns into an exploration plan using `access` as
/// the cardinality oracle for the given execution context.
pub fn plan_query(query: &Query, access: &impl GraphAccess, ctx: &ExecContext) -> Plan {
    plan_patterns(
        &query.patterns,
        &vec![false; query.var_count as usize],
        access,
        ctx,
    )
}

/// Orders an arbitrary pattern subset with some variables already bound —
/// used by drivers that stage execution across engines (the composite
/// baselines ship partial bindings to the store side).
pub fn plan_patterns(
    patterns: &[TriplePattern],
    pre_bound: &[bool],
    access: &impl GraphAccess,
    ctx: &ExecContext,
) -> Plan {
    let mut remaining: Vec<TriplePattern> = patterns.to_vec();
    let mut bound = pre_bound.to_vec();
    let mut steps = Vec::with_capacity(remaining.len());

    while !remaining.is_empty() {
        // Prefer connected patterns; among them the cheapest anchor;
        // estimate ties break on pattern content (see [`pattern_key`])
        // so the plan does not depend on the input pattern order.
        let mut best: Option<(usize, StepMode, usize)> = None;
        for (i, p) in remaining.iter().enumerate() {
            let (mode, est) = anchor_estimate(p, &bound, access, ctx);
            let connected = mode != StepMode::IndexScan;
            let candidate = (i, mode, est);
            best = match best {
                None => Some(candidate),
                Some((bi, bmode, best_est)) => {
                    let best_connected = bmode != StepMode::IndexScan;
                    if (connected && !best_connected)
                        || (connected == best_connected && est < best_est)
                        || (connected == best_connected
                            && est == best_est
                            && pattern_key(p) < pattern_key(&remaining[bi]))
                    {
                        Some(candidate)
                    } else {
                        best
                    }
                }
            };
        }
        let (i, mode, estimate) = best.expect("remaining is non-empty");
        let pattern = remaining.swap_remove(i);
        mark_bound(&pattern, &mut bound);
        steps.push(Step {
            pattern,
            mode,
            estimate,
        });
    }

    Plan { steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::GraphName;
    use crate::exec::{ExecContext, PatternSource};
    use crate::parse_query;
    use std::collections::HashMap;
    use wukong_net::TaskTimer;
    use wukong_rdf::{StringServer, Vid};
    use wukong_store::SnapshotId;

    /// An oracle with fixed per-key estimates.
    struct FixedOracle {
        estimates: HashMap<Key, usize>,
        default: usize,
    }

    impl GraphAccess for FixedOracle {
        fn neighbors(
            &self,
            _key: Key,
            _src: PatternSource,
            _ctx: &ExecContext,
            _timer: &mut TaskTimer,
            _out: &mut Vec<Vid>,
        ) {
        }

        fn estimate(&self, key: Key, _src: PatternSource, _ctx: &ExecContext) -> usize {
            self.estimates.get(&key).copied().unwrap_or(self.default)
        }
    }

    #[test]
    fn selective_constant_anchor_goes_first() {
        let ss = StringServer::new();
        let q = parse_query(
            &ss,
            "SELECT ?X WHERE { Logan po ?X . ?X ht #sosp17 . Erik li ?X }",
        )
        .unwrap();
        let logan = ss.entity_id("Logan").unwrap();
        let erik = ss.entity_id("Erik").unwrap();
        let po = ss.predicate_id("po").unwrap();
        let li = ss.predicate_id("li").unwrap();

        let mut estimates = HashMap::new();
        // Erik liked 2 things; Logan posted 50.
        estimates.insert(Key::new(logan, po, Dir::Out), 50);
        estimates.insert(Key::new(erik, li, Dir::Out), 2);
        let oracle = FixedOracle {
            estimates,
            default: 1000,
        };
        let ctx = ExecContext::stored(SnapshotId::BASE);
        let plan = plan_query(&q, &oracle, &ctx);

        // The Erik-li pattern anchors the exploration.
        assert_eq!(plan.steps[0].pattern.p, li);
        assert_eq!(plan.steps[0].mode, StepMode::FromSubject);
        assert_eq!(plan.steps[0].estimate, 2);
        assert!(!plan.has_index_scan());
        assert_eq!(plan.steps.len(), 3);
    }

    #[test]
    fn unanchored_query_uses_index_scan_once() {
        let ss = StringServer::new();
        let q = parse_query(&ss, "SELECT ?X ?Y WHERE { ?X fo ?Y . ?Y po ?Z }").unwrap();
        let oracle = FixedOracle {
            estimates: HashMap::new(),
            default: 10,
        };
        let ctx = ExecContext::stored(SnapshotId::BASE);
        let plan = plan_query(&q, &oracle, &ctx);
        assert_eq!(plan.steps[0].mode, StepMode::IndexScan);
        // Second step is connected through ?Y.
        assert_ne!(plan.steps[1].mode, StepMode::IndexScan);
    }

    #[test]
    fn single_pattern_plan_needs_no_join() {
        // Degenerate but legal: one pattern, nothing to order against.
        let ss = StringServer::new();
        let q = parse_query(&ss, "SELECT ?X WHERE { Logan po ?X }").unwrap();
        let oracle = FixedOracle {
            estimates: HashMap::new(),
            default: 7,
        };
        let ctx = ExecContext::stored(SnapshotId::BASE);
        let plan = plan_query(&q, &oracle, &ctx);
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(plan.steps[0].mode, StepMode::FromSubject);
        assert!(!plan.has_index_scan());
    }

    #[test]
    fn zero_binding_first_step_still_connects_the_rest() {
        // A fully-constant pattern binds no variables. When the planner
        // picks it first (it is the cheapest concrete anchor), the
        // remaining patterns must still plan as connected steps — the
        // "connected" preference keys off concrete anchors, not off
        // newly-bound variables.
        let ss = StringServer::new();
        let q = parse_query(&ss, "SELECT ?X WHERE { Logan fo Erik . ?Y po ?X }").unwrap();
        let logan = ss.entity_id("Logan").unwrap();
        let fo = ss.predicate_id("fo").unwrap();
        let mut estimates = HashMap::new();
        estimates.insert(Key::new(logan, fo, Dir::Out), 1);
        let oracle = FixedOracle {
            estimates,
            default: 50,
        };
        let ctx = ExecContext::stored(SnapshotId::BASE);
        let plan = plan_query(&q, &oracle, &ctx);
        assert_eq!(plan.steps.len(), 2);
        // The existence check anchors first and binds nothing.
        assert_eq!(plan.steps[0].pattern.p, fo);
        assert!(plan.steps[0].pattern.s.var().is_none());
        assert!(plan.steps[0].pattern.o.var().is_none());
        // The disconnected remainder falls back to an index scan rather
        // than anchoring on an unbound variable.
        assert_eq!(plan.steps[1].mode, StepMode::IndexScan);
    }

    #[test]
    fn plan_covers_all_patterns_and_sources() {
        let ss = StringServer::new();
        let q = parse_query(
            &ss,
            "REGISTER QUERY q SELECT ?X ?Y ?Z \
             FROM T [RANGE 10s STEP 1s] FROM L [RANGE 5s STEP 1s] \
             WHERE { GRAPH T { ?X po ?Z } ?X fo ?Y GRAPH L { ?Y li ?Z } }",
        )
        .unwrap();
        let oracle = FixedOracle {
            estimates: HashMap::new(),
            default: 5,
        };
        let ctx = ExecContext {
            sn: SnapshotId::BASE,
            windows: vec![
                crate::exec::WindowInstance {
                    stream: wukong_rdf::StreamId(0),
                    lo: 0,
                    hi: 10,
                },
                crate::exec::WindowInstance {
                    stream: wukong_rdf::StreamId(1),
                    lo: 5,
                    hi: 10,
                },
            ],
        };
        let plan = plan_query(&q, &oracle, &ctx);
        assert_eq!(plan.steps.len(), 3);
        let sources = plan.sources();
        assert!(sources.contains(&GraphName::Stored));
        assert!(sources.contains(&GraphName::Stream(0)));
        assert!(sources.contains(&GraphName::Stream(1)));
    }
}
