//! Tokenizer for the C-SPARQL subset.

use crate::error::QueryError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or bare identifier (`SELECT`, `Tweet_Stream`, `po`, …).
    Ident(String),
    /// Variable, without the leading `?` (`?X` → `X`).
    Var(String),
    /// Numeric literal (integer or decimal), with optional time-unit
    /// suffix already stripped by the parser.
    Number(f64),
    /// A duration literal like `10s`, `100ms`, `5m`.
    Duration(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `.` (triple separator)
    Dot,
    /// `,`
    Comma,
    /// A comparison operator (`<`, `<=`, `>`, `>=`, `=`, `!=`).
    Cmp(String),
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | ':' | '#' | '.' | '/')
}

/// Tokenizes C-SPARQL text.
///
/// Identifiers may contain `.` (IRIs, hashtags), so a `.` is a triple
/// separator only when surrounded by whitespace or at clause boundaries —
/// the common C-SPARQL formatting, and how all bundled queries are written.
pub fn lex(input: &str) -> Result<Vec<Token>, QueryError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            // `#` at a token boundary followed by whitespace-delimited
            // text could be a hashtag entity; a comment is `#` preceded
            // by start-of-line context and followed by a space. C-SPARQL
            // comments use `# ` by convention here.
            '#' if i + 1 < bytes.len() && bytes[i + 1] == ' ' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '?' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                if j == start {
                    return Err(QueryError::Lex {
                        pos: i,
                        reason: "`?` must start a variable name".into(),
                    });
                }
                tokens.push(Token::Var(bytes[start..j].iter().collect()));
                i = j;
            }
            '<' | '>' | '=' | '!' => {
                let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
                if two == "<=" || two == ">=" || two == "!=" {
                    tokens.push(Token::Cmp(two));
                    i += 2;
                } else if c == '!' {
                    return Err(QueryError::Lex {
                        pos: i,
                        reason: "`!` must be part of `!=`".into(),
                    });
                } else if c == '<' {
                    // Either a comparison or an IRI bracket `<name>`.
                    if let Some(close) = bytes[i + 1..].iter().position(|&c| c == '>') {
                        let inner: String = bytes[i + 1..i + 1 + close].iter().collect();
                        if !inner.is_empty()
                            && inner.chars().all(is_ident_char)
                            && !inner.contains(char::is_whitespace)
                        {
                            tokens.push(Token::Ident(inner));
                            i += close + 2;
                            continue;
                        }
                    }
                    tokens.push(Token::Cmp("<".into()));
                    i += 1;
                } else {
                    tokens.push(Token::Cmp(c.to_string()));
                    i += 1;
                }
            }
            '.' => {
                // A lone dot is a triple separator (identifiers containing
                // dots are consumed by the identifier arm below).
                tokens.push(Token::Dot);
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == '.') {
                    j += 1;
                }
                let num_str: String = bytes[start..j].iter().collect();
                // Optional duration suffix: ms, s, m.
                let suffix_start = j;
                while j < bytes.len() && bytes[j].is_alphabetic() {
                    j += 1;
                }
                let suffix: String = bytes[suffix_start..j].iter().collect();
                let n: f64 = num_str.parse().map_err(|_| QueryError::Lex {
                    pos: start,
                    reason: format!("bad number {num_str:?}"),
                })?;
                match suffix.as_str() {
                    "" => tokens.push(Token::Number(n)),
                    "ms" => tokens.push(Token::Duration(n as u64)),
                    "s" => tokens.push(Token::Duration((n * 1_000.0) as u64)),
                    "m" => tokens.push(Token::Duration((n * 60_000.0) as u64)),
                    _ => {
                        return Err(QueryError::Lex {
                            pos: start,
                            reason: format!("unknown duration unit {suffix:?}"),
                        })
                    }
                }
                i = j;
            }
            c if is_ident_char(c) => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_ident_char(bytes[j]) {
                    j += 1;
                }
                // A trailing dot is a triple separator, not part of the
                // identifier ("…?X ht #sosp17.").
                let mut end = j;
                if bytes[end - 1] == '.' {
                    end -= 1;
                }
                tokens.push(Token::Ident(bytes[start..end].iter().collect()));
                if end < j {
                    tokens.push(Token::Dot);
                }
                i = j;
            }
            _ => {
                return Err(QueryError::Lex {
                    pos: i,
                    reason: format!("unexpected character {c:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_fig2_oneshot() {
        let toks = lex("SELECT ?X WHERE { Logan po ?X . ?X ht #sosp17 }").unwrap();
        assert!(toks.contains(&Token::Ident("SELECT".into())));
        assert!(toks.contains(&Token::Var("X".into())));
        assert!(toks.contains(&Token::Ident("#sosp17".into())));
        assert!(toks.contains(&Token::Dot));
    }

    #[test]
    fn lexes_window_spec() {
        let toks = lex("[RANGE 10s STEP 100ms]").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LBracket,
                Token::Ident("RANGE".into()),
                Token::Duration(10_000),
                Token::Ident("STEP".into()),
                Token::Duration(100),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn lexes_filters_and_numbers() {
        let toks = lex("FILTER(?v >= 12.5)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("FILTER".into()),
                Token::LParen,
                Token::Var("v".into()),
                Token::Cmp(">=".into()),
                Token::Number(12.5),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn lexes_iri_brackets_as_ident() {
        let toks = lex("FROM <X-Lab>").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("FROM".into()), Token::Ident("X-Lab".into())]
        );
    }

    #[test]
    fn trailing_dot_separates() {
        let toks = lex("?X ht tag.").unwrap();
        assert_eq!(toks.last(), Some(&Token::Dot));
        assert!(toks.contains(&Token::Ident("tag".into())));
    }

    #[test]
    fn bad_characters_error() {
        assert!(lex("SELECT @x").is_err());
        assert!(lex("? x").is_err());
        assert!(lex("FILTER(?v ! 3)").is_err());
        assert!(lex("[RANGE 10h]").is_err());
    }
}
