//! Execution-time abstractions: data access and literal resolution.
//!
//! The executor is written against [`GraphAccess`], so identical plans run
//! over a single-node store, the distributed Wukong+S engine (which adds
//! RDMA charges and the stream-index fast path), and the baselines.

use crate::ast::GraphName;
use wukong_net::TaskTimer;
use wukong_rdf::{Key, StreamId, Timestamp, Vid};
use wukong_store::SnapshotId;

/// A resolved window over one of the query's streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowInstance {
    /// The engine-wide stream identifier.
    pub stream: StreamId,
    /// Window start (inclusive).
    pub lo: Timestamp,
    /// Window end (inclusive).
    pub hi: Timestamp,
}

/// Everything one execution of a query needs besides the plan: the stable
/// snapshot for stored-graph reads and the concrete window of each stream
/// (indexed like [`crate::ast::Query::streams`]).
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// Stable snapshot number for stored-graph patterns (§4.3).
    pub sn: SnapshotId,
    /// Per-stream window instances.
    pub windows: Vec<WindowInstance>,
}

impl ExecContext {
    /// A context for purely stored-graph (one-shot) queries.
    pub fn stored(sn: SnapshotId) -> Self {
        ExecContext {
            sn,
            windows: Vec::new(),
        }
    }

    /// The window instance for a query-local stream index.
    pub fn window(&self, stream_idx: usize) -> WindowInstance {
        self.windows[stream_idx]
    }
}

/// Data-source reference carried by plan steps (mirrors
/// [`GraphName`] but named for its execution role).
pub type PatternSource = GraphName;

/// Read access to streaming and stored graph data.
///
/// Implementations decide *where* the data lives (local shard, remote
/// shard via one-sided read, stream index replica) and charge `timer`
/// accordingly; the executor only reasons about keys and windows.
pub trait GraphAccess {
    /// Appends the neighbours of `key` in `src` to `out`.
    ///
    /// For [`GraphName::Stored`], visibility is `ctx.sn`. For
    /// [`GraphName::Stream`], the result is the union of the stream's
    /// timeless data (via the stream index) and timing data (via the
    /// transient store) within the window.
    fn neighbors(
        &self,
        key: Key,
        src: PatternSource,
        ctx: &ExecContext,
        timer: &mut TaskTimer,
        out: &mut Vec<Vid>,
    );

    /// Estimated neighbour count of `key` in `src` (planner oracle).
    fn estimate(&self, key: Key, src: PatternSource, ctx: &ExecContext) -> usize;

    /// How many times `key`'s neighbour list in `src` contains `v`.
    ///
    /// Occurrence counts give SPARQL bag semantics: a duplicated edge
    /// multiplies result rows the same way regardless of the plan's join
    /// order. The default scans [`GraphAccess::neighbors`]; engines may
    /// override with an indexed test.
    fn count_occurrences(
        &self,
        key: Key,
        v: Vid,
        src: PatternSource,
        ctx: &ExecContext,
        timer: &mut TaskTimer,
    ) -> usize {
        let mut buf = Vec::new();
        self.neighbors(key, src, ctx, timer, &mut buf);
        buf.iter().filter(|&&x| x == v).count()
    }
}

/// [`GraphAccess`] that can also report *when* each edge arrived.
///
/// The incremental (delta-maintenance) executor tags every binding row
/// with the batch timestamps of its contributing stream edges, so that a
/// later firing can retract exactly the rows whose edges slid out of the
/// window. Implementations return one `(neighbour, timestamp)` pair per
/// edge *occurrence* — duplicated edges appear once per occurrence, which
/// is what preserves SPARQL bag semantics under delta maintenance.
///
/// Only [`GraphName::Stream`] sources are read through this trait (the
/// incremental classifier rejects stored-graph patterns); implementations
/// may tag stored edges with timestamp 0.
pub trait TimedGraphAccess: GraphAccess {
    /// Appends `(neighbour, batch timestamp)` pairs of `key` in `src`.
    fn neighbors_timed(
        &self,
        key: Key,
        src: PatternSource,
        ctx: &ExecContext,
        timer: &mut TaskTimer,
        out: &mut Vec<(Vid, Timestamp)>,
    );
}

/// Resolves entity IDs to numeric literal values for `FILTER` and
/// numeric aggregates.
pub trait LiteralResolver {
    /// The numeric value of `v`, if it denotes one.
    fn numeric(&self, v: Vid) -> Option<f64>;

    /// The display name of `v` (drives `ORDER BY`'s lexical comparison).
    fn display(&self, _v: Vid) -> Option<String> {
        None
    }
}

/// A resolver backed by the string server: an entity is numeric when its
/// name parses as a number (the workload generators intern sensor
/// readings by their decimal text).
pub struct StringLiteralResolver<'a>(pub &'a wukong_rdf::StringServer);

impl LiteralResolver for StringLiteralResolver<'_> {
    fn numeric(&self, v: Vid) -> Option<f64> {
        self.0.entity_name(v).ok()?.parse().ok()
    }

    fn display(&self, v: Vid) -> Option<String> {
        self.0.entity_name(v).ok()
    }
}

/// A resolver for tests and engines without string data: no entity is
/// numeric.
pub struct NoLiterals;

impl LiteralResolver for NoLiterals {
    fn numeric(&self, _v: Vid) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_literal_resolver_parses_numbers() {
        let ss = wukong_rdf::StringServer::new();
        let n = ss.intern_entity("12.5").unwrap();
        let e = ss.intern_entity("Logan").unwrap();
        let r = StringLiteralResolver(&ss);
        assert_eq!(r.numeric(n), Some(12.5));
        assert_eq!(r.numeric(e), None);
        assert_eq!(r.numeric(Vid(999_999)), None);
    }
}
