//! Graph-exploration plan execution.
//!
//! Executes a [`Plan`] step by step over a [`GraphAccess`], carrying a
//! [`BindingTable`]. Filters apply as soon as their variable binds, which
//! is the pruning the paper credits the integrated design for: the
//! composite design cannot push selectivity across the system boundary
//! (§2.3, Fig. 4).
//!
//! The step function is public so distribution drivers (the engine's
//! fork-join mode, the baselines' bolt pipelines) can interleave their own
//! partitioning and communication between steps.

use crate::ast::{AggFunc, Aggregate, Filter, Query, Term};
use crate::bindings::{BindingTable, UNBOUND};
use crate::exec::{ExecContext, GraphAccess, LiteralResolver};
use crate::plan::{Plan, Step, StepMode};
use wukong_net::TaskTimer;
use wukong_obs::{Stage, StageTrace};
use wukong_rdf::{Dir, Key, Vid};

/// The outcome of one query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Projected variable names, in `SELECT` order.
    pub var_names: Vec<String>,
    /// Projected rows. With `GROUP BY`, one row per group (the group
    /// keys), sorted for determinism.
    pub rows: Vec<Vec<Vid>>,
    /// Aggregate values, parallel to the query's aggregate list
    /// (`None` when no row contributed, e.g. `AVG` over no numerics).
    /// Empty when the query groups (see
    /// [`ResultSet::group_aggregates`]).
    pub aggregates: Vec<Option<f64>>,
    /// With `GROUP BY`: per-row aggregate values, parallel to `rows`.
    pub group_aggregates: Vec<Vec<Option<f64>>>,
    /// Nodes whose fork-join partitions never answered within the RPC
    /// retry budget — their rows are missing (graceful degradation under
    /// injected faults). Empty for complete answers.
    pub unreachable_shards: Vec<u16>,
    /// Nodes that were in the Quarantined state (a detected-corruption
    /// containment, DESIGN.md §13) while this result was produced. Their
    /// contributions are frozen at the pre-quarantine stable VTS until a
    /// rebuild-from-checkpoint restores them; like `unreachable_shards`,
    /// a non-empty list marks the answer as explicitly degraded rather
    /// than silently wrong.
    pub quarantined_shards: Vec<u16>,
    /// Exact staleness accounting when load shedding touched a window
    /// this execution consumed: `None` means the answer is complete with
    /// respect to everything ingested. Attached by the engine's overload
    /// manager — identically for the recompute and incremental paths —
    /// so a shed never produces a silently wrong answer.
    pub degraded: Option<Degraded>,
}

/// The staleness marker of a shed-affected execution (see
/// [`ResultSet::degraded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Degraded {
    /// Tuples shed (and not yet replayed) from batches inside the
    /// window instances this execution consumed.
    pub tuples_shed: u64,
    /// How many of the consumed window instances lost at least one tuple.
    pub windows_affected: u32,
    /// How many of the consumed window instances reached below a
    /// transient store's eviction watermark: the window fired so far
    /// behind stream time (an outage, a recovery replay, a clock jump)
    /// that data it would have read already aged out of the bounded
    /// ring. The answer is complete w.r.t. what is *retained*, and this
    /// marker says retention no longer covers the window.
    pub windows_aged: u32,
}

impl ResultSet {
    /// The canonical empty result: no rows, no aggregates, no degraded
    /// shards — only the projected variable names. Used wherever a query
    /// cannot or does not run (retired registrations, empty windows)
    /// instead of hand-rolling the literal.
    pub fn empty(var_names: Vec<String>) -> Self {
        ResultSet {
            var_names,
            rows: Vec::new(),
            aggregates: Vec::new(),
            group_aggregates: Vec::new(),
            unreachable_shards: Vec::new(),
            quarantined_shards: Vec::new(),
            degraded: None,
        }
    }

    /// Number of result rows (before aggregation).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

pub(crate) fn concrete(term: Term, row: &[Vid]) -> Option<Vid> {
    match term {
        Term::Const(c) => Some(c),
        Term::Var(v) => {
            let val = row[v as usize];
            (val != UNBOUND).then_some(val)
        }
    }
}

/// Executes one step, producing the expanded binding table.
pub fn execute_step(
    step: &Step,
    input: &BindingTable,
    ctx: &ExecContext,
    access: &impl GraphAccess,
    timer: &mut TaskTimer,
) -> BindingTable {
    let mut out = BindingTable::empty(input.width());
    let p = &step.pattern;
    let mut buf: Vec<Vid> = Vec::new();

    match step.mode {
        StepMode::FromSubject | StepMode::FromObject => {
            let (anchor_term, target_term, dir) = if step.mode == StepMode::FromSubject {
                (p.s, p.o, Dir::Out)
            } else {
                (p.o, p.s, Dir::In)
            };
            for row in input.iter() {
                let anchor = match concrete(anchor_term, row) {
                    Some(v) => v,
                    // The planner anchors only on concrete sides; an
                    // unbound anchor means an upstream bug — drop the row.
                    None => continue,
                };
                let key = Key::new(anchor, p.p, dir);
                match concrete(target_term, row) {
                    Some(t) => {
                        for _ in 0..access.count_occurrences(key, t, p.graph, ctx, timer) {
                            out.push_row(row);
                        }
                    }
                    None => {
                        let var = target_term.var().expect("non-concrete term is a var");
                        buf.clear();
                        access.neighbors(key, p.graph, ctx, timer, &mut buf);
                        for &n in &buf {
                            out.push_bound(row, var, n);
                        }
                    }
                }
            }
        }
        StepMode::IndexScan => {
            // Enumerate subjects from the predicate index, then expand
            // each subject to its objects. The index is duplicate-free on
            // the persistent store but only per-slice on transient
            // windows, so deduplicate before expanding.
            let mut subjects: Vec<Vid> = Vec::new();
            access.neighbors(
                Key::index(p.p, Dir::Out),
                p.graph,
                ctx,
                timer,
                &mut subjects,
            );
            subjects.sort_unstable();
            subjects.dedup();
            let s_var = p.s.var();
            for row in input.iter() {
                for &s in &subjects {
                    // If the pattern subject is a bound var, honour it.
                    if let Some(bound_s) = concrete(p.s, row) {
                        if bound_s != s {
                            continue;
                        }
                    }
                    let key = Key::new(s, p.p, Dir::Out);
                    match concrete(p.o, row) {
                        Some(t) => {
                            for _ in 0..access.count_occurrences(key, t, p.graph, ctx, timer) {
                                match s_var {
                                    Some(v) if row[v as usize] == UNBOUND => {
                                        out.push_bound(row, v, s)
                                    }
                                    _ => out.push_row(row),
                                }
                            }
                        }
                        None => {
                            let o_var = p.o.var().expect("non-concrete term is a var");
                            buf.clear();
                            access.neighbors(key, p.graph, ctx, timer, &mut buf);
                            for &n in &buf {
                                let mut tmp = row.to_vec();
                                if let Some(v) = s_var {
                                    if tmp[v as usize] == UNBOUND {
                                        tmp[v as usize] = s;
                                    }
                                }
                                // Repeated variable (`?X p ?X`): both
                                // positions must agree.
                                if s_var == Some(o_var) && tmp[o_var as usize] != n {
                                    continue;
                                }
                                tmp[o_var as usize] = n;
                                out.push_row(&tmp);
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Applies every not-yet-applied filter whose variable is now bound.
///
/// `applied` tracks filter state across steps; exposed so distribution
/// drivers (fork-join, baselines) can prune between their own stages.
pub fn apply_ready_filters(
    table: &mut BindingTable,
    filters: &[Filter],
    applied: &mut [bool],
    lit: &impl LiteralResolver,
) {
    for (i, f) in filters.iter().enumerate() {
        if applied[i] {
            continue;
        }
        // A filter is ready once every row binds its variable. Rows bind
        // variables uniformly per step, so checking the first row suffices.
        let ready = table
            .iter()
            .next()
            .map(|r| r[f.var as usize] != UNBOUND)
            .unwrap_or(false);
        if ready {
            table.retain(|row| {
                lit.numeric(row[f.var as usize])
                    .map(|v| f.accepts(v))
                    .unwrap_or(false)
            });
            applied[i] = true;
        }
    }
}

fn aggregate_rows<'a>(
    rows: impl Iterator<Item = &'a [Vid]> + Clone,
    aggs: &[Aggregate],
    lit: &impl LiteralResolver,
) -> Vec<Option<f64>> {
    aggs.iter()
        .map(|a| {
            if a.func == AggFunc::Count {
                return Some(rows.clone().count() as f64);
            }
            let vals: Vec<f64> = rows
                .clone()
                .filter_map(|r| lit.numeric(r[a.var as usize]))
                .collect();
            if vals.is_empty() {
                return None;
            }
            Some(match a.func {
                AggFunc::Count => unreachable!("handled above"),
                AggFunc::Sum => vals.iter().sum(),
                AggFunc::Avg => vals.iter().sum::<f64>() / vals.len() as f64,
                AggFunc::Min => vals.iter().cloned().fold(f64::INFINITY, f64::min),
                AggFunc::Max => vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            })
        })
        .collect()
}

/// Turns a final binding table into the projected [`ResultSet`]: applies
/// any filters that never became "ready" (variables that never bound fail
/// every row), computes aggregates and projects the `SELECT` columns.
pub fn finalize(
    query: &Query,
    mut table: BindingTable,
    applied: &[bool],
    lit: &impl LiteralResolver,
) -> ResultSet {
    // Canonicalize the binding-row order before projecting: the in-place,
    // fork-join, and incremental strategies produce the same multiset of
    // rows in different orders, and projection order, float-aggregation
    // order, and LIMIT truncation all observe it.
    table.sort_rows();
    if applied.iter().any(|a| !a) && !query.filters.is_empty() && !table.is_empty() {
        let unappl: Vec<&Filter> = query
            .filters
            .iter()
            .zip(applied)
            .filter(|(_, a)| !**a)
            .map(|(f, _)| f)
            .collect();
        table.retain(|row| {
            unappl.iter().all(|f| {
                let v = row[f.var as usize];
                v != UNBOUND && lit.numeric(v).map(|x| f.accepts(x)).unwrap_or(false)
            })
        });
    }

    let var_names: Vec<String> = query
        .select
        .iter()
        .map(|&v| query.var_names[v as usize].clone())
        .collect();

    if !query.group_by.is_empty() {
        // Group rows by the GROUP BY key; aggregates compute per group.
        let mut groups: std::collections::BTreeMap<Vec<Vid>, Vec<&[Vid]>> =
            std::collections::BTreeMap::new();
        for row in table.iter() {
            let key: Vec<Vid> = query.group_by.iter().map(|&v| row[v as usize]).collect();
            groups.entry(key).or_default().push(row);
        }
        let mut rows = Vec::with_capacity(groups.len());
        let mut group_aggregates = Vec::with_capacity(groups.len());
        for (key, members) in groups {
            // Projection re-derives select values from the key order.
            let projected: Vec<Vid> = query
                .select
                .iter()
                .map(|v| {
                    let pos = query
                        .group_by
                        .iter()
                        .position(|g| g == v)
                        .expect("select ⊆ group_by is parser-enforced");
                    key[pos]
                })
                .collect();
            rows.push(projected);
            group_aggregates.push(aggregate_rows(
                members.iter().copied(),
                &query.aggregates,
                lit,
            ));
        }
        if let Some(n) = query.limit {
            rows.truncate(n);
            group_aggregates.truncate(n);
        }
        return ResultSet {
            var_names,
            rows,
            aggregates: Vec::new(),
            group_aggregates,
            unreachable_shards: Vec::new(),
            quarantined_shards: Vec::new(),
            degraded: None,
        };
    }

    let aggregates = aggregate_rows(table.iter(), &query.aggregates, lit);
    let mut rows: Vec<Vec<Vid>> = table
        .iter()
        .map(|r| query.select.iter().map(|&v| r[v as usize]).collect())
        .collect();
    if query.distinct {
        rows.sort();
        rows.dedup();
    }
    if !query.order_by.is_empty() {
        // SPARQL ordering: numeric when the value is a number, otherwise
        // lexical by display name, otherwise by ID; unbound sorts last.
        let key_of = |v: Vid| -> (u8, f64, String, u64) {
            if v == UNBOUND {
                return (3, 0.0, String::new(), u64::MAX);
            }
            if let Some(n) = lit.numeric(v) {
                (0, n, String::new(), v.0)
            } else if let Some(s) = lit.display(v) {
                (1, 0.0, s, v.0)
            } else {
                (2, 0.0, String::new(), v.0)
            }
        };
        let sel_pos = |var: u8| query.select.iter().position(|&s| s == var);
        rows.sort_by(|a, b| {
            for &(var, desc) in &query.order_by {
                let Some(col) = sel_pos(var) else { continue };
                let ka = key_of(a[col]);
                let kb = key_of(b[col]);
                let ord = ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(n) = query.limit {
        rows.truncate(n);
    }
    ResultSet {
        var_names,
        rows,
        aggregates,
        group_aggregates: Vec::new(),
        unreachable_shards: Vec::new(),
        quarantined_shards: Vec::new(),
        degraded: None,
    }
}

/// Applies the query's `OPTIONAL` block to `table`: rows that match the
/// optional patterns extend with the new bindings; rows that do not are
/// kept unchanged (left outer join).
pub fn apply_optional(
    query: &Query,
    table: BindingTable,
    ctx: &ExecContext,
    access: &impl GraphAccess,
    timer: &mut TaskTimer,
) -> BindingTable {
    if query.optional.is_empty() || table.is_empty() {
        return table;
    }
    // Plan the optional patterns with the required variables pre-bound.
    let mut bound = vec![false; query.var_count as usize];
    for p in &query.patterns {
        for t in [p.s, p.o] {
            if let crate::ast::Term::Var(v) = t {
                bound[v as usize] = true;
            }
        }
    }
    let plan = crate::planner::plan_patterns(&query.optional, &bound, access, ctx);

    let mut out = BindingTable::empty(table.width());
    for row in table.iter() {
        let mut sub = BindingTable::empty(table.width());
        sub.push_row(row);
        for step in &plan.steps {
            sub = execute_step(step, &sub, ctx, access, timer);
            if sub.is_empty() {
                break;
            }
        }
        if sub.is_empty() {
            out.push_row(row);
        } else {
            for r in sub.iter() {
                out.push_row(r);
            }
        }
    }
    out
}

/// Applies the query's `UNION` groups to `table`: each group joins the
/// required bindings independently; results concatenate (bag union).
pub fn apply_union(
    query: &Query,
    table: BindingTable,
    ctx: &ExecContext,
    access: &impl GraphAccess,
    timer: &mut TaskTimer,
) -> BindingTable {
    if query.union_groups.is_empty() || table.is_empty() {
        return table;
    }
    let mut bound = vec![false; query.var_count as usize];
    for p in &query.patterns {
        for t in [p.s, p.o] {
            if let crate::ast::Term::Var(v) = t {
                bound[v as usize] = true;
            }
        }
    }
    let mut out = BindingTable::empty(table.width());
    for group in &query.union_groups {
        let plan = crate::planner::plan_patterns(group, &bound, access, ctx);
        let mut branch = table.clone();
        for step in &plan.steps {
            branch = execute_step(step, &branch, ctx, access, timer);
            if branch.is_empty() {
                break;
            }
        }
        for row in branch.iter() {
            out.push_row(row);
        }
    }
    out
}

/// Applies the query's `FILTER NOT EXISTS` groups: a row survives only
/// when no group matches under its bindings.
pub fn apply_not_exists(
    query: &Query,
    table: BindingTable,
    ctx: &ExecContext,
    access: &impl GraphAccess,
    timer: &mut TaskTimer,
) -> BindingTable {
    if query.not_exists.is_empty() || table.is_empty() {
        return table;
    }
    let mut bound = vec![false; query.var_count as usize];
    for p in query
        .patterns
        .iter()
        .chain(query.union_groups.iter().flatten())
    {
        for t in [p.s, p.o] {
            if let crate::ast::Term::Var(v) = t {
                bound[v as usize] = true;
            }
        }
    }
    let plans: Vec<Plan> = query
        .not_exists
        .iter()
        .map(|g| crate::planner::plan_patterns(g, &bound, access, ctx))
        .collect();

    let mut out = BindingTable::empty(table.width());
    'rows: for row in table.iter() {
        for plan in &plans {
            let mut sub = BindingTable::empty(table.width());
            sub.push_row(row);
            for step in &plan.steps {
                sub = execute_step(step, &sub, ctx, access, timer);
                if sub.is_empty() {
                    break;
                }
            }
            if !sub.is_empty() {
                continue 'rows; // a witness exists: the row is filtered out
            }
        }
        out.push_row(row);
    }
    out
}

/// Executes a full plan for `query`, returning the projected results.
pub fn execute(
    query: &Query,
    plan: &Plan,
    ctx: &ExecContext,
    access: &impl GraphAccess,
    lit: &impl LiteralResolver,
    timer: &mut TaskTimer,
) -> ResultSet {
    let mut trace = StageTrace::new();
    execute_traced(query, plan, ctx, access, lit, timer, &mut trace)
}

/// [`execute`] with staged latency attribution: the matching phase (step
/// loop, UNION, NOT EXISTS, OPTIONAL) lands in [`Stage::PatternMatch`]
/// and projection/aggregation in [`Stage::ResultEmit`]. Spans are deltas
/// of the timer's *total* (real + charged virtual) time, so they add up
/// to the latency the engine reports.
pub fn execute_traced(
    query: &Query,
    plan: &Plan,
    ctx: &ExecContext,
    access: &impl GraphAccess,
    lit: &impl LiteralResolver,
    timer: &mut TaskTimer,
    trace: &mut StageTrace,
) -> ResultSet {
    let mut fanout = Vec::new();
    execute_with_fanout(query, plan, ctx, access, lit, timer, trace, &mut fanout)
}

/// [`execute_traced`], additionally recording the per-step cardinality
/// feedback the adaptive planner consumes: for every main-loop step, the
/// binding-table sizes `(input_rows, output_rows)` measured *before*
/// filters prune the step's output — the raw fan-out comparable to
/// `Step::estimate`. `fanout` is cleared first and gets exactly one
/// entry per plan step (steps skipped by the empty-table short-circuit
/// report `(0, 0)`).
#[allow(clippy::too_many_arguments)]
pub fn execute_with_fanout(
    query: &Query,
    plan: &Plan,
    ctx: &ExecContext,
    access: &impl GraphAccess,
    lit: &impl LiteralResolver,
    timer: &mut TaskTimer,
    trace: &mut StageTrace,
    fanout: &mut Vec<(u64, u64)>,
) -> ResultSet {
    let mut table = BindingTable::seed(query.var_count as usize);
    let mut applied = vec![false; query.filters.len()];
    let t0 = timer.total_ns();

    let match_span = wukong_obs::trace::scoped_span(Stage::PatternMatch);
    fanout.clear();
    fanout.resize(plan.steps.len(), (0, 0));
    for (si, step) in plan.steps.iter().enumerate() {
        let in_rows = table.len() as u64;
        table = execute_step(step, &table, ctx, access, timer);
        fanout[si] = (in_rows, table.len() as u64);
        apply_ready_filters(&mut table, &query.filters, &mut applied, lit);
        if table.is_empty() {
            break;
        }
    }

    table = apply_union(query, table, ctx, access, timer);
    apply_ready_filters(&mut table, &query.filters, &mut applied, lit);
    table = apply_not_exists(query, table, ctx, access, timer);
    table = apply_optional(query, table, ctx, access, timer);
    drop(match_span);
    let matched = timer.total_ns();
    trace.add(Stage::PatternMatch, matched.saturating_sub(t0));
    let emit_span = wukong_obs::trace::scoped_span(Stage::ResultEmit);
    let out = finalize(query, table, &applied, lit);
    drop(emit_span);
    trace.add(Stage::ResultEmit, timer.total_ns().saturating_sub(matched));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{NoLiterals, PatternSource, StringLiteralResolver};
    use crate::parse_query;
    use crate::planner::plan_query;
    use wukong_rdf::{StringServer, Triple};
    use wukong_store::{BaseStore, SnapshotId};

    /// GraphAccess over a single local BaseStore (stored graph only; the
    /// stream path is tested through the engine in `wukong-core`).
    struct LocalAccess<'a>(&'a BaseStore);

    impl GraphAccess for LocalAccess<'_> {
        fn neighbors(
            &self,
            key: Key,
            _src: PatternSource,
            ctx: &ExecContext,
            _timer: &mut TaskTimer,
            out: &mut Vec<Vid>,
        ) {
            self.0.for_each_neighbor(key, ctx.sn, |v| out.push(v));
        }

        fn estimate(&self, key: Key, _src: PatternSource, ctx: &ExecContext) -> usize {
            self.0.len_at(key, ctx.sn)
        }
    }

    /// Builds the Fig. 1 stored graph (X-Lab).
    fn x_lab(ss: &StringServer) -> BaseStore {
        let mut st = BaseStore::new();
        let mut add = |s: &str, p: &str, o: &str| {
            st.insert_base(Triple::new(
                ss.intern_entity(s).unwrap(),
                ss.intern_predicate(p).unwrap(),
                ss.intern_entity(o).unwrap(),
            ));
        };
        add("Logan", "fo", "Erik");
        add("Erik", "fo", "Logan");
        add("Logan", "po", "T-13");
        add("Logan", "po", "T-14");
        add("Erik", "po", "T-12");
        add("T-12", "ht", "#sosp17");
        add("T-13", "ht", "#sosp17");
        add("Erik", "li", "T-13");
        st
    }

    fn run(ss: &StringServer, st: &BaseStore, text: &str) -> ResultSet {
        let q = parse_query(ss, text).unwrap();
        let access = LocalAccess(st);
        let ctx = ExecContext::stored(SnapshotId::BASE);
        let plan = plan_query(&q, &access, &ctx);
        let mut timer = TaskTimer::start();
        execute(&q, &plan, &ctx, &access, &NoLiterals, &mut timer)
    }

    #[test]
    fn fig2_oneshot_returns_t13() {
        // QS: tweets posted by Logan with hashtag #sosp17 liked by Erik.
        let ss = StringServer::new();
        let st = x_lab(&ss);
        let rs = run(
            &ss,
            &st,
            "SELECT ?X WHERE { Logan po ?X . ?X ht #sosp17 . Erik li ?X }",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], ss.entity_id("T-13").unwrap());
    }

    #[test]
    fn join_across_patterns() {
        // Who follows someone who posted a #sosp17 tweet?
        let ss = StringServer::new();
        let st = x_lab(&ss);
        let rs = run(
            &ss,
            &st,
            "SELECT ?X ?Y WHERE { ?X fo ?Y . ?Y po ?Z . ?Z ht #sosp17 }",
        );
        // Logan→Erik (T-12) and Erik→Logan (T-13).
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn const_object_anchor() {
        let ss = StringServer::new();
        let st = x_lab(&ss);
        let rs = run(&ss, &st, "SELECT ?X WHERE { ?X ht #sosp17 }");
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn empty_result_when_no_match() {
        let ss = StringServer::new();
        let st = x_lab(&ss);
        let rs = run(&ss, &st, "SELECT ?X WHERE { Thor po ?X }");
        assert!(rs.is_empty());
    }

    #[test]
    fn count_aggregate() {
        let ss = StringServer::new();
        let st = x_lab(&ss);
        let rs = run(&ss, &st, "SELECT COUNT(?X) WHERE { Logan po ?X }");
        assert_eq!(rs.aggregates, vec![Some(2.0)]);
    }

    #[test]
    fn numeric_filter_and_avg() {
        let ss = StringServer::new();
        let mut st = BaseStore::new();
        let density = ss.intern_predicate("density").unwrap();
        for (sensor, val) in [("s1", "10"), ("s2", "30"), ("s3", "50")] {
            st.insert_base(Triple::new(
                ss.intern_entity(sensor).unwrap(),
                density,
                ss.intern_entity(val).unwrap(),
            ));
        }
        let q = parse_query(
            &ss,
            "SELECT AVG(?v) WHERE { ?s density ?v FILTER(?v > 15) }",
        )
        .unwrap();
        let access = LocalAccess(&st);
        let ctx = ExecContext::stored(SnapshotId::BASE);
        let plan = plan_query(&q, &access, &ctx);
        let mut timer = TaskTimer::start();
        let rs = execute(
            &q,
            &plan,
            &ctx,
            &access,
            &StringLiteralResolver(&ss),
            &mut timer,
        );
        assert_eq!(rs.aggregates, vec![Some(40.0)]);
    }

    #[test]
    fn distinct_dedups_and_limit_truncates() {
        let ss = StringServer::new();
        let st = x_lab(&ss);
        // Two tagged tweets → 2 rows plain, 1 distinct tag.
        let rs = run(&ss, &st, "SELECT DISTINCT ?T WHERE { ?X ht ?T }");
        assert_eq!(rs.rows.len(), 1);
        let rs = run(&ss, &st, "SELECT ?T WHERE { ?X ht ?T } LIMIT 1");
        assert_eq!(rs.rows.len(), 1);
        let rs = run(&ss, &st, "SELECT ?T WHERE { ?X ht ?T } LIMIT 0");
        assert!(rs.is_empty());
    }

    #[test]
    fn not_exists_filters_witnessed_rows() {
        // Logan's posts that Erik has NOT liked.
        let ss = StringServer::new();
        let st = x_lab(&ss);
        let rs = run(
            &ss,
            &st,
            "SELECT ?X WHERE { Logan po ?X FILTER NOT EXISTS { Erik li ?X } }",
        );
        // Logan posted T-13 (liked by Erik) and T-14 (not liked).
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], ss.entity_id("T-14").unwrap());

        // A never-matching group filters nothing.
        let rs = run(
            &ss,
            &st,
            "SELECT ?X WHERE { Logan po ?X FILTER NOT EXISTS { ?X nosuch ?Y } }",
        );
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn union_is_bag_union_of_alternatives() {
        // Tweets by Logan that are tagged OR liked by Erik.
        let ss = StringServer::new();
        let st = x_lab(&ss);
        let rs = run(
            &ss,
            &st,
            "SELECT ?X WHERE { Logan po ?X UNION { ?X ht #sosp17 } UNION { Erik li ?X } }",
        );
        // Logan posted T-13 (tagged AND liked → twice) and T-14 (neither).
        let t13 = ss.entity_id("T-13").unwrap();
        assert_eq!(rs.rows.iter().filter(|r| r[0] == t13).count(), 2);
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn order_by_sorts_numerically_then_lexically() {
        let ss = StringServer::new();
        let mut st = BaseStore::new();
        let val = ss.intern_predicate("val").unwrap();
        for (s0, v) in [("a", "30"), ("b", "7"), ("c", "100")] {
            st.insert_base(Triple::new(
                ss.intern_entity(s0).unwrap(),
                val,
                ss.intern_entity(v).unwrap(),
            ));
        }
        let q = parse_query(&ss, "SELECT ?S ?V WHERE { ?S val ?V } ORDER BY ?V").unwrap();
        let access = LocalAccess(&st);
        let ctx = ExecContext::stored(SnapshotId::BASE);
        let plan = plan_query(&q, &access, &ctx);
        let mut timer = TaskTimer::start();
        let rs = execute(
            &q,
            &plan,
            &ctx,
            &access,
            &StringLiteralResolver(&ss),
            &mut timer,
        );
        let vals: Vec<String> = rs
            .rows
            .iter()
            .map(|r| ss.entity_name(r[1]).unwrap())
            .collect();
        assert_eq!(vals, ["7", "30", "100"], "numeric, not lexical");

        // DESC + LIMIT = top-k.
        let q = parse_query(
            &ss,
            "SELECT ?S ?V WHERE { ?S val ?V } ORDER BY DESC(?V) LIMIT 1",
        )
        .unwrap();
        let plan = plan_query(&q, &access, &ctx);
        let rs = execute(
            &q,
            &plan,
            &ctx,
            &access,
            &StringLiteralResolver(&ss),
            &mut timer,
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(ss.entity_name(rs.rows[0][1]).unwrap(), "100");

        // Lexical ordering of non-numeric names.
        let q = parse_query(&ss, "SELECT ?S WHERE { ?S val ?V } ORDER BY ?S").unwrap();
        let plan = plan_query(&q, &access, &ctx);
        let rs = execute(
            &q,
            &plan,
            &ctx,
            &access,
            &StringLiteralResolver(&ss),
            &mut timer,
        );
        let names: Vec<String> = rs
            .rows
            .iter()
            .map(|r| ss.entity_name(r[0]).unwrap())
            .collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn optional_is_left_outer_join() {
        // Every poster, with their hashtag when the tweet has one.
        let ss = StringServer::new();
        let st = x_lab(&ss);
        let rs = run(
            &ss,
            &st,
            "SELECT ?X ?T WHERE { Logan po ?X OPTIONAL { ?X ht ?T } }",
        );
        // Logan posted T-13 (tagged #sosp17) and T-14 (untagged).
        assert_eq!(rs.rows.len(), 2);
        let tag = ss.entity_id("#sosp17").unwrap();
        let t13 = ss.entity_id("T-13").unwrap();
        let t14 = ss.entity_id("T-14").unwrap();
        assert!(rs.rows.contains(&vec![t13, tag]));
        assert!(rs
            .rows
            .iter()
            .any(|r| r[0] == t14 && r[1] == crate::bindings::UNBOUND));
    }

    #[test]
    fn optional_with_no_matches_keeps_all_rows() {
        let ss = StringServer::new();
        let st = x_lab(&ss);
        let rs = run(
            &ss,
            &st,
            "SELECT ?X ?W WHERE { Logan po ?X OPTIONAL { ?X nosuchpred ?W } }",
        );
        assert_eq!(rs.rows.len(), 2);
        assert!(rs.rows.iter().all(|r| r[1] == crate::bindings::UNBOUND));
    }

    #[test]
    fn group_by_computes_per_group_aggregates() {
        let ss = StringServer::new();
        let mut st = BaseStore::new();
        let density = ss.intern_predicate("density").unwrap();
        for (sensor, val) in [("s1", "10"), ("s1", "30"), ("s2", "50")] {
            st.insert_base(Triple::new(
                ss.intern_entity(sensor).unwrap(),
                density,
                ss.intern_entity(val).unwrap(),
            ));
        }
        let q = parse_query(
            &ss,
            "SELECT ?S AVG(?V) COUNT(?V) WHERE { ?S density ?V } GROUP BY ?S",
        )
        .unwrap();
        let access = LocalAccess(&st);
        let ctx = ExecContext::stored(SnapshotId::BASE);
        let plan = plan_query(&q, &access, &ctx);
        let mut timer = TaskTimer::start();
        let rs = execute(
            &q,
            &plan,
            &ctx,
            &access,
            &StringLiteralResolver(&ss),
            &mut timer,
        );
        assert_eq!(rs.rows.len(), 2);
        assert!(rs.aggregates.is_empty());
        let s1 = ss.entity_id("s1").unwrap();
        let i = rs.rows.iter().position(|r| r[0] == s1).expect("s1 group");
        assert_eq!(rs.group_aggregates[i], vec![Some(20.0), Some(2.0)]);
        assert_eq!(rs.group_aggregates[1 - i], vec![Some(50.0), Some(1.0)]);
    }

    #[test]
    fn repeated_variable_self_loop_pattern() {
        // `?X p ?X` must bind only self-loops (regression: the index-scan
        // expansion used to overwrite the shared slot).
        let ss = StringServer::new();
        let mut st = BaseStore::new();
        let p = ss.intern_predicate("p").unwrap();
        let a = ss.intern_entity("a").unwrap();
        let b = ss.intern_entity("b").unwrap();
        st.insert_base(Triple::new(a, p, b));
        st.insert_base(Triple::new(b, p, b));
        let rs = run(&ss, &st, "SELECT ?X WHERE { ?X p ?X }");
        assert_eq!(rs.rows, vec![vec![b]]);
    }

    #[test]
    fn empty_constructor_matches_finalize_of_empty_table() {
        let ss = StringServer::new();
        let q = parse_query(&ss, "SELECT ?X ?Y WHERE { ?X fo ?Y }").unwrap();
        let empty = ResultSet::empty(vec!["X".into(), "Y".into()]);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        let finalized = finalize(
            &q,
            BindingTable::empty(q.var_count as usize),
            &[],
            &NoLiterals,
        );
        assert_eq!(empty, finalized);
    }

    #[test]
    fn cyclic_pattern_contains_check() {
        // Mutual follow: ?X fo ?Y . ?Y fo ?X — second step is a
        // contains-check on two bound vars.
        let ss = StringServer::new();
        let st = x_lab(&ss);
        let rs = run(&ss, &st, "SELECT ?X ?Y WHERE { ?X fo ?Y . ?Y fo ?X }");
        assert_eq!(rs.rows.len(), 2); // (Logan,Erik) and (Erik,Logan)
    }
}
