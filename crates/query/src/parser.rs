//! Recursive-descent parser for the C-SPARQL subset.
//!
//! Handles the two query shapes of the paper's Fig. 2 — one-shot SPARQL
//! and `REGISTER QUERY` continuous queries with per-stream windows — plus
//! `FILTER` and aggregates for the CityBench workload.

use crate::ast::{
    AggFunc, Aggregate, CmpOp, Filter, GraphName, Query, QueryKind, Term, TriplePattern, WindowSpec,
};
use crate::error::QueryError;
use crate::lexer::{lex, Token};
use std::collections::HashMap;
use wukong_rdf::StringServer;

struct Parser<'a> {
    toks: Vec<Token>,
    pos: usize,
    ss: &'a StringServer,
    vars: HashMap<String, u8>,
    var_names: Vec<String>,
    /// `PREFIX ns: <iri>` declarations, applied to `ns:local` names.
    prefixes: HashMap<String, String>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, expected: &str) -> QueryError {
        QueryError::Syntax {
            at: self
                .peek()
                .map(|t| format!("{t:?}"))
                .unwrap_or_else(|| "<end>".into()),
            expected: expected.into(),
        }
    }

    /// Consumes an identifier equal (case-insensitively) to `kw`.
    fn expect_kw(&mut self, kw: &str) -> Result<(), QueryError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(kw))
            }
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_tok(&mut self, t: &Token, what: &str) -> Result<(), QueryError> {
        match self.next() {
            Some(ref got) if got == t => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(what))
            }
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, QueryError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(what))
            }
        }
    }

    fn var_id(&mut self, name: &str) -> u8 {
        if let Some(&id) = self.vars.get(name) {
            return id;
        }
        let id = self.vars.len() as u8;
        self.vars.insert(name.to_owned(), id);
        self.var_names.push(name.to_owned());
        id
    }

    /// Expands `ns:local` through the declared prefixes.
    fn expand(&self, name: &str) -> String {
        if let Some((ns, local)) = name.split_once(':') {
            if let Some(iri) = self.prefixes.get(ns) {
                return format!("{iri}{local}");
            }
        }
        name.to_owned()
    }

    fn term(&mut self) -> Result<Term, QueryError> {
        match self.next() {
            Some(Token::Var(v)) => Ok(Term::Var(self.var_id(&v))),
            Some(Token::Ident(s)) => {
                let name = self.expand(&s);
                Ok(Term::Const(
                    self.ss
                        .intern_entity(&name)
                        .map_err(|e| QueryError::Unresolved(e.to_string()))?,
                ))
            }
            Some(Token::Number(n)) => {
                // Numeric constants appear as object terms (sensor values);
                // they are interned by their canonical text.
                let text = if n.fract() == 0.0 {
                    format!("{}", n as i64)
                } else {
                    format!("{n}")
                };
                Ok(Term::Const(
                    self.ss
                        .intern_entity(&text)
                        .map_err(|e| QueryError::Unresolved(e.to_string()))?,
                ))
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("term (variable or constant)"))
            }
        }
    }

    fn window(&mut self) -> Result<WindowSpec, QueryError> {
        self.expect_tok(&Token::LBracket, "[")?;
        self.expect_kw("RANGE")?;
        let range_ms = match self.next() {
            Some(Token::Duration(d)) => d,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("duration (e.g. 10s)"));
            }
        };
        self.expect_kw("STEP")?;
        let step_ms = match self.next() {
            Some(Token::Duration(d)) => d,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("duration (e.g. 1s)"));
            }
        };
        self.expect_tok(&Token::RBracket, "]")?;
        if range_ms == 0 || step_ms == 0 {
            return Err(QueryError::Unsupported(
                "window RANGE and STEP must be positive".into(),
            ));
        }
        Ok(WindowSpec { range_ms, step_ms })
    }

    fn agg_func(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    fn filter(&mut self, filters: &mut Vec<Filter>) -> Result<(), QueryError> {
        // `FILTER` keyword already consumed.
        self.expect_tok(&Token::LParen, "(")?;
        let var = match self.next() {
            Some(Token::Var(v)) => self.var_id(&v),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("filtered variable"));
            }
        };
        let op = match self.next() {
            Some(Token::Cmp(op)) => match op.as_str() {
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                "=" => CmpOp::Eq,
                "!=" => CmpOp::Ne,
                _ => return Err(self.err("comparison operator")),
            },
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("comparison operator"));
            }
        };
        let value = match self.next() {
            Some(Token::Number(n)) => n,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("numeric constant"));
            }
        };
        self.expect_tok(&Token::RParen, ")")?;
        filters.push(Filter { var, op, value });
        Ok(())
    }

    /// Parses patterns (and FILTERs) until `}`; `graph` applies to each.
    fn pattern_block(
        &mut self,
        graph: GraphName,
        patterns: &mut Vec<TriplePattern>,
        filters: &mut Vec<Filter>,
    ) -> Result<(), QueryError> {
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.next();
                    return Ok(());
                }
                Some(Token::Dot) => {
                    self.next();
                }
                Some(Token::Ident(s)) if s.eq_ignore_ascii_case("FILTER") => {
                    self.next();
                    self.filter(filters)?;
                }
                None => return Err(self.err("} to close pattern block")),
                _ => {
                    let s = self.term()?;
                    let p = match self.next() {
                        Some(Token::Ident(p)) => {
                            let name = self.expand(&p);
                            self.ss
                                .intern_predicate(&name)
                                .map_err(|e| QueryError::Unresolved(e.to_string()))?
                        }
                        Some(Token::Var(_)) => {
                            return Err(QueryError::Unsupported(
                                "variable predicates are not supported".into(),
                            ))
                        }
                        _ => {
                            self.pos = self.pos.saturating_sub(1);
                            return Err(self.err("predicate"));
                        }
                    };
                    let o = self.term()?;
                    patterns.push(TriplePattern { s, p, o, graph });
                }
            }
        }
    }
}

/// Parses a C-SPARQL query, resolving names through `ss`.
///
/// # Examples
///
/// ```
/// use wukong_rdf::StringServer;
/// use wukong_query::parse_query;
///
/// let ss = StringServer::new();
/// let q = parse_query(
///     &ss,
///     "REGISTER QUERY qc SELECT ?X ?Y ?Z \
///      FROM Tweet_Stream [RANGE 10s STEP 1s] \
///      FROM Like_Stream [RANGE 5s STEP 1s] \
///      FROM X-Lab \
///      WHERE { GRAPH Tweet_Stream { ?X po ?Z } \
///              GRAPH X-Lab { ?X fo ?Y } \
///              GRAPH Like_Stream { ?Y li ?Z } }",
/// )
/// .unwrap();
/// assert_eq!(q.streams.len(), 2);
/// assert_eq!(q.patterns.len(), 3);
/// ```
pub fn parse_query(ss: &StringServer, text: &str) -> Result<Query, QueryError> {
    let mut p = Parser {
        toks: lex(text)?,
        pos: 0,
        ss,
        vars: HashMap::new(),
        var_names: Vec::new(),
        prefixes: HashMap::new(),
    };

    // PREFIX declarations (`PREFIX sib: <http://…/>`). The lexer folds a
    // `ns:` identifier and the bracketed IRI into two Ident tokens.
    while p.at_kw("PREFIX") {
        p.next();
        let ns = p.ident("namespace (e.g. sib:)")?;
        let ns = ns.strip_suffix(':').unwrap_or(&ns).to_owned();
        let iri = p.ident("IRI for the prefix")?;
        p.prefixes.insert(ns, iri);
    }

    // Optional REGISTER QUERY <name> [AS]. (group_by parsed after WHERE.)
    let mut name = None;
    let mut kind = QueryKind::OneShot;
    if p.at_kw("REGISTER") {
        p.next();
        p.expect_kw("QUERY")?;
        name = Some(p.ident("query name")?);
        if p.at_kw("AS") {
            p.next();
        }
        kind = QueryKind::Continuous;
    }

    // CONSTRUCT { template } or SELECT clause.
    let mut construct: Vec<crate::ast::ConstructTemplate> = Vec::new();
    let mut distinct = false;
    let mut select = Vec::new();
    let mut aggregates = Vec::new();
    if p.at_kw("CONSTRUCT") {
        p.next();
        p.expect_tok(&Token::LBrace, "{")?;
        loop {
            match p.peek() {
                Some(Token::RBrace) => {
                    p.next();
                    break;
                }
                Some(Token::Dot) => {
                    p.next();
                }
                None => return Err(p.err("} to close CONSTRUCT")),
                _ => {
                    let s = p.term()?;
                    let pid = match p.next() {
                        Some(Token::Ident(pr)) => {
                            let name = p.expand(&pr);
                            p.ss.intern_predicate(&name)
                                .map_err(|e| QueryError::Unresolved(e.to_string()))?
                        }
                        _ => return Err(p.err("predicate in CONSTRUCT template")),
                    };
                    let o = p.term()?;
                    construct.push(crate::ast::ConstructTemplate { s, p: pid, o });
                }
            }
        }
        if construct.is_empty() {
            return Err(QueryError::Unsupported("empty CONSTRUCT template".into()));
        }
        // Result rows carry every template variable.
        for t in &construct {
            for term in [t.s, t.o] {
                if let Term::Var(v) = term {
                    if !select.contains(&v) {
                        select.push(v);
                    }
                }
            }
        }
        if select.is_empty() {
            return Err(QueryError::Unsupported(
                "CONSTRUCT templates must bind at least one variable".into(),
            ));
        }
    } else {
        p.expect_kw("SELECT")?;
        if p.at_kw("DISTINCT") {
            p.next();
            distinct = true;
        }
    }
    if construct.is_empty() {
        loop {
            match p.peek().cloned() {
                Some(Token::Var(v)) => {
                    p.next();
                    let id = p.var_id(&v);
                    select.push(id);
                }
                Some(Token::Ident(f)) if Parser::agg_func(&f).is_some() => {
                    p.next();
                    let func = Parser::agg_func(&f).expect("checked above");
                    p.expect_tok(&Token::LParen, "(")?;
                    let var = match p.next() {
                        Some(Token::Var(v)) => p.var_id(&v),
                        _ => return Err(p.err("aggregated variable")),
                    };
                    p.expect_tok(&Token::RParen, ")")?;
                    aggregates.push(Aggregate { func, var });
                }
                _ => break,
            }
        }
    }
    if select.is_empty() && aggregates.is_empty() {
        return Err(p.err("at least one selected variable or aggregate"));
    }

    // FROM clauses. A FROM with a window is a stream; without, the stored
    // graph (its name is informational).
    let mut streams: Vec<(String, WindowSpec)> = Vec::new();
    while p.at_kw("FROM") {
        p.next();
        if p.at_kw("NAMED") {
            p.next();
        }
        if p.at_kw("STREAM") {
            p.next();
        }
        let graph_name = p.ident("graph or stream name")?;
        if matches!(p.peek(), Some(Token::LBracket)) {
            let w = p.window()?;
            streams.push((graph_name, w));
        }
    }

    // WHERE clause (and nested OPTIONAL blocks).
    p.expect_kw("WHERE")?;
    p.expect_tok(&Token::LBrace, "{")?;
    let mut patterns = Vec::new();
    let mut optional = Vec::new();
    let mut union_groups: Vec<Vec<TriplePattern>> = Vec::new();
    let mut not_exists: Vec<Vec<TriplePattern>> = Vec::new();
    let mut filters = Vec::new();
    let mut in_optional = false;
    let mut in_union = false;
    loop {
        match p.peek().cloned() {
            Some(Token::RBrace) => {
                p.next();
                if in_optional {
                    in_optional = false;
                    continue;
                }
                if in_union {
                    in_union = false;
                    // `UNION {` may chain: `{A} UNION {B} UNION {C}`.
                    if p.at_kw("UNION") {
                        p.next();
                        p.expect_tok(&Token::LBrace, "{")?;
                        union_groups.push(Vec::new());
                        in_union = true;
                    }
                    continue;
                }
                break;
            }
            Some(Token::Dot) => {
                p.next();
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("UNION") => {
                // `… } UNION { …` handled above; this arm catches a UNION
                // opening after plain required patterns: `P UNION { … }`.
                if in_optional || in_union {
                    return Err(QueryError::Unsupported(
                        "UNION may not nest inside OPTIONAL/UNION".into(),
                    ));
                }
                p.next();
                p.expect_tok(&Token::LBrace, "{")?;
                union_groups.push(Vec::new());
                in_union = true;
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("OPTIONAL") => {
                if in_optional || in_union {
                    return Err(QueryError::Unsupported(
                        "nested OPTIONAL blocks are not supported".into(),
                    ));
                }
                p.next();
                p.expect_tok(&Token::LBrace, "{")?;
                in_optional = true;
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("GRAPH") => {
                p.next();
                let gname = p.ident("graph name")?;
                let graph = match streams.iter().position(|(n, _)| *n == gname) {
                    Some(i) => GraphName::Stream(i),
                    None => GraphName::Stored,
                };
                p.expect_tok(&Token::LBrace, "{")?;
                let sink = if in_optional {
                    &mut optional
                } else if in_union {
                    union_groups.last_mut().expect("open union group")
                } else {
                    &mut patterns
                };
                p.pattern_block(graph, sink, &mut filters)?;
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("FILTER") => {
                if in_optional {
                    return Err(QueryError::Unsupported(
                        "FILTER inside OPTIONAL is not supported".into(),
                    ));
                }
                p.next();
                if p.at_kw("NOT") {
                    p.next();
                    p.expect_kw("EXISTS")?;
                    p.expect_tok(&Token::LBrace, "{")?;
                    let mut group = Vec::new();
                    p.pattern_block(GraphName::Stored, &mut group, &mut filters)?;
                    if group.is_empty() {
                        return Err(QueryError::Unsupported(
                            "empty FILTER NOT EXISTS group".into(),
                        ));
                    }
                    not_exists.push(group);
                } else {
                    p.filter(&mut filters)?;
                }
            }
            None => return Err(p.err("} to close WHERE")),
            _ => {
                // Bare pattern in the default (stored) graph.
                let s = p.term()?;
                let pid = match p.next() {
                    Some(Token::Ident(pr)) => {
                        let name = p.expand(&pr);
                        p.ss.intern_predicate(&name)
                            .map_err(|e| QueryError::Unresolved(e.to_string()))?
                    }
                    Some(Token::Var(_)) => {
                        return Err(QueryError::Unsupported(
                            "variable predicates are not supported".into(),
                        ))
                    }
                    _ => return Err(p.err("predicate")),
                };
                let o = p.term()?;
                let pat = TriplePattern {
                    s,
                    p: pid,
                    o,
                    graph: GraphName::Stored,
                };
                if in_optional {
                    optional.push(pat);
                } else if in_union {
                    union_groups.last_mut().expect("open union group").push(pat);
                } else {
                    patterns.push(pat);
                }
            }
        }
    }
    if in_optional {
        return Err(p.err("} to close OPTIONAL"));
    }
    if in_union {
        return Err(p.err("} to close UNION"));
    }
    if union_groups.iter().any(Vec::is_empty) {
        return Err(QueryError::Unsupported("empty UNION group".into()));
    }

    if patterns.is_empty() && union_groups.is_empty() {
        return Err(QueryError::Unsupported("empty WHERE clause".into()));
    }

    // Optional GROUP BY ?v ….
    let mut group_by = Vec::new();
    if p.at_kw("GROUP") {
        p.next();
        p.expect_kw("BY")?;
        while let Some(Token::Var(v)) = p.peek().cloned() {
            p.next();
            let id = p.var_id(&v);
            group_by.push(id);
        }
        if group_by.is_empty() {
            return Err(p.err("at least one variable after GROUP BY"));
        }
    }

    // Optional ORDER BY ?v | DESC(?v) ….
    let mut order_by: Vec<(u8, bool)> = Vec::new();
    if p.at_kw("ORDER") {
        p.next();
        p.expect_kw("BY")?;
        loop {
            match p.peek().cloned() {
                Some(Token::Var(v)) => {
                    p.next();
                    let id = p.var_id(&v);
                    order_by.push((id, false));
                }
                Some(Token::Ident(f))
                    if f.eq_ignore_ascii_case("DESC") || f.eq_ignore_ascii_case("ASC") =>
                {
                    p.next();
                    let descending = f.eq_ignore_ascii_case("DESC");
                    p.expect_tok(&Token::LParen, "(")?;
                    let id = match p.next() {
                        Some(Token::Var(v)) => p.var_id(&v),
                        _ => return Err(p.err("variable inside ASC()/DESC()")),
                    };
                    p.expect_tok(&Token::RParen, ")")?;
                    order_by.push((id, descending));
                }
                _ => break,
            }
        }
        if order_by.is_empty() {
            return Err(p.err("at least one sort key after ORDER BY"));
        }
    }

    // Optional LIMIT n.
    let mut limit = None;
    if p.at_kw("LIMIT") {
        p.next();
        match p.next() {
            Some(Token::Number(n)) if n >= 0.0 && n.fract() == 0.0 => {
                limit = Some(n as usize);
            }
            _ => {
                p.pos = p.pos.saturating_sub(1);
                return Err(p.err("non-negative integer after LIMIT"));
            }
        }
    }

    // A continuous query must window every stream it reads.
    for pat in patterns
        .iter()
        .chain(&optional)
        .chain(union_groups.iter().flatten())
        .chain(not_exists.iter().flatten())
    {
        if let GraphName::Stream(i) = pat.graph {
            if i >= streams.len() {
                return Err(QueryError::MissingWindow(format!("stream #{i}")));
            }
        }
    }

    // SPARQL: with GROUP BY, every projected variable must be grouped.
    if !group_by.is_empty() {
        for v in &select {
            if !group_by.contains(v) {
                return Err(QueryError::Unsupported(
                    "projected variables must appear in GROUP BY".into(),
                ));
            }
        }
    }

    Ok(Query {
        name,
        kind,
        distinct,
        limit,
        construct,
        select,
        optional,
        union_groups,
        not_exists,
        order_by,
        group_by,
        aggregates,
        streams,
        patterns,
        filters,
        var_count: p.vars.len() as u8,
        var_names: p.var_names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ss() -> StringServer {
        StringServer::new()
    }

    #[test]
    fn parses_fig2_oneshot() {
        let ss = ss();
        let q = parse_query(
            &ss,
            "SELECT ?X FROM X-Lab WHERE { Logan po ?X . ?X ht #sosp17 . Erik li ?X }",
        )
        .unwrap();
        assert_eq!(q.kind, QueryKind::OneShot);
        assert_eq!(q.select.len(), 1);
        assert_eq!(q.patterns.len(), 3);
        assert!(q.streams.is_empty());
        assert!(q.patterns.iter().all(|p| p.graph == GraphName::Stored));
        // Constant subject resolved through the string server.
        assert_eq!(q.patterns[0].s, Term::Const(ss.entity_id("Logan").unwrap()));
    }

    #[test]
    fn parses_fig2_continuous() {
        let ss = ss();
        let q = parse_query(
            &ss,
            "REGISTER QUERY QC SELECT ?X ?Y ?Z \
             FROM Tweet_Stream [RANGE 10s STEP 1s] \
             FROM Like_Stream [RANGE 5s STEP 1s] \
             FROM X-Lab \
             WHERE { GRAPH Tweet_Stream { ?X po ?Z } \
                     GRAPH X-Lab { ?X fo ?Y } \
                     GRAPH Like_Stream { ?Y li ?Z } }",
        )
        .unwrap();
        assert_eq!(q.kind, QueryKind::Continuous);
        assert_eq!(q.name.as_deref(), Some("QC"));
        assert_eq!(q.streams.len(), 2);
        assert_eq!(
            q.streams[0].1,
            WindowSpec {
                range_ms: 10_000,
                step_ms: 1_000
            }
        );
        assert_eq!(q.patterns[0].graph, GraphName::Stream(0));
        assert_eq!(q.patterns[1].graph, GraphName::Stored);
        assert_eq!(q.patterns[2].graph, GraphName::Stream(1));
        assert_eq!(q.var_count, 3);
        assert_eq!(q.max_range_ms(), 10_000);
        assert!(q.touches_stream());
        assert!(q.touches_store());
    }

    #[test]
    fn parses_aggregates_and_filters() {
        let ss = ss();
        let q = parse_query(
            &ss,
            "REGISTER QUERY c1 SELECT AVG(?v) \
             FROM Traffic [RANGE 3s STEP 1s] \
             WHERE { GRAPH Traffic { ?s density ?v } FILTER(?v > 20) }",
        )
        .unwrap();
        assert_eq!(q.aggregates.len(), 1);
        assert_eq!(q.aggregates[0].func, AggFunc::Avg);
        assert_eq!(q.filters.len(), 1);
        assert_eq!(q.filters[0].op, CmpOp::Gt);
    }

    #[test]
    fn variable_predicate_rejected() {
        let ss = ss();
        let e = parse_query(&ss, "SELECT ?X WHERE { ?X ?p ?Y }").unwrap_err();
        assert!(matches!(e, QueryError::Unsupported(_)));
    }

    #[test]
    fn empty_where_rejected() {
        let ss = ss();
        assert!(parse_query(&ss, "SELECT ?X WHERE { }").is_err());
    }

    #[test]
    fn zero_step_window_rejected() {
        let ss = ss();
        let e = parse_query(
            &ss,
            "REGISTER QUERY q SELECT ?X FROM S [RANGE 1s STEP 0s] \
             WHERE { GRAPH S { ?X p ?Y } }",
        )
        .unwrap_err();
        assert!(matches!(e, QueryError::Unsupported(_)));
    }

    #[test]
    fn graph_clause_of_unwindowed_name_is_stored() {
        let ss = ss();
        let q = parse_query(
            &ss,
            "SELECT ?X FROM X-Lab WHERE { GRAPH X-Lab { ?X fo Erik } }",
        )
        .unwrap();
        assert_eq!(q.patterns[0].graph, GraphName::Stored);
    }

    #[test]
    fn iri_bracket_names_accepted() {
        let ss = ss();
        let q = parse_query(
            &ss,
            "REGISTER QUERY q SELECT ?X FROM <S1> [RANGE 1s STEP 1s] \
             WHERE { GRAPH <S1> { ?X p obj } }",
        )
        .unwrap();
        assert_eq!(q.patterns[0].graph, GraphName::Stream(0));
    }

    #[test]
    fn prefixes_expand_terms_and_predicates() {
        let ss = ss();
        let q = parse_query(
            &ss,
            "PREFIX sib: <http://sib/>              SELECT ?X WHERE { sib:Logan sib:po ?X }",
        )
        .unwrap();
        assert_eq!(
            q.patterns[0].s,
            Term::Const(ss.entity_id("http://sib/Logan").unwrap())
        );
        assert_eq!(q.patterns[0].p, ss.predicate_id("http://sib/po").unwrap());
        // Undeclared prefixes pass through verbatim.
        let q = parse_query(&ss, "SELECT ?X WHERE { foaf:Erik po ?X }").unwrap();
        assert_eq!(
            q.patterns[0].s,
            Term::Const(ss.entity_id("foaf:Erik").unwrap())
        );
    }

    #[test]
    fn distinct_and_limit_parse() {
        let ss = ss();
        let q = parse_query(&ss, "SELECT DISTINCT ?X WHERE { ?X fo ?Y } LIMIT 10").unwrap();
        assert!(q.distinct);
        assert_eq!(q.limit, Some(10));
        let q = parse_query(&ss, "SELECT ?X WHERE { ?X fo ?Y }").unwrap();
        assert!(!q.distinct);
        assert_eq!(q.limit, None);
    }

    #[test]
    fn optional_parses_and_validates() {
        let ss = ss();
        let q = parse_query(
            &ss,
            "SELECT ?X ?T WHERE { Logan po ?X OPTIONAL { ?X ht ?T } }",
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 1);
        assert_eq!(q.optional.len(), 1);
        // Nested OPTIONAL and FILTER-inside-OPTIONAL are rejected.
        assert!(parse_query(
            &ss,
            "SELECT ?X WHERE { a p ?X OPTIONAL { ?X q ?Y OPTIONAL { ?Y r ?Z } } }",
        )
        .is_err());
        assert!(parse_query(
            &ss,
            "SELECT ?X WHERE { a p ?X OPTIONAL { ?X q ?Y FILTER(?Y > 1) } }",
        )
        .is_err());
        // Unclosed OPTIONAL is rejected.
        assert!(parse_query(&ss, "SELECT ?X WHERE { a p ?X OPTIONAL { ?X q ?Y }").is_err());
    }

    #[test]
    fn empty_optional_block_parses_as_inert() {
        // `OPTIONAL { }` is legal SPARQL and must not reject the query or
        // leave a phantom pattern behind: execution treats it as absent.
        let ss = ss();
        let q = parse_query(&ss, "SELECT ?X WHERE { Logan po ?X OPTIONAL { } }").unwrap();
        assert_eq!(q.patterns.len(), 1);
        assert!(q.optional.is_empty());
        // An empty required group is still an error — there is nothing
        // to match.
        assert!(parse_query(&ss, "SELECT ?X WHERE { OPTIONAL { ?X q ?Y } }").is_err());
    }

    #[test]
    fn fully_constant_patterns_parse() {
        // A pattern binding zero variables is an existence assertion; the
        // parser must keep it (the executor turns it into a row filter).
        let ss = ss();
        let q = parse_query(&ss, "SELECT ?X WHERE { Logan fo Erik . Logan po ?X }").unwrap();
        assert_eq!(q.patterns.len(), 2);
        assert!(matches!(q.patterns[0].s, Term::Const(_)));
        assert!(matches!(q.patterns[0].o, Term::Const(_)));
    }

    #[test]
    fn not_exists_parses_and_validates() {
        let ss = ss();
        let q = parse_query(
            &ss,
            "SELECT ?X WHERE { Logan po ?X FILTER NOT EXISTS { Erik li ?X } }",
        )
        .unwrap();
        assert_eq!(q.not_exists.len(), 1);
        assert_eq!(q.not_exists[0].len(), 1);
        assert!(
            parse_query(&ss, "SELECT ?X WHERE { Logan po ?X FILTER NOT EXISTS { } }",).is_err()
        );
    }

    #[test]
    fn union_parses_and_validates() {
        let ss = ss();
        // Pure alternation.
        let q = parse_query(
            &ss,
            "SELECT ?X WHERE { { Logan po ?X } UNION { Erik po ?X } }",
        );
        // `{ … } UNION` requires the group-open brace to be consumed by
        // the general arm; the leading bare group is not part of the
        // grammar — alternation anchors on required patterns instead:
        let _ = q; // may be an error; the supported shape is below.
        let q = parse_query(
            &ss,
            "SELECT ?X ?W WHERE { Logan po ?X UNION { ?X ht ?W } UNION { Erik li ?X } }",
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 1);
        assert_eq!(q.union_groups.len(), 2);
        // Empty group rejected.
        assert!(parse_query(&ss, "SELECT ?X WHERE { Logan po ?X UNION { } }").is_err());
        // Unclosed group rejected.
        assert!(parse_query(&ss, "SELECT ?X WHERE { Logan po ?X UNION { ?X ht ?W }").is_err());
    }

    #[test]
    fn group_by_parses_and_validates() {
        let ss = ss();
        let q = parse_query(&ss, "SELECT ?S AVG(?V) WHERE { ?S density ?V } GROUP BY ?S").unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.select, q.group_by);
        // Projecting an ungrouped variable is rejected.
        assert!(parse_query(&ss, "SELECT ?V WHERE { ?S density ?V } GROUP BY ?S",).is_err());
        // GROUP BY with no variable is rejected.
        assert!(parse_query(&ss, "SELECT ?S WHERE { ?S density ?V } GROUP BY").is_err());
    }

    #[test]
    fn bad_limit_rejected() {
        let ss = ss();
        assert!(parse_query(&ss, "SELECT ?X WHERE { ?X fo ?Y } LIMIT 1.5").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let ss = ss();
        let q = parse_query(
            &ss,
            "# a continuous query
SELECT ?X # trailing comment
WHERE { ?X fo Erik }",
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 1);
    }

    #[test]
    fn select_requires_projection() {
        let ss = ss();
        assert!(parse_query(&ss, "SELECT FROM g WHERE { a p b }").is_err());
    }
}
