//! The LSBench query classes (§6.1-§6.2, Tables 2-4; §6.9, Table 8).
//!
//! Continuous classes reproduce the paper's two groups (§6.3):
//!
//! - **Group I** (L1-L3): selective — anchored on a constant entity, with
//!   fixed-size results regardless of total data size.
//! - **Group II** (L4-L6): non-selective — enumerate a whole stream window
//!   (and join into the stored graph), so results grow with data size and
//!   stream rate.
//!
//! L1 and L4 touch only streaming data; the others join streams with the
//! stored graph (the property behind the cross-system cost columns of
//! Tables 2-4).
//!
//! One-shot classes S1-S6 (Table 8) mirror the split for SPARQL over the
//! stored graph only.

use super::LsBench;

/// Number of continuous query classes (L1-L6).
pub const CONTINUOUS_CLASSES: usize = 6;
/// Number of one-shot query classes (S1-S6).
pub const ONESHOT_CLASSES: usize = 6;

/// Renders the continuous query of `class` (1-6); `variant` randomises the
/// anchor entity for selective classes so throughput runs spread load.
///
/// # Panics
///
/// Panics if `class` is outside `1..=6`.
pub fn continuous_query(b: &LsBench, class: usize, variant: usize) -> String {
    let u = b.user_name(variant);
    match class {
        // Group I: selective.
        1 => format!(
            // Stream-only: posts by one user in the window.
            "REGISTER QUERY L1_{variant} SELECT ?Z \
             FROM PO [RANGE 1s STEP 100ms] \
             WHERE {{ GRAPH PO {{ {u} po ?Z }} }}"
        ),
        2 => format!(
            // Stream + store: posts in the window by people {u} follows.
            "REGISTER QUERY L2_{variant} SELECT ?X ?Z \
             FROM PO [RANGE 1s STEP 100ms] \
             FROM X-Lab \
             WHERE {{ GRAPH X-Lab {{ {u} fo ?X }} . GRAPH PO {{ ?X po ?Z }} }}"
        ),
        3 => format!(
            // Stream + store: likes in the window by people {u} follows.
            "REGISTER QUERY L3_{variant} SELECT ?Y ?Z \
             FROM PO-L [RANGE 1s STEP 100ms] \
             FROM X-Lab \
             WHERE {{ GRAPH X-Lab {{ {u} fo ?Y }} . GRAPH PO-L {{ ?Y li ?Z }} }}"
        ),
        // Group II: non-selective — every class joins two stream patterns
        // (the stream-stream joins the 2017 Structured Streaming release
        // rejects, Table 4).
        4 => format!(
            // Stream-only: every post in the window with its hashtag.
            "REGISTER QUERY L4_{variant} SELECT ?X ?Z ?T \
             FROM PO [RANGE 1s STEP 100ms] \
             WHERE {{ GRAPH PO {{ ?X po ?Z . ?Z ht ?T }} }}"
        ),
        5 => format!(
            // Fig. 2's QC, unanchored: posts in the window liked by a
            // follower of the poster. The like window dwarfs the post
            // window (Fig. 4's GP3 ≫ GP1), which is what makes the
            // stream-first composite plan explode.
            "REGISTER QUERY L5_{variant} SELECT ?X ?Y ?Z \
             FROM PO [RANGE 10s STEP 100ms] \
             FROM PO-L [RANGE 5s STEP 100ms] \
             FROM X-Lab \
             WHERE {{ GRAPH PO {{ ?X po ?Z }} . \
                      GRAPH X-Lab {{ ?X fo ?Y }} . \
                      GRAPH PO-L {{ ?Y li ?Z }} }}"
        ),
        6 => format!(
            // Likes joined with the stored post corpus and the poster's
            // followers, plus photo activity by the liker (largest).
            "REGISTER QUERY L6_{variant} SELECT ?W ?X ?Y ?Z \
             FROM PO-L [RANGE 1s STEP 100ms] \
             FROM PH [RANGE 1s STEP 100ms] \
             FROM X-Lab \
             WHERE {{ GRAPH PO-L {{ ?Y li ?Z }} . \
                      GRAPH X-Lab {{ ?X po ?Z . ?W fo ?X }} . \
                      GRAPH PH {{ ?Y ph ?F }} }}"
        ),
        _ => panic!("LSBench continuous classes are 1..=6, got {class}"),
    }
}

/// Renders the one-shot query of `class` (1-6) for Table 8.
///
/// # Panics
///
/// Panics if `class` is outside `1..=6`.
pub fn oneshot_query(b: &LsBench, class: usize, variant: usize) -> String {
    let u = b.user_name(variant);
    let post = b.post_name(variant);
    let tag = b.tag_name(variant);
    match class {
        // Non-selective: every user and who they follow.
        1 => "SELECT ?X ?Y WHERE { ?X ty User . ?X fo ?Y }".to_owned(),
        // Selective: one user's posts.
        2 => format!("SELECT ?X WHERE {{ {u} po ?X }}"),
        // Selective: posts by people one user follows.
        3 => format!("SELECT ?X WHERE {{ {u} fo ?Y . ?Y po ?X }}"),
        // Non-selective: every post with its hashtag.
        4 => "SELECT ?X ?T WHERE { ?X ht ?T }".to_owned(),
        // Selective: who liked one post.
        5 => format!("SELECT ?Y WHERE {{ ?Y li {post} }}"),
        // Non-selective with a constant leaf: followers of posters of
        // tagged posts (the heaviest join).
        6 => format!("SELECT ?X ?Y ?Z WHERE {{ ?Z ht {tag} . ?Y po ?Z . ?X fo ?Y }}"),
        _ => panic!("LSBench one-shot classes are 1..=6, got {class}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsbench::LsBenchConfig;
    use std::sync::Arc;
    use wukong_rdf::StringServer;

    #[test]
    fn all_classes_render_and_differ() {
        let b = LsBench::new(LsBenchConfig::tiny(), Arc::new(StringServer::new()));
        let mut seen = std::collections::HashSet::new();
        for c in 1..=CONTINUOUS_CLASSES {
            assert!(seen.insert(continuous_query(&b, c, 0)));
        }
        for c in 1..=ONESHOT_CLASSES {
            assert!(seen.insert(oneshot_query(&b, c, 0)));
        }
    }

    #[test]
    fn variants_change_selective_classes() {
        let b = LsBench::new(LsBenchConfig::tiny(), Arc::new(StringServer::new()));
        assert_ne!(continuous_query(&b, 1, 0), continuous_query(&b, 1, 1));
        assert_ne!(oneshot_query(&b, 2, 0), oneshot_query(&b, 2, 1));
    }

    #[test]
    #[should_panic(expected = "1..=6")]
    fn out_of_range_class_panics() {
        let b = LsBench::new(LsBenchConfig::tiny(), Arc::new(StringServer::new()));
        continuous_query(&b, 7, 0);
    }
}
