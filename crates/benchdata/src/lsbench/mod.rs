//! An LSBench-style social-network workload (§6.1, Table 1).
//!
//! LSBench \[28\] models a social network: stored data holds user profiles,
//! friendship (follow) edges and an initial post/photo corpus; five
//! streams carry ongoing activity. This generator reproduces the schema,
//! the five streams at the paper's default rates (scaled by
//! [`LsBenchConfig::rate_scale`]), and the two query-class groups the
//! evaluation distinguishes: selective, fixed-result queries (L1-L3) and
//! non-selective queries whose results grow with data size (L4-L6), plus
//! six one-shot classes (S1-S6) for the Table 8 experiment.
//!
//! Streams (paper default rates):
//!
//! | # | Stream | Content | Rate | Kind |
//! |---|--------|---------|------|------|
//! | 0 | PO    | `⟨user, po, post⟩` and `⟨post, ht, tag⟩` | 10 K/s | timeless |
//! | 1 | PO-L  | `⟨user, li, post⟩` | 86 K/s | timeless |
//! | 2 | PH    | `⟨user, ph, photo⟩` | 10 K/s | timeless |
//! | 3 | PH-L  | `⟨user, pl, photo⟩` | 7.5 K/s | timeless |
//! | 4 | GPS   | `⟨user, ga, cell⟩` | 20 K/s | timing |

mod queries;

use crate::timeline::{merge, spread, TimedTuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;
use wukong_rdf::{Pid, StreamId, StringServer, Timestamp, Triple, Vid};
use wukong_stream::StreamSchema;

/// The paper's default stream rates, tuples/second (Table 1).
pub const PAPER_RATES: [f64; 5] = [10_000.0, 86_000.0, 10_000.0, 7_500.0, 20_000.0];

/// Stream indices.
pub const PO: usize = 0;
/// Post-like stream.
pub const POL: usize = 1;
/// Photo stream.
pub const PH: usize = 2;
/// Photo-like stream.
pub const PHL: usize = 3;
/// GPS stream (timing data).
pub const GPS: usize = 4;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct LsBenchConfig {
    /// Number of users in the stored graph.
    pub users: usize,
    /// Follow edges per user.
    pub follows_per_user: usize,
    /// Initial posts per user.
    pub posts_per_user: usize,
    /// Initial likes per user.
    pub likes_per_user: usize,
    /// Initial photos per user.
    pub photos_per_user: usize,
    /// Distinct hashtags.
    pub hashtags: usize,
    /// Distinct GPS cells.
    pub gps_cells: usize,
    /// Multiplier on the paper's default stream rates.
    pub rate_scale: f64,
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
}

impl Default for LsBenchConfig {
    fn default() -> Self {
        LsBenchConfig {
            users: 1_000,
            // ≈ the fan-out Fig. 4 implies for GP2 (9,532 results from 831
            // bindings ≈ ×11.5).
            follows_per_user: 12,
            posts_per_user: 10,
            likes_per_user: 10,
            photos_per_user: 4,
            hashtags: 50,
            gps_cells: 256,
            rate_scale: 0.01,
            seed: 42,
        }
    }
}

impl LsBenchConfig {
    /// A smaller configuration for unit tests.
    pub fn tiny() -> Self {
        LsBenchConfig {
            users: 64,
            follows_per_user: 4,
            posts_per_user: 3,
            likes_per_user: 3,
            photos_per_user: 2,
            hashtags: 8,
            gps_cells: 16,
            rate_scale: 0.002,
            seed: 7,
        }
    }

    /// A tiny configuration with an explicit RNG seed, for tests that
    /// check same-seed reproducibility.
    pub fn tiny_seeded(seed: u64) -> Self {
        LsBenchConfig {
            seed,
            ..Self::tiny()
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

pub(crate) struct Preds {
    pub ty: Pid,
    pub fo: Pid,
    pub po: Pid,
    pub li: Pid,
    pub ht: Pid,
    pub ph: Pid,
    pub pl: Pid,
    pub ga: Pid,
    /// Post metadata (creation date, length, language, …) — the bulk of
    /// a post event's triples on the PO stream.
    pub pm: Pid,
}

/// The LSBench-style workload generator.
pub struct LsBench {
    cfg: LsBenchConfig,
    ss: Arc<StringServer>,
    rng: StdRng,
    pub(crate) preds: Preds,
    users: Vec<Vid>,
    posts: Vec<Vid>,
    photos: Vec<Vid>,
    tags: Vec<Vid>,
    cells: Vec<Vid>,
    metas: Vec<Vid>,
    user_type: Vid,
    /// Recently generated stream posts/photos — like streams target them
    /// so stream-stream joins produce matches.
    recent_posts: VecDeque<Vid>,
    recent_photos: VecDeque<Vid>,
    next_post: u64,
    next_photo: u64,
}

impl LsBench {
    /// Creates a generator over the given string server.
    pub fn new(cfg: LsBenchConfig, ss: Arc<StringServer>) -> Self {
        let e = |s: &str| ss.intern_entity(s).expect("id space");
        let p = |s: &str| ss.intern_predicate(s).expect("id space");
        let preds = Preds {
            ty: p("ty"),
            fo: p("fo"),
            po: p("po"),
            li: p("li"),
            ht: p("ht"),
            ph: p("ph"),
            pl: p("pl"),
            ga: p("ga"),
            pm: p("pm"),
        };
        let users = (0..cfg.users).map(|i| e(&format!("u{i}"))).collect();
        let posts = (0..cfg.users * cfg.posts_per_user)
            .map(|i| e(&format!("p{i}")))
            .collect();
        let photos = (0..cfg.users * cfg.photos_per_user)
            .map(|i| e(&format!("f{i}")))
            .collect();
        let tags = (0..cfg.hashtags).map(|i| e(&format!("#tag{i}"))).collect();
        let cells = (0..cfg.gps_cells).map(|i| e(&format!("cell{i}"))).collect();
        let metas = (0..64).map(|i| e(&format!("meta{i}"))).collect();
        let user_type = e("User");
        let rng = StdRng::seed_from_u64(cfg.seed);
        LsBench {
            cfg,
            ss,
            rng,
            preds,
            users,
            posts,
            photos,
            tags,
            cells,
            metas,
            user_type,
            recent_posts: VecDeque::new(),
            recent_photos: VecDeque::new(),
            next_post: 0,
            next_photo: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LsBenchConfig {
        &self.cfg
    }

    /// The string server names were interned into.
    pub fn strings(&self) -> &Arc<StringServer> {
        &self.ss
    }

    /// Generates the initially stored dataset.
    pub fn stored_triples(&mut self) -> Vec<Triple> {
        let mut out = Vec::new();
        let n = self.users.len();
        for i in 0..n {
            let u = self.users[i];
            out.push(Triple::new(u, self.preds.ty, self.user_type));
            for _ in 0..self.cfg.follows_per_user {
                let j = self.rng.gen_range(0..n);
                if j != i {
                    out.push(Triple::new(u, self.preds.fo, self.users[j]));
                }
            }
            for k in 0..self.cfg.posts_per_user {
                let post = self.posts[i * self.cfg.posts_per_user + k];
                out.push(Triple::new(u, self.preds.po, post));
                let tag = self.tags[self.rng.gen_range(0..self.tags.len())];
                out.push(Triple::new(post, self.preds.ht, tag));
            }
            for _ in 0..self.cfg.likes_per_user {
                let post = self.posts[self.rng.gen_range(0..self.posts.len())];
                out.push(Triple::new(u, self.preds.li, post));
            }
            for k in 0..self.cfg.photos_per_user {
                let photo = self.photos[i * self.cfg.photos_per_user + k];
                out.push(Triple::new(u, self.preds.ph, photo));
            }
        }
        out
    }

    /// The five stream schemas (index = stream constant).
    pub fn schemas(&self) -> Vec<StreamSchema> {
        let names = ["PO", "PO-L", "PH", "PH-L", "GPS"];
        names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mut s = StreamSchema::timeless(StreamId(i as u16), *name, 100);
                if i == GPS {
                    s.timing_predicates.insert(self.preds.ga);
                }
                s
            })
            .collect()
    }

    /// Scaled per-stream rates, tuples/second.
    pub fn rates(&self) -> [f64; 5] {
        PAPER_RATES.map(|r| r * self.cfg.rate_scale)
    }

    fn rand_user(&mut self) -> Vid {
        self.users[self.rng.gen_range(0..self.users.len())]
    }

    fn like_target(&mut self, photos: bool) -> Vid {
        let (recent, stored) = if photos {
            (&self.recent_photos, &self.photos)
        } else {
            (&self.recent_posts, &self.posts)
        };
        // Likes overwhelmingly target *very recent* content (the paper's
        // Fig. 4 shows nearly every windowed like joining a windowed
        // post); a smaller share revisits the stored corpus, which is
        // what keeps one-shot queries and stored-graph joins non-empty.
        if !recent.is_empty() && self.rng.gen_bool(0.85) {
            let tail = recent.len().min(128);
            let i = recent.len() - 1 - self.rng.gen_range(0..tail);
            recent[i]
        } else {
            stored[self.rng.gen_range(0..stored.len())]
        }
    }

    /// Generates all five streams' tuples in `[from, to)`, time-ordered.
    pub fn generate(&mut self, from: Timestamp, to: Timestamp) -> Vec<TimedTuple> {
        let rates = self.rates();
        let mut streams = Vec::with_capacity(5);
        for (s, &rate) in rates.iter().enumerate() {
            let times = spread(rate, from, to);
            let mut tuples = Vec::with_capacity(times.len());
            for ts in times {
                let triple = match s {
                    PO => {
                        // A post event emits several triples on the PO
                        // stream: the post itself, a hashtag, and a tail
                        // of metadata. Posts are therefore a small
                        // fraction of the window — Fig. 4's GP1 matches
                        // 831 tuples out of a much larger PO window.
                        let phase = self.next_post % 6;
                        self.next_post += 1;
                        if phase == 0 || self.recent_posts.is_empty() {
                            let name = format!("sp{}", self.next_post);
                            let post = self.ss.intern_entity(&name).expect("id space");
                            self.recent_posts.push_back(post);
                            if self.recent_posts.len() > 4_096 {
                                self.recent_posts.pop_front();
                            }
                            let u = self.rand_user();
                            Triple::new(u, self.preds.po, post)
                        } else if phase == 1 {
                            let post = *self.recent_posts.back().expect("post exists");
                            let tag = self.tags[self.rng.gen_range(0..self.tags.len())];
                            Triple::new(post, self.preds.ht, tag)
                        } else {
                            let post = *self.recent_posts.back().expect("post exists");
                            let m = self.metas[self.rng.gen_range(0..self.metas.len())];
                            Triple::new(post, self.preds.pm, m)
                        }
                    }
                    POL => {
                        let u = self.rand_user();
                        let t = self.like_target(false);
                        Triple::new(u, self.preds.li, t)
                    }
                    PH => {
                        let name = format!("sf{}", self.next_photo);
                        let photo = self.ss.intern_entity(&name).expect("id space");
                        self.next_photo += 1;
                        self.recent_photos.push_back(photo);
                        if self.recent_photos.len() > 4_096 {
                            self.recent_photos.pop_front();
                        }
                        let u = self.rand_user();
                        Triple::new(u, self.preds.ph, photo)
                    }
                    PHL => {
                        let u = self.rand_user();
                        let t = self.like_target(true);
                        Triple::new(u, self.preds.pl, t)
                    }
                    _ => {
                        let u = self.rand_user();
                        let c = self.cells[self.rng.gen_range(0..self.cells.len())];
                        Triple::new(u, self.preds.ga, c)
                    }
                };
                tuples.push(TimedTuple {
                    stream: StreamId(s as u16),
                    triple,
                    timestamp: ts,
                });
            }
            streams.push(tuples);
        }
        merge(streams)
    }

    /// A deterministic "random" user name for query variants.
    pub fn user_name(&self, variant: usize) -> String {
        format!("u{}", (variant * 7_919) % self.cfg.users)
    }

    /// A deterministic post name for query variants.
    pub fn post_name(&self, variant: usize) -> String {
        format!(
            "p{}",
            (variant * 104_729) % (self.cfg.users * self.cfg.posts_per_user)
        )
    }

    /// A deterministic hashtag name for query variants.
    pub fn tag_name(&self, variant: usize) -> String {
        format!("#tag{}", variant % self.cfg.hashtags)
    }
}

pub use queries::{continuous_query, oneshot_query, CONTINUOUS_CLASSES, ONESHOT_CLASSES};

#[cfg(test)]
mod tests {
    use super::*;

    fn bench() -> LsBench {
        LsBench::new(LsBenchConfig::tiny(), Arc::new(StringServer::new()))
    }

    #[test]
    fn stored_data_has_expected_shape() {
        let mut b = bench();
        let triples = b.stored_triples();
        // At least: type + posts(×2) + photos per user.
        let min = b.cfg.users * (1 + b.cfg.posts_per_user * 2 + b.cfg.photos_per_user);
        assert!(triples.len() >= min, "{} < {min}", triples.len());
        // Deterministic per seed.
        let mut b2 = LsBench::new(LsBenchConfig::tiny(), Arc::new(StringServer::new()));
        assert_eq!(b2.stored_triples().len(), triples.len());
    }

    #[test]
    fn stream_rates_respected() {
        let mut b = bench();
        let tuples = b.generate(0, 10_000);
        let rates = b.rates();
        for (s, rate) in rates.iter().enumerate() {
            let count = tuples
                .iter()
                .filter(|t| t.stream == StreamId(s as u16))
                .count();
            let expect = rate * 10.0;
            assert!(
                (count as f64 - expect).abs() <= expect * 0.2 + 2.0,
                "stream {s}: {count} vs {expect}"
            );
        }
        // Time-ordered.
        assert!(tuples.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn gps_is_timing_everything_else_timeless() {
        let b = bench();
        let schemas = b.schemas();
        assert_eq!(schemas.len(), 5);
        assert!(schemas[GPS].timing_predicates.contains(&b.preds.ga));
        for s in [PO, POL, PH, PHL] {
            assert!(schemas[s].timing_predicates.is_empty());
        }
    }

    #[test]
    fn like_streams_reference_known_targets() {
        let mut b = bench();
        b.stored_triples();
        let tuples = b.generate(0, 60_000);
        let likes: Vec<_> = tuples
            .iter()
            .filter(|t| t.stream == StreamId(POL as u16))
            .collect();
        assert!(!likes.is_empty());
        // Every like target resolves to a post entity (stored or stream).
        for l in &likes {
            let name = b.strings().entity_name(l.triple.o).unwrap();
            assert!(
                name.starts_with('p') || name.starts_with("sp"),
                "unexpected like target {name}"
            );
        }
    }

    #[test]
    fn variant_names_resolve() {
        let mut b = bench();
        b.stored_triples();
        for v in 0..20 {
            assert!(b.strings().entity_id(&b.user_name(v)).is_ok());
            assert!(b.strings().entity_id(&b.post_name(v)).is_ok());
            assert!(b.strings().entity_id(&b.tag_name(v)).is_ok());
        }
    }
}
