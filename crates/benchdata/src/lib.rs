#![warn(missing_docs)]
//! Workload generators for the Wukong+S evaluation (§6.1).
//!
//! The paper evaluates on two public RDF streaming benchmarks that this
//! repository cannot ship (LSBench's S3G2 generator produces billions of
//! triples; CityBench replays proprietary Aarhus sensor feeds). The
//! [`lsbench`] and [`citybench`] modules generate synthetic workloads with
//! the same *schemas*, *stream structure*, *default rates* and *query
//! classes* — the properties the evaluation's shape depends on — at
//! configurable scale.
//!
//! Both generators are deterministic given a seed, so experiments are
//! reproducible run-to-run.

pub mod citybench;
pub mod lsbench;
pub mod timeline;

pub use citybench::{CityBench, CityBenchConfig};
pub use lsbench::{LsBench, LsBenchConfig};
pub use timeline::TimedTuple;
