//! Shared stream-timeline plumbing for the generators.

use wukong_rdf::{StreamId, Timestamp, Triple};

/// One generated stream tuple: which stream, what triple, when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedTuple {
    /// Destination stream.
    pub stream: StreamId,
    /// Payload.
    pub triple: Triple,
    /// Stream time, ms.
    pub timestamp: Timestamp,
}

/// Spreads `rate_per_sec` events uniformly over `[from, to)` milliseconds,
/// returning their timestamps. Rates below 1/s still emit when the window
/// is long enough (fractional accumulation from the window start).
pub fn spread(rate_per_sec: f64, from: Timestamp, to: Timestamp) -> Vec<Timestamp> {
    if rate_per_sec <= 0.0 || to <= from {
        return Vec::new();
    }
    let per_ms = rate_per_sec / 1000.0;
    // Absolute event index at a time t is floor(t * per_ms); emitting
    // events with indices in (idx(from), idx(to)] keeps windows seamless.
    let start_idx = (from as f64 * per_ms).floor() as u64;
    let end_idx = (to as f64 * per_ms).floor() as u64;
    (start_idx + 1..=end_idx)
        .map(|i| ((i as f64 / per_ms).ceil() as Timestamp).clamp(from + 1, to))
        .collect()
}

/// Merges per-stream tuple vectors into one time-ordered timeline.
pub fn merge(mut streams: Vec<Vec<TimedTuple>>) -> Vec<TimedTuple> {
    let mut all: Vec<TimedTuple> = streams.drain(..).flatten().collect();
    all.sort_by_key(|t| t.timestamp);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_matches_rate() {
        // 100 events/s over 1 s → 100 events.
        let ts = spread(100.0, 0, 1_000);
        assert_eq!(ts.len(), 100);
        assert!(ts.iter().all(|&t| t > 0 && t <= 1_000));
        // Non-decreasing.
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn spread_windows_are_seamless() {
        let a = spread(37.0, 0, 500);
        let b = spread(37.0, 500, 1_000);
        let whole = spread(37.0, 0, 1_000);
        assert_eq!(a.len() + b.len(), whole.len());
    }

    #[test]
    fn sub_hertz_rates_accumulate() {
        // 0.5 events/s over 4 s → 2 events.
        assert_eq!(spread(0.5, 0, 4_000).len(), 2);
        assert!(spread(0.5, 0, 1_000).len() <= 1);
    }

    #[test]
    fn zero_rate_and_empty_window() {
        assert!(spread(0.0, 0, 1_000).is_empty());
        assert!(spread(10.0, 100, 100).is_empty());
    }

    #[test]
    fn merge_orders_by_time() {
        use wukong_rdf::{Pid, Vid};
        let t = |ts| TimedTuple {
            stream: StreamId(0),
            triple: Triple::new(Vid(1), Pid(1), Vid(1)),
            timestamp: ts,
        };
        let merged = merge(vec![vec![t(5), t(9)], vec![t(1), t(7)]]);
        let times: Vec<_> = merged.iter().map(|x| x.timestamp).collect();
        assert_eq!(times, vec![1, 5, 7, 9]);
    }
}
