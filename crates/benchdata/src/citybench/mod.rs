//! A CityBench-style smart-city workload (§6.1, Table 1; §6.10, Table 9).
//!
//! CityBench \[12\] replays IoT sensor feeds from the city of Aarhus:
//! tiny stored data (sensor/road/parking metadata, 139 K triples in the
//! paper) and eleven very low-rate RDF streams. This generator reproduces
//! the structure: 11 streams at the paper's default rates, sensor
//! *readings as timing data* (they expire with the window — the transient
//! store's main customer), and 11 continuous query classes that join one
//! or two streams with the stored metadata, several with `FILTER`s and
//! aggregates.
//!
//! Streams (paper default rates, tuples/s): VT1 19, VT2 19, WT 12, UL 7,
//! PK1 4, PK2 4, PL1-PL5 4 each.

mod queries;

use crate::timeline::{merge, spread, TimedTuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use wukong_rdf::{Pid, StreamId, StringServer, Timestamp, Triple, Vid};
use wukong_stream::StreamSchema;

/// Stream indices.
pub const VT1: usize = 0;
/// Second vehicle-traffic stream.
pub const VT2: usize = 1;
/// Weather stream.
pub const WT: usize = 2;
/// User-location stream.
pub const UL: usize = 3;
/// First parking stream.
pub const PK1: usize = 4;
/// Second parking stream.
pub const PK2: usize = 5;
/// First of the five pollution streams (PL1-PL5 are 6..=10).
pub const PL1: usize = 6;

/// The paper's default stream rates, tuples/second (Table 1).
pub const PAPER_RATES: [f64; 11] = [19.0, 19.0, 12.0, 7.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0];

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct CityBenchConfig {
    /// Traffic sensors per VT stream.
    pub traffic_sensors: usize,
    /// Parking lots per PK stream.
    pub parking_lots: usize,
    /// Pollution sensors per PL stream.
    pub pollution_sensors: usize,
    /// Roads in the metadata graph.
    pub roads: usize,
    /// Places of interest.
    pub places: usize,
    /// Mobile users on the UL stream.
    pub users: usize,
    /// Multiplier on the paper's default stream rates.
    pub rate_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CityBenchConfig {
    fn default() -> Self {
        CityBenchConfig {
            traffic_sensors: 64,
            parking_lots: 16,
            pollution_sensors: 16,
            roads: 48,
            places: 24,
            users: 32,
            rate_scale: 1.0,
            seed: 42,
        }
    }
}

impl CityBenchConfig {
    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

pub(crate) struct Preds {
    pub speed: Pid,
    pub vac: Pid,
    pub temp: Pid,
    pub at: Pid,
    pub pol: Pid,
    pub on_road: Pid,
    pub conn: Pid,
    pub loc_at: Pid,
}

/// The CityBench-style workload generator.
pub struct CityBench {
    cfg: CityBenchConfig,
    ss: Arc<StringServer>,
    rng: StdRng,
    pub(crate) preds: Preds,
    vt_sensors: [Vec<Vid>; 2],
    lots: [Vec<Vid>; 2],
    pl_sensors: Vec<Vec<Vid>>,
    users: Vec<Vid>,
    places: Vec<Vid>,
    station: Vid,
    /// Readings quantised to integers 0-99, interned once.
    values: Vec<Vid>,
}

impl CityBench {
    /// Creates a generator over the given string server.
    pub fn new(cfg: CityBenchConfig, ss: Arc<StringServer>) -> Self {
        let e = |s: &str| ss.intern_entity(s).expect("id space");
        let p = |s: &str| ss.intern_predicate(s).expect("id space");
        let preds = Preds {
            speed: p("speed"),
            vac: p("vac"),
            temp: p("temp"),
            at: p("at"),
            pol: p("pol"),
            on_road: p("onRoad"),
            conn: p("conn"),
            loc_at: p("locAt"),
        };
        let vt_sensors = [
            (0..cfg.traffic_sensors)
                .map(|i| e(&format!("vt1s{i}")))
                .collect(),
            (0..cfg.traffic_sensors)
                .map(|i| e(&format!("vt2s{i}")))
                .collect(),
        ];
        let lots = [
            (0..cfg.parking_lots)
                .map(|i| e(&format!("pk1l{i}")))
                .collect(),
            (0..cfg.parking_lots)
                .map(|i| e(&format!("pk2l{i}")))
                .collect(),
        ];
        let pl_sensors = (0..5)
            .map(|s| {
                (0..cfg.pollution_sensors)
                    .map(|i| e(&format!("pl{s}s{i}")))
                    .collect()
            })
            .collect();
        let users = (0..cfg.users).map(|i| e(&format!("cu{i}"))).collect();
        let places = (0..cfg.places).map(|i| e(&format!("place{i}"))).collect();
        let station = e("weather0");
        let values = (0..100).map(|v| e(&format!("{v}"))).collect();
        CityBench {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            ss,
            preds,
            vt_sensors,
            lots,
            pl_sensors,
            users,
            places,
            station,
            values,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CityBenchConfig {
        &self.cfg
    }

    /// The string server names were interned into.
    pub fn strings(&self) -> &Arc<StringServer> {
        &self.ss
    }

    /// Generates the stored metadata graph.
    pub fn stored_triples(&mut self) -> Vec<Triple> {
        let e = |ss: &StringServer, s: &str| ss.intern_entity(s).expect("id space");
        let mut out = Vec::new();
        let roads: Vec<Vid> = (0..self.cfg.roads)
            .map(|i| e(&self.ss, &format!("road{i}")))
            .collect();
        // Roads connect places (a small connected mesh).
        for (i, &r) in roads.iter().enumerate() {
            let a = self.places[i % self.places.len()];
            let b = self.places[(i + 1) % self.places.len()];
            out.push(Triple::new(r, self.preds.conn, a));
            out.push(Triple::new(r, self.preds.conn, b));
        }
        // Traffic sensors sit on roads.
        for set in &self.vt_sensors {
            for (i, &s) in set.iter().enumerate() {
                out.push(Triple::new(s, self.preds.on_road, roads[i % roads.len()]));
            }
        }
        // Parking lots sit at places.
        for set in &self.lots {
            for (i, &l) in set.iter().enumerate() {
                out.push(Triple::new(
                    l,
                    self.preds.loc_at,
                    self.places[i % self.places.len()],
                ));
            }
        }
        // Pollution sensors sit at places.
        for set in &self.pl_sensors {
            for (i, &s) in set.iter().enumerate() {
                out.push(Triple::new(
                    s,
                    self.preds.at,
                    self.places[i % self.places.len()],
                ));
            }
        }
        out
    }

    /// The eleven stream schemas. Batch interval 1 s (windows are 3 s/1 s,
    /// §6.1); every reading predicate is timing data.
    pub fn schemas(&self) -> Vec<StreamSchema> {
        let names = [
            "VT1", "VT2", "WT", "UL", "PK1", "PK2", "PL1", "PL2", "PL3", "PL4", "PL5",
        ];
        names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mut s = StreamSchema::timeless(StreamId(i as u16), *name, 1_000);
                for p in [
                    self.preds.speed,
                    self.preds.vac,
                    self.preds.temp,
                    self.preds.at,
                    self.preds.pol,
                ] {
                    s.timing_predicates.insert(p);
                }
                s
            })
            .collect()
    }

    /// Scaled per-stream rates, tuples/second.
    pub fn rates(&self) -> [f64; 11] {
        PAPER_RATES.map(|r| r * self.cfg.rate_scale)
    }

    fn value(&mut self, lo: usize, hi: usize) -> Vid {
        self.values[self.rng.gen_range(lo..hi)]
    }

    /// Generates all streams' tuples in `[from, to)`, time-ordered.
    pub fn generate(&mut self, from: Timestamp, to: Timestamp) -> Vec<TimedTuple> {
        let rates = self.rates();
        let mut streams = Vec::with_capacity(11);
        for (s, &rate) in rates.iter().enumerate() {
            let times = spread(rate, from, to);
            let mut tuples = Vec::with_capacity(times.len());
            for ts in times {
                let triple = match s {
                    VT1 | VT2 => {
                        let set = &self.vt_sensors[s];
                        let sensor = set[self.rng.gen_range(0..set.len())];
                        let v = self.value(0, 100);
                        Triple::new(sensor, self.preds.speed, v)
                    }
                    WT => {
                        let v = self.value(0, 45);
                        Triple::new(self.station, self.preds.temp, v)
                    }
                    UL => {
                        let u = self.users[self.rng.gen_range(0..self.users.len())];
                        let p = self.places[self.rng.gen_range(0..self.places.len())];
                        Triple::new(u, self.preds.at, p)
                    }
                    PK1 | PK2 => {
                        let set = &self.lots[s - PK1];
                        let lot = set[self.rng.gen_range(0..set.len())];
                        let v = self.value(0, 60);
                        Triple::new(lot, self.preds.vac, v)
                    }
                    _ => {
                        let set = &self.pl_sensors[s - PL1];
                        let sensor = set[self.rng.gen_range(0..set.len())];
                        let v = self.value(0, 100);
                        Triple::new(sensor, self.preds.pol, v)
                    }
                };
                tuples.push(TimedTuple {
                    stream: StreamId(s as u16),
                    triple,
                    timestamp: ts,
                });
            }
            streams.push(tuples);
        }
        merge(streams)
    }

    /// A deterministic traffic-sensor name for query variants.
    pub fn vt_sensor_name(&self, set: usize, variant: usize) -> String {
        format!(
            "vt{}s{}",
            set + 1,
            (variant * 31) % self.cfg.traffic_sensors
        )
    }

    /// A deterministic parking-lot name for query variants.
    pub fn lot_name(&self, set: usize, variant: usize) -> String {
        format!("pk{}l{}", set + 1, (variant * 13) % self.cfg.parking_lots)
    }

    /// A deterministic user name for query variants.
    pub fn user_name(&self, variant: usize) -> String {
        format!("cu{}", (variant * 17) % self.cfg.users)
    }
}

pub use queries::{continuous_query, CONTINUOUS_CLASSES};

#[cfg(test)]
mod tests {
    use super::*;

    fn bench() -> CityBench {
        CityBench::new(CityBenchConfig::default(), Arc::new(StringServer::new()))
    }

    #[test]
    fn eleven_streams_at_paper_rates() {
        let mut b = bench();
        let tuples = b.generate(0, 60_000);
        for (s, rate) in PAPER_RATES.iter().enumerate() {
            let count = tuples
                .iter()
                .filter(|t| t.stream == StreamId(s as u16))
                .count();
            let expect = rate * 60.0;
            assert!(
                (count as f64 - expect).abs() <= expect * 0.2 + 2.0,
                "stream {s}: {count} vs {expect}"
            );
        }
    }

    #[test]
    fn all_readings_are_timing() {
        let b = bench();
        for s in b.schemas() {
            assert!(!s.timing_predicates.is_empty());
        }
    }

    #[test]
    fn stored_metadata_connects_sensors_to_places() {
        let mut b = bench();
        let triples = b.stored_triples();
        assert!(triples.len() > 100);
        let on_road = triples.iter().filter(|t| t.p == b.preds.on_road).count();
        assert_eq!(on_road, b.cfg.traffic_sensors * 2);
    }

    #[test]
    fn readings_parse_as_numbers() {
        let mut b = bench();
        let tuples = b.generate(0, 10_000);
        let speeds: Vec<_> = tuples
            .iter()
            .filter(|t| t.triple.p == b.preds.speed)
            .collect();
        assert!(!speeds.is_empty());
        for t in speeds {
            let name = b.strings().entity_name(t.triple.o).unwrap();
            assert!(name.parse::<f64>().is_ok(), "{name} not numeric");
        }
    }
}
