//! The CityBench continuous query classes C1-C11 (§6.10, Table 9).
//!
//! The class mix follows Table 1's stream-usage matrix: most classes join
//! one or two sensor streams with the stored metadata graph; C10 and C11
//! are stream-only (their Table 9 rows show no Wukong sub-component).
//! Windows are the paper's setting: `RANGE 3s STEP 1s`.

use super::CityBench;

/// Number of continuous query classes (C1-C11).
pub const CONTINUOUS_CLASSES: usize = 11;

const W: &str = "[RANGE 3s STEP 1s]";

/// Renders the continuous query of `class` (1-11).
///
/// # Panics
///
/// Panics if `class` is outside `1..=11`.
pub fn continuous_query(b: &CityBench, class: usize, variant: usize) -> String {
    let s1 = b.vt_sensor_name(0, variant);
    let s2 = b.vt_sensor_name(1, variant);
    let lot1 = b.lot_name(0, variant);
    let user = b.user_name(variant);
    match class {
        1 => format!(
            // Traffic on the roads of two sensors (VT1+VT2+stored).
            "REGISTER QUERY C1_{variant} SELECT ?R1 ?V1 ?V2 \
             FROM VT1 {W} FROM VT2 {W} FROM Aarhus \
             WHERE {{ GRAPH VT1 {{ {s1} speed ?V1 }} . \
                      GRAPH Aarhus {{ {s1} onRoad ?R1 }} . \
                      GRAPH VT2 {{ {s2} speed ?V2 }} }}"
        ),
        2 => format!(
            // Congestion detector: slow readings on both streams.
            "REGISTER QUERY C2_{variant} SELECT ?V1 ?V2 \
             FROM VT1 {W} FROM VT2 {W} \
             WHERE {{ GRAPH VT1 {{ {s1} speed ?V1 }} . \
                      GRAPH VT2 {{ {s2} speed ?V2 }} \
                      FILTER(?V1 < 30) FILTER(?V2 < 30) }}"
        ),
        3 => format!(
            // Traffic + weather around one sensor's road (VT2+WT+stored).
            "REGISTER QUERY C3_{variant} SELECT ?R ?V ?T \
             FROM VT2 {W} FROM WT {W} FROM Aarhus \
             WHERE {{ GRAPH VT2 {{ {s2} speed ?V }} . \
                      GRAPH Aarhus {{ {s2} onRoad ?R }} . \
                      GRAPH WT {{ weather0 temp ?T }} }}"
        ),
        4 => format!(
            // Free parking near a place (PK1+PK2+stored, FILTER).
            "REGISTER QUERY C4_{variant} SELECT ?L ?P ?V \
             FROM PK1 {W} FROM PK2 {W} FROM Aarhus \
             WHERE {{ GRAPH PK1 {{ ?L vac ?V }} . \
                      GRAPH Aarhus {{ ?L locAt ?P }} \
                      FILTER(?V > 5) }}"
        ),
        5 => format!(
            // Parking where a user currently is (PK1+UL+stored).
            "REGISTER QUERY C5_{variant} SELECT ?P ?L ?V \
             FROM PK1 {W} FROM UL {W} FROM Aarhus \
             WHERE {{ GRAPH UL {{ {user} at ?P }} . \
                      GRAPH Aarhus {{ ?L locAt ?P }} . \
                      GRAPH PK1 {{ ?L vac ?V }} }}"
        ),
        6 => format!(
            // Average vacancy of one lot (PK1+PK2, aggregate).
            "REGISTER QUERY C6_{variant} SELECT AVG(?V) \
             FROM PK1 {W} FROM PK2 {W} \
             WHERE {{ GRAPH PK1 {{ {lot1} vac ?V }} }}"
        ),
        7 => format!(
            // Traffic near parking (VT2+PK1+stored).
            "REGISTER QUERY C7_{variant} SELECT ?R ?V ?L ?N \
             FROM VT2 {W} FROM PK1 {W} FROM Aarhus \
             WHERE {{ GRAPH VT2 {{ {s2} speed ?V }} . \
                      GRAPH Aarhus {{ {s2} onRoad ?R . ?R conn ?P . ?L locAt ?P }} . \
                      GRAPH PK1 {{ ?L vac ?N }} }}"
        ),
        8 => format!(
            // Route check: speed on a road with lot state (VT2+PK2+stored).
            "REGISTER QUERY C8_{variant} SELECT ?V ?N \
             FROM VT2 {W} FROM PK2 {W} FROM Aarhus \
             WHERE {{ GRAPH VT2 {{ {s2} speed ?V }} . \
                      GRAPH PK2 {{ ?L vac ?N }} \
                      FILTER(?N > 0) }}"
        ),
        9 => format!(
            // Weather where a user is (WT+UL+stored).
            "REGISTER QUERY C9_{variant} SELECT ?P ?T \
             FROM WT {W} FROM UL {W} FROM Aarhus \
             WHERE {{ GRAPH UL {{ {user} at ?P }} . \
                      GRAPH WT {{ weather0 temp ?T }} }}"
        ),
        10 => {
            // Pollution along a route: one monitored sensor per PL stream
            // (all five streams, stream-only — Table 9 shows C10 without a
            // stored-graph component).
            let sensors: Vec<String> = (0..5)
                .map(|s| format!("pl{s}s{}", (variant * 11) % b.config().pollution_sensors))
                .collect();
            format!(
                "REGISTER QUERY C10_{variant} SELECT MAX(?V1) MAX(?V2) MAX(?V3) MAX(?V4) MAX(?V5) \
                 FROM PL1 {W} FROM PL2 {W} FROM PL3 {W} FROM PL4 {W} FROM PL5 {W} \
                 WHERE {{ GRAPH PL1 {{ {} pol ?V1 }} . GRAPH PL2 {{ {} pol ?V2 }} . \
                          GRAPH PL3 {{ {} pol ?V3 }} . GRAPH PL4 {{ {} pol ?V4 }} . \
                          GRAPH PL5 {{ {} pol ?V5 }} }}",
                sensors[0], sensors[1], sensors[2], sensors[3], sensors[4]
            )
        }
        11 => format!(
            // Vacancy monitor for one lot (PK1 only, stream-only).
            "REGISTER QUERY C11_{variant} SELECT ?V \
             FROM PK1 {W} \
             WHERE {{ GRAPH PK1 {{ {lot1} vac ?V }} }}"
        ),
        _ => panic!("CityBench continuous classes are 1..=11, got {class}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citybench::CityBenchConfig;
    use std::sync::Arc;
    use wukong_rdf::StringServer;

    #[test]
    fn all_eleven_classes_render() {
        let b = CityBench::new(CityBenchConfig::default(), Arc::new(StringServer::new()));
        let mut seen = std::collections::HashSet::new();
        for c in 1..=CONTINUOUS_CLASSES {
            let q = continuous_query(&b, c, 0);
            assert!(q.contains("REGISTER QUERY"));
            assert!(seen.insert(q));
        }
    }

    #[test]
    #[should_panic(expected = "1..=11")]
    fn class_bounds_enforced() {
        let b = CityBench::new(CityBenchConfig::default(), Arc::new(StringServer::new()));
        continuous_query(&b, 12, 0);
    }
}
