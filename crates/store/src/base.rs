//! The Wukong-style base graph store (§4.1, Fig. 6).
//!
//! The store keys key/value pairs by `[vid | pid | dir]` and stores the
//! neighbouring vertex IDs as the value. *Index vertices* (vertex 0)
//! provide the reverse mapping from an edge label to every vertex carrying
//! such an edge, so queries can start from a predicate alone.
//!
//! The continuous persistent store extends the same structure with
//! incremental, snapshot-numbered appends: each value is a [`ValueCell`]
//! holding a base segment (visible to everyone) plus a bounded queue of
//! per-snapshot intervals (§4.3, "bounded snapshot scalarization").
//! Values are append-only, which gives every neighbour a *stable logical
//! offset* within its key — the property the stream index's fat pointers
//! rely on (§4.2).

use crate::snapshot::SnapshotId;
use std::collections::HashMap;
use wukong_rdf::{Dir, Key, Pid, Triple, Vid};

/// One key's value: the base segment plus bounded snapshot intervals.
#[derive(Debug, Default, Clone)]
pub struct ValueCell {
    /// Neighbours visible at every snapshot (initial load + consolidated).
    base: Vec<Vid>,
    /// Per-snapshot appended intervals, oldest first.
    intervals: Vec<(SnapshotId, Vec<Vid>)>,
}

impl ValueCell {
    /// Total logical length (all snapshots).
    pub fn total_len(&self) -> usize {
        self.base.len() + self.intervals.iter().map(|(_, v)| v.len()).sum::<usize>()
    }

    /// Logical length visible at snapshot `sn`.
    pub fn len_at(&self, sn: SnapshotId) -> usize {
        self.base.len()
            + self
                .intervals
                .iter()
                .take_while(|(s, _)| *s <= sn)
                .map(|(_, v)| v.len())
                .sum::<usize>()
    }

    /// Appends one neighbour under snapshot `sn`, returning its logical
    /// offset.
    ///
    /// Appends must arrive in non-decreasing snapshot order; the injector
    /// guarantees this because a key partition is owned by one thread and
    /// batches of one stream are inserted in order (§4.1).
    fn append(&mut self, v: Vid, sn: SnapshotId) -> u32 {
        let off = self.total_len() as u32;
        match self.intervals.last_mut() {
            Some((last_sn, seg)) if *last_sn == sn => seg.push(v),
            Some((last_sn, _)) => {
                debug_assert!(*last_sn < sn, "appends must be snapshot-ordered");
                self.intervals.push((sn, vec![v]));
            }
            None => self.intervals.push((sn, vec![v])),
        }
        off
    }

    /// Merges every interval with snapshot ≤ `upto` into the base segment.
    ///
    /// The caller (the coordinator) must guarantee that no in-flight query
    /// reads at a snapshot older than `upto`; afterwards those intervals'
    /// data is visible at every snapshot, exactly as if it had been initial
    /// data. Logical offsets are unchanged because order is preserved.
    fn consolidate(&mut self, upto: SnapshotId) {
        let n = self
            .intervals
            .iter()
            .take_while(|(s, _)| *s <= upto)
            .count();
        for (_, seg) in self.intervals.drain(..n) {
            self.base.extend(seg);
        }
    }

    /// Number of snapshot intervals currently retained.
    pub fn retained_snapshots(&self) -> usize {
        self.intervals.len()
    }

    /// Visits the neighbours visible at snapshot `sn`.
    pub fn for_each_at(&self, sn: SnapshotId, mut f: impl FnMut(Vid)) {
        for &v in &self.base {
            f(v);
        }
        for (s, seg) in &self.intervals {
            if *s > sn {
                break;
            }
            for &v in seg {
                f(v);
            }
        }
    }

    /// Copies the logical range `[start, start + len)` into `out`.
    ///
    /// Ranges come from stream-index fat pointers and always lie within the
    /// already-written part of the cell; out-of-range requests are clipped.
    pub fn read_range(&self, start: u32, len: u32, out: &mut Vec<Vid>) {
        let mut remaining_skip = start as usize;
        let mut remaining_take = len as usize;
        let mut segs: Vec<&[Vid]> = Vec::with_capacity(1 + self.intervals.len());
        segs.push(&self.base);
        for (_, seg) in &self.intervals {
            segs.push(seg);
        }
        for seg in segs {
            if remaining_take == 0 {
                break;
            }
            if remaining_skip >= seg.len() {
                remaining_skip -= seg.len();
                continue;
            }
            let avail = &seg[remaining_skip..];
            let take = avail.len().min(remaining_take);
            out.extend_from_slice(&avail[..take]);
            remaining_take -= take;
            remaining_skip = 0;
        }
    }

    /// Approximate heap bytes held by this cell.
    pub fn heap_bytes(&self) -> usize {
        let vid = std::mem::size_of::<Vid>();
        let mut bytes = self.base.capacity() * vid;
        for (_, seg) in &self.intervals {
            // Interval payload plus the (SnapshotId, Vec) bookkeeping.
            bytes += seg.capacity() * vid + std::mem::size_of::<(SnapshotId, Vec<Vid>)>();
        }
        bytes
    }
}

/// Where an append landed: key plus logical offset range.
///
/// Receipts feed the stream index: appends by one stream batch to one key
/// are contiguous in that key's logical sequence (nothing else writes the
/// key partition meanwhile), so a batch compresses to one `(start, len)`
/// fat pointer per key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReceipt {
    /// The key appended to.
    pub key: Key,
    /// Logical offset of the appended neighbour.
    pub offset: u32,
}

/// The in-memory key/value graph store of one shard (or partition).
#[derive(Debug, Default)]
pub struct BaseStore {
    map: HashMap<Key, ValueCell>,
    triple_count: u64,
}

impl BaseStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triples inserted (each triple counts once, although it
    /// updates up to four keys).
    pub fn triple_count(&self) -> u64 {
        self.triple_count
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Inserts a triple into the initial (base, snapshot-0) dataset.
    pub fn insert_base(&mut self, t: Triple) {
        self.insert_at(t, SnapshotId::BASE, &mut Vec::new());
    }

    /// Appends one neighbour to `key` under snapshot `sn`.
    ///
    /// Returns the logical offset of the append and whether the key was
    /// empty beforehand (used for duplicate-free index maintenance: a
    /// vertex joins the `[0|p|d]` index exactly when its own `[v|p|d]` key
    /// goes from empty to non-empty).
    pub fn append_edge(&mut self, key: Key, v: Vid, sn: SnapshotId) -> (u32, bool) {
        self.append_edge_merging(key, v, sn, None)
    }

    /// Like [`BaseStore::append_edge`], additionally consolidating this
    /// cell's intervals up to `merge_upto` first.
    ///
    /// This is the paper's injection-time recycling of expired snapshots
    /// ("The Injector can continue to absorb the streaming data and
    /// overwrite the snapshot number 2 by 4", §4.3): consolidation work is
    /// amortised over appends, touching only written cells.
    pub fn append_edge_merging(
        &mut self,
        key: Key,
        v: Vid,
        sn: SnapshotId,
        merge_upto: Option<SnapshotId>,
    ) -> (u32, bool) {
        let cell = self.map.entry(key).or_default();
        if let Some(upto) = merge_upto {
            cell.consolidate(upto);
        }
        let was_empty = cell.total_len() == 0;
        (cell.append(v, sn), was_empty)
    }

    /// Bumps the triple counter (the shard layer counts a triple once even
    /// though its key updates may span partitions).
    pub fn note_triple(&mut self) {
        self.triple_count += 1;
    }

    /// Inserts a triple under snapshot `sn`, pushing append receipts.
    ///
    /// Updates the out-edge key, the in-edge key, and — only on a vertex's
    /// *first* edge with that predicate/direction — the two index-vertex
    /// keys, which keeps index lists duplicate-free without extra memory
    /// (Fig. 6's behaviour for the `⟨Logan, po, T-15⟩` injection).
    pub fn insert_at(&mut self, t: Triple, sn: SnapshotId, receipts: &mut Vec<AppendReceipt>) {
        self.triple_count += 1;

        // Subject side: `[s | p | out] += o`.
        let (off, first_out) = self.append_edge(t.out_key(), t.o, sn);
        receipts.push(AppendReceipt {
            key: t.out_key(),
            offset: off,
        });

        // Object side: `[o | p | in] += s`.
        let (off, first_in) = self.append_edge(t.in_key(), t.s, sn);
        receipts.push(AppendReceipt {
            key: t.in_key(),
            offset: off,
        });

        // Index vertex: `[0 | p | out] += s` on the subject's first p-out
        // edge; `[0 | p | in] += o` on the object's first p-in edge.
        if first_out {
            let k = Key::index(t.p, Dir::Out);
            let (off, _) = self.append_edge(k, t.s, sn);
            receipts.push(AppendReceipt {
                key: k,
                offset: off,
            });
        }
        if first_in {
            let k = Key::index(t.p, Dir::In);
            let (off, _) = self.append_edge(k, t.o, sn);
            receipts.push(AppendReceipt {
                key: k,
                offset: off,
            });
        }
    }

    /// Visits every key in the store (for statistics and checkpointing).
    pub fn for_each_key(&self, mut f: impl FnMut(Key, &ValueCell)) {
        for (k, c) in &self.map {
            f(*k, c);
        }
    }

    /// Visits the neighbours of `key` visible at snapshot `sn`.
    pub fn for_each_neighbor(&self, key: Key, sn: SnapshotId, f: impl FnMut(Vid)) {
        if let Some(cell) = self.map.get(&key) {
            cell.for_each_at(sn, f);
        }
    }

    /// Collects the neighbours of `key` visible at snapshot `sn`.
    pub fn neighbors_at(&self, key: Key, sn: SnapshotId) -> Vec<Vid> {
        let mut out = Vec::new();
        self.for_each_neighbor(key, sn, |v| out.push(v));
        out
    }

    /// Length of `key`'s neighbour list at snapshot `sn` (0 if absent).
    pub fn len_at(&self, key: Key, sn: SnapshotId) -> usize {
        self.map.get(&key).map(|c| c.len_at(sn)).unwrap_or(0)
    }

    /// Reads the logical range of `key` designated by a fat pointer.
    pub fn read_range(&self, key: Key, start: u32, len: u32, out: &mut Vec<Vid>) {
        if let Some(cell) = self.map.get(&key) {
            cell.read_range(start, len, out);
        }
    }

    /// Whether triple `(s, p, o)` is visible at snapshot `sn`.
    ///
    /// Scans the smaller of the two adjacency lists.
    pub fn exists_at(&self, s: Vid, p: Pid, o: Vid, sn: SnapshotId) -> bool {
        let out_key = Key::new(s, p, Dir::Out);
        let in_key = Key::new(o, p, Dir::In);
        let (key, needle) = if self.len_at(out_key, sn) <= self.len_at(in_key, sn) {
            (out_key, o)
        } else {
            (in_key, s)
        };
        let mut found = false;
        self.for_each_neighbor(key, sn, |v| found |= v == needle);
        found
    }

    /// Consolidates every cell's intervals with snapshot ≤ `upto` into its
    /// base segment. The caller must guarantee that no in-flight query
    /// reads at a snapshot older than `upto` (see the cell-level method).
    pub fn consolidate(&mut self, upto: SnapshotId) {
        for cell in self.map.values_mut() {
            cell.consolidate(upto);
        }
    }

    /// Largest number of snapshot intervals retained by any cell.
    pub fn max_retained_snapshots(&self) -> usize {
        self.map
            .values()
            .map(ValueCell::retained_snapshots)
            .max()
            .unwrap_or(0)
    }

    /// Approximate heap bytes of the whole store.
    pub fn heap_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(Key, ValueCell)>();
        self.map
            .values()
            .map(|c| c.heap_bytes() + entry)
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64, p: u64, o: u64) -> Triple {
        Triple::new(Vid(s), Pid(p), Vid(o))
    }

    #[test]
    fn fig6_base_layout() {
        // Fig. 6: Logan(1) posts T-13(5), T-14(6); index [0|po|in] holds
        // the posted tweets, [0|po|out] holds the posters.
        let po = Pid(4);
        let mut st = BaseStore::new();
        st.insert_base(t(1, 4, 5));
        st.insert_base(t(1, 4, 6));

        let sn = SnapshotId::BASE;
        assert_eq!(
            st.neighbors_at(Key::new(Vid(1), po, Dir::Out), sn),
            vec![Vid(5), Vid(6)]
        );
        assert_eq!(
            st.neighbors_at(Key::index(po, Dir::In), sn),
            vec![Vid(5), Vid(6)]
        );
        // Logan appears once in the subject index despite two posts.
        assert_eq!(st.neighbors_at(Key::index(po, Dir::Out), sn), vec![Vid(1)]);
    }

    #[test]
    fn fig6_injection_updates_all_keys() {
        // Adding ⟨Logan(1), po(4), T-15(7)⟩ under snapshot 1 must append
        // to [1|4|out], create [7|4|in] and extend the in-index.
        let mut st = BaseStore::new();
        st.insert_base(t(1, 4, 5));
        st.insert_base(t(1, 4, 6));

        let mut rc = Vec::new();
        st.insert_at(t(1, 4, 7), SnapshotId(1), &mut rc);

        // Old snapshot readers do not see the new tweet.
        assert_eq!(
            st.neighbors_at(Key::new(Vid(1), Pid(4), Dir::Out), SnapshotId::BASE),
            vec![Vid(5), Vid(6)]
        );
        // Snapshot-1 readers do.
        assert_eq!(
            st.neighbors_at(Key::new(Vid(1), Pid(4), Dir::Out), SnapshotId(1)),
            vec![Vid(5), Vid(6), Vid(7)]
        );
        assert_eq!(
            st.neighbors_at(Key::new(Vid(7), Pid(4), Dir::In), SnapshotId(1)),
            vec![Vid(1)]
        );
        assert_eq!(
            st.neighbors_at(Key::index(Pid(4), Dir::In), SnapshotId(1)),
            vec![Vid(5), Vid(6), Vid(7)]
        );
        // Receipts: out append at offset 2, in append at offset 0, index
        // append at offset 2. Subject index untouched (not Logan's first
        // po-out edge).
        assert_eq!(rc.len(), 3);
        assert_eq!(rc[0].offset, 2);
        assert_eq!(rc[1].offset, 0);
        assert_eq!(rc[2].offset, 2);
    }

    #[test]
    fn read_range_spans_base_and_intervals() {
        let mut st = BaseStore::new();
        st.insert_base(t(1, 4, 5));
        let mut rc = Vec::new();
        st.insert_at(t(1, 4, 6), SnapshotId(1), &mut rc);
        st.insert_at(t(1, 4, 7), SnapshotId(2), &mut rc);

        let key = Key::new(Vid(1), Pid(4), Dir::Out);
        let mut out = Vec::new();
        st.read_range(key, 0, 3, &mut out);
        assert_eq!(out, vec![Vid(5), Vid(6), Vid(7)]);

        out.clear();
        st.read_range(key, 1, 2, &mut out);
        assert_eq!(out, vec![Vid(6), Vid(7)]);

        // Clipped, not panicking, when the range overruns.
        out.clear();
        st.read_range(key, 2, 10, &mut out);
        assert_eq!(out, vec![Vid(7)]);
    }

    #[test]
    fn consolidation_preserves_offsets_and_visibility() {
        let mut st = BaseStore::new();
        st.insert_base(t(1, 4, 5));
        let mut rc = Vec::new();
        st.insert_at(t(1, 4, 6), SnapshotId(1), &mut rc);
        st.insert_at(t(1, 4, 7), SnapshotId(2), &mut rc);

        let key = Key::new(Vid(1), Pid(4), Dir::Out);
        st.consolidate(SnapshotId(1));

        // Offsets are stable across consolidation.
        let mut out = Vec::new();
        st.read_range(key, 1, 1, &mut out);
        assert_eq!(out, vec![Vid(6)]);
        // Snapshot-2 data still gated.
        assert_eq!(st.len_at(key, SnapshotId(1)), 2);
        assert_eq!(st.len_at(key, SnapshotId(2)), 3);
        assert!(st.max_retained_snapshots() <= 1);
    }

    #[test]
    fn exists_checks_either_direction() {
        let mut st = BaseStore::new();
        st.insert_base(t(1, 2, 3));
        let sn = SnapshotId::BASE;
        assert!(st.exists_at(Vid(1), Pid(2), Vid(3), sn));
        assert!(!st.exists_at(Vid(3), Pid(2), Vid(1), sn));
        assert!(!st.exists_at(Vid(1), Pid(9), Vid(3), sn));
    }

    #[test]
    fn snapshot_gating_of_exists() {
        let mut st = BaseStore::new();
        let mut rc = Vec::new();
        st.insert_at(t(1, 2, 3), SnapshotId(5), &mut rc);
        assert!(!st.exists_at(Vid(1), Pid(2), Vid(3), SnapshotId(4)));
        assert!(st.exists_at(Vid(1), Pid(2), Vid(3), SnapshotId(5)));
    }

    #[test]
    fn heap_bytes_grows_with_data() {
        let mut st = BaseStore::new();
        let empty = st.heap_bytes();
        for i in 0..100 {
            st.insert_base(t(1, 2, 10 + i));
        }
        assert!(st.heap_bytes() > empty);
    }
}
