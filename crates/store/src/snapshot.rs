//! Scalar snapshot numbers (§4.3).
//!
//! Bounded snapshot scalarization projects the cluster's vector timestamps
//! onto a single scalar [`SnapshotId`]; one-shot queries read the store at
//! a *stable* snapshot number instead of carrying a whole vector timestamp.
//! The store side of the mechanism lives here and in
//! [`crate::persistent`]: each key retains at most a bounded number of
//! snapshot intervals (typically two — "one is for using and another is
//! for inserting"), and older intervals are consolidated into the base
//! value.

/// A scalar snapshot number.
///
/// Snapshot 0 is the initially loaded dataset; stream injection produces
/// snapshots 1, 2, … as the coordinator publishes SN-VTS plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SnapshotId(pub u64);

impl SnapshotId {
    /// The snapshot of the initially loaded data, visible to every query.
    pub const BASE: SnapshotId = SnapshotId(0);

    /// The next snapshot number.
    pub fn next(self) -> SnapshotId {
        SnapshotId(self.0 + 1)
    }
}

/// How many snapshot intervals each key may retain before consolidation.
///
/// The paper's coordinator publishes one new mapping after the current one
/// has been reached on all nodes, so two retained snapshots suffice; the
/// bound is configurable to reproduce the §6.7 memory experiment (2 vs 3
/// snapshots, with vs without scalarization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotBudget(pub usize);

impl Default for SnapshotBudget {
    fn default() -> Self {
        SnapshotBudget(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_next() {
        assert!(SnapshotId::BASE < SnapshotId(1));
        assert_eq!(SnapshotId(3).next(), SnapshotId(4));
    }
}
