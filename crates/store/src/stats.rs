//! Store statistics for query planning.
//!
//! The integrated design's "global semantics to generate an optimal query
//! plan" (§3) needs cardinality estimates: how many vertices carry a given
//! predicate, and how long a concrete key's neighbour list is. The former
//! is summarised here; the latter is read live from the store by the
//! planner's oracle.

use crate::persistent::PersistentShard;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use wukong_rdf::{Dir, Key, Pid};

use crate::snapshot::SnapshotId;

/// A monotone statistics-epoch counter. The engine bumps it whenever the
/// data has evolved enough that cached plans keyed on the previous epoch
/// should be considered stale (e.g. every N ingested batches); plan
/// caches key on the current value, so bumping the epoch invalidates
/// every cached plan without touching the cache itself.
#[derive(Debug, Default)]
pub struct StatsEpoch(AtomicU64);

impl StatsEpoch {
    /// A fresh counter at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current epoch.
    pub fn current(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Advances to the next epoch, returning the new value.
    pub fn bump(&self) -> u64 {
        self.0.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// Per-predicate cardinalities collected from one or more shards,
/// stamped with the statistics epoch they were collected at.
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// Predicate → (distinct subjects, distinct objects).
    by_predicate: HashMap<Pid, (usize, usize)>,
    /// Epoch stamp (see [`StatsEpoch`]); 0 for untracked collections.
    epoch: u64,
}

impl StoreStats {
    /// Collects statistics visible at snapshot `sn` from `shards`.
    pub fn collect<'a>(
        shards: impl IntoIterator<Item = &'a PersistentShard>,
        sn: SnapshotId,
    ) -> Self {
        Self::collect_at(shards, sn, 0)
    }

    /// [`StoreStats::collect`], stamped with statistics epoch `epoch`.
    pub fn collect_at<'a>(
        shards: impl IntoIterator<Item = &'a PersistentShard>,
        sn: SnapshotId,
        epoch: u64,
    ) -> Self {
        let mut by_predicate: HashMap<Pid, (usize, usize)> = HashMap::new();
        for shard in shards {
            shard.for_each_key(|k, _| {
                if k.is_index() {
                    let e = by_predicate.entry(k.pid()).or_default();
                    let n = shard.len_at(k, sn);
                    match k.dir() {
                        Dir::Out => e.0 += n,
                        Dir::In => e.1 += n,
                    }
                }
            });
        }
        StoreStats {
            by_predicate,
            epoch,
        }
    }

    /// The statistics epoch this snapshot was collected at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The largest smoothed per-predicate cardinality ratio between this
    /// snapshot and a `fresh`er one: `max((a+1)/(b+1), (b+1)/(a+1))`
    /// over every (predicate, direction) either snapshot knows. 1.0 for
    /// identical statistics; grows as selectivity drifts, giving the
    /// drift detector a store-level second opinion.
    pub fn max_drift(&self, fresh: &StoreStats) -> f64 {
        let smoothed = |a: usize, b: usize| {
            let (a, b) = (a as f64 + 1.0, b as f64 + 1.0);
            (a / b).max(b / a)
        };
        let mut worst = 1.0f64;
        let keys = self.by_predicate.keys().chain(
            fresh
                .by_predicate
                .keys()
                .filter(|p| !self.by_predicate.contains_key(*p)),
        );
        for p in keys {
            let (ss, so) = self.by_predicate.get(p).copied().unwrap_or((0, 0));
            let (fs, fo) = fresh.by_predicate.get(p).copied().unwrap_or((0, 0));
            worst = worst.max(smoothed(ss, fs)).max(smoothed(so, fo));
        }
        worst
    }

    /// Distinct subjects carrying predicate `p`.
    pub fn subjects_of(&self, p: Pid) -> usize {
        self.by_predicate.get(&p).map(|e| e.0).unwrap_or(0)
    }

    /// Distinct objects carrying predicate `p`.
    pub fn objects_of(&self, p: Pid) -> usize {
        self.by_predicate.get(&p).map(|e| e.1).unwrap_or(0)
    }

    /// Estimated scan size when a pattern starts from the predicate index
    /// in direction `dir`.
    pub fn index_scan_size(&self, p: Pid, dir: Dir) -> usize {
        match dir {
            Dir::Out => self.subjects_of(p),
            Dir::In => self.objects_of(p),
        }
    }

    /// Number of predicates observed.
    pub fn predicate_count(&self) -> usize {
        self.by_predicate.len()
    }
}

/// Live cardinality of a concrete key across shards (sum over shards —
/// only the owning shard holds it, others return 0).
pub fn key_cardinality<'a>(
    shards: impl IntoIterator<Item = &'a PersistentShard>,
    key: Key,
    sn: SnapshotId,
) -> usize {
    shards.into_iter().map(|s| s.len_at(key, sn)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wukong_rdf::{Triple, Vid};

    #[test]
    fn collects_predicate_cardinalities() {
        let shard = PersistentShard::new(4);
        // Two subjects post three tweets.
        shard.load_base(Triple::new(Vid(1), Pid(4), Vid(10)));
        shard.load_base(Triple::new(Vid(1), Pid(4), Vid(11)));
        shard.load_base(Triple::new(Vid(2), Pid(4), Vid(12)));
        // One follow edge.
        shard.load_base(Triple::new(Vid(1), Pid(2), Vid(2)));

        let stats = StoreStats::collect([&shard], SnapshotId::BASE);
        assert_eq!(stats.subjects_of(Pid(4)), 2);
        assert_eq!(stats.objects_of(Pid(4)), 3);
        assert_eq!(stats.subjects_of(Pid(2)), 1);
        assert_eq!(stats.index_scan_size(Pid(4), Dir::In), 3);
        assert_eq!(stats.predicate_count(), 2);
    }

    #[test]
    fn unknown_predicate_is_zero() {
        let stats = StoreStats::default();
        assert_eq!(stats.subjects_of(Pid(9)), 0);
        assert_eq!(stats.index_scan_size(Pid(9), Dir::In), 0);
    }

    #[test]
    fn epoch_counter_is_monotone_and_stamps_collections() {
        let epoch = StatsEpoch::new();
        assert_eq!(epoch.current(), 0);
        assert_eq!(epoch.bump(), 1);
        assert_eq!(epoch.bump(), 2);
        assert_eq!(epoch.current(), 2);

        let shard = PersistentShard::new(4);
        shard.load_base(Triple::new(Vid(1), Pid(4), Vid(10)));
        let stats = StoreStats::collect_at([&shard], SnapshotId::BASE, epoch.current());
        assert_eq!(stats.epoch(), 2);
        assert_eq!(StoreStats::collect([&shard], SnapshotId::BASE).epoch(), 0);
    }

    #[test]
    fn max_drift_detects_selectivity_shift_both_directions() {
        let shard_a = PersistentShard::new(4);
        shard_a.load_base(Triple::new(Vid(1), Pid(4), Vid(10)));
        let a = StoreStats::collect([&shard_a], SnapshotId::BASE);

        // Identical stats: no drift.
        assert_eq!(a.max_drift(&a), 1.0);

        // The same predicate with 9 subjects: smoothed ratio 10/2 = 5,
        // symmetric in both directions.
        let shard_b = PersistentShard::new(4);
        for i in 0..9 {
            shard_b.load_base(Triple::new(Vid(i + 1), Pid(4), Vid(100 + i)));
        }
        let b = StoreStats::collect([&shard_b], SnapshotId::BASE);
        assert_eq!(a.max_drift(&b), 5.0);
        assert_eq!(b.max_drift(&a), 5.0);

        // A predicate present on only one side drifts against zero.
        let empty = StoreStats::default();
        assert_eq!(empty.max_drift(&b), 10.0);
        assert_eq!(b.max_drift(&empty), 10.0);
    }
}
