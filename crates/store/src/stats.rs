//! Store statistics for query planning.
//!
//! The integrated design's "global semantics to generate an optimal query
//! plan" (§3) needs cardinality estimates: how many vertices carry a given
//! predicate, and how long a concrete key's neighbour list is. The former
//! is summarised here; the latter is read live from the store by the
//! planner's oracle.

use crate::persistent::PersistentShard;
use std::collections::HashMap;
use wukong_rdf::{Dir, Key, Pid};

use crate::snapshot::SnapshotId;

/// Per-predicate cardinalities collected from one or more shards.
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// Predicate → (distinct subjects, distinct objects).
    by_predicate: HashMap<Pid, (usize, usize)>,
}

impl StoreStats {
    /// Collects statistics visible at snapshot `sn` from `shards`.
    pub fn collect<'a>(
        shards: impl IntoIterator<Item = &'a PersistentShard>,
        sn: SnapshotId,
    ) -> Self {
        let mut by_predicate: HashMap<Pid, (usize, usize)> = HashMap::new();
        for shard in shards {
            shard.for_each_key(|k, _| {
                if k.is_index() {
                    let e = by_predicate.entry(k.pid()).or_default();
                    let n = shard.len_at(k, sn);
                    match k.dir() {
                        Dir::Out => e.0 += n,
                        Dir::In => e.1 += n,
                    }
                }
            });
        }
        StoreStats { by_predicate }
    }

    /// Distinct subjects carrying predicate `p`.
    pub fn subjects_of(&self, p: Pid) -> usize {
        self.by_predicate.get(&p).map(|e| e.0).unwrap_or(0)
    }

    /// Distinct objects carrying predicate `p`.
    pub fn objects_of(&self, p: Pid) -> usize {
        self.by_predicate.get(&p).map(|e| e.1).unwrap_or(0)
    }

    /// Estimated scan size when a pattern starts from the predicate index
    /// in direction `dir`.
    pub fn index_scan_size(&self, p: Pid, dir: Dir) -> usize {
        match dir {
            Dir::Out => self.subjects_of(p),
            Dir::In => self.objects_of(p),
        }
    }

    /// Number of predicates observed.
    pub fn predicate_count(&self) -> usize {
        self.by_predicate.len()
    }
}

/// Live cardinality of a concrete key across shards (sum over shards —
/// only the owning shard holds it, others return 0).
pub fn key_cardinality<'a>(
    shards: impl IntoIterator<Item = &'a PersistentShard>,
    key: Key,
    sn: SnapshotId,
) -> usize {
    shards.into_iter().map(|s| s.len_at(key, sn)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wukong_rdf::{Triple, Vid};

    #[test]
    fn collects_predicate_cardinalities() {
        let shard = PersistentShard::new(4);
        // Two subjects post three tweets.
        shard.load_base(Triple::new(Vid(1), Pid(4), Vid(10)));
        shard.load_base(Triple::new(Vid(1), Pid(4), Vid(11)));
        shard.load_base(Triple::new(Vid(2), Pid(4), Vid(12)));
        // One follow edge.
        shard.load_base(Triple::new(Vid(1), Pid(2), Vid(2)));

        let stats = StoreStats::collect([&shard], SnapshotId::BASE);
        assert_eq!(stats.subjects_of(Pid(4)), 2);
        assert_eq!(stats.objects_of(Pid(4)), 3);
        assert_eq!(stats.subjects_of(Pid(2)), 1);
        assert_eq!(stats.index_scan_size(Pid(4), Dir::In), 3);
        assert_eq!(stats.predicate_count(), 2);
    }

    #[test]
    fn unknown_predicate_is_zero() {
        let stats = StoreStats::default();
        assert_eq!(stats.subjects_of(Pid(9)), 0);
        assert_eq!(stats.index_scan_size(Pid(9), Dir::In), 0);
    }
}
