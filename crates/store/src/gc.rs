//! Garbage collection across the hybrid store (§4.1).
//!
//! Expiry is driven by the registered continuous queries: a batch is dead
//! once *every* query's largest window can no longer reach it. The engine
//! computes that horizon (`now - max_range` over the queries of a stream)
//! and calls [`sweep`] periodically, or eagerly when a transient ring is
//! full (the ring handles that case itself, see
//! [`crate::TransientStore::push_batch`]).

use crate::stream_index::StreamIndex;
use crate::transient::TransientStore;
use wukong_rdf::Timestamp;

/// Result of one GC sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcStats {
    /// Transient slices freed.
    pub slices_freed: usize,
    /// Stream-index batches retired.
    pub index_batches_retired: usize,
}

impl GcStats {
    /// Folds another sweep's counts into this one (per-stream totals).
    pub fn absorb(&mut self, other: GcStats) {
        self.slices_freed += other.slices_freed;
        self.index_batches_retired += other.index_batches_retired;
    }
}

/// Sweeps one stream's transient store and stream index up to `expiry`.
pub fn sweep(
    transient: &mut TransientStore,
    index: &mut StreamIndex,
    expiry: Timestamp,
) -> GcStats {
    GcStats {
        slices_freed: transient.collect_expired(expiry),
        index_batches_retired: index.retire_expired(expiry),
    }
}

/// The expiry horizon for a stream: the oldest instant any of the given
/// window ranges could still observe at time `now`.
pub fn expiry_horizon(now: Timestamp, window_ranges: impl IntoIterator<Item = u64>) -> Timestamp {
    let max_range = window_ranges.into_iter().max().unwrap_or(0);
    now.saturating_sub(max_range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::TransientSlice;
    use wukong_rdf::{Pid, StreamTuple, Triple, Vid};

    #[test]
    fn horizon_is_widest_window() {
        assert_eq!(expiry_horizon(1_000, [100, 500, 300]), 500);
        assert_eq!(expiry_horizon(1_000, []), 1_000);
        // Saturates at stream start.
        assert_eq!(expiry_horizon(100, [500]), 0);
    }

    #[test]
    fn sweep_clears_both_structures() {
        let mut tr = TransientStore::new(1 << 20);
        let mut idx = StreamIndex::new();
        for ts in [100u64, 200, 300] {
            let tup = StreamTuple::timing(Triple::new(Vid(1), Pid(1), Vid(2)), ts);
            tr.push_batch(TransientSlice::from_batch(ts, &[tup]));
            idx.push_batch(crate::stream_index::IndexBatch::from_receipts(ts, &[]));
        }
        let stats = sweep(&mut tr, &mut idx, 250);
        assert_eq!(stats.slices_freed, 2);
        assert_eq!(stats.index_batches_retired, 2);
        assert_eq!(tr.slice_count(), 1);
        assert_eq!(idx.batch_count(), 1);
    }
}
