//! The time-based transient store (§4.1, Fig. 7).
//!
//! Timing data (e.g. GPS positions) is only ever read by continuous
//! queries through their windows, so it never enters the persistent store.
//! Each stream gets a [`TransientStore`]: a bounded ring of
//! [`TransientSlice`]s, one per stream batch, appended at the new side by
//! the injector and freed at the old side by the garbage collector. A
//! slice carries a small per-batch adjacency index so window lookups are
//! key-addressed rather than scans.

use std::collections::{HashMap, VecDeque};
use wukong_rdf::{Key, StreamTuple, Timestamp, Vid};

/// The timing data of one stream batch.
#[derive(Debug, Clone, Default)]
pub struct TransientSlice {
    /// Batch timestamp (the Adaptor groups tuples by timestamp, §3).
    pub timestamp: Timestamp,
    /// Per-batch adjacency: key → neighbours, both edge directions.
    adj: HashMap<Key, Vec<Vid>>,
    tuples: usize,
}

impl TransientSlice {
    /// Builds a slice from one batch of timing tuples.
    ///
    /// Besides the two data keys of each tuple, the slice maintains the
    /// index-vertex keys (`[0|p|d]`, duplicate-free within the slice) so
    /// unanchored patterns over timing streams can start from a predicate
    /// index exactly like they do on the persistent store.
    pub fn from_batch(timestamp: Timestamp, tuples: &[StreamTuple]) -> Self {
        Self::from_batch_filtered(timestamp, tuples, |_| true)
    }

    /// Like [`TransientSlice::from_batch`], keeping only entries whose key
    /// satisfies `owns` — the distributed path routes each key's entries
    /// to its owner node, so no node stores another node's slice data.
    pub fn from_batch_filtered(
        timestamp: Timestamp,
        tuples: &[StreamTuple],
        owns: impl Fn(Key) -> bool,
    ) -> Self {
        let mut adj: HashMap<Key, Vec<Vid>> = HashMap::new();
        // Per-slice dedup of index entries, independent of which data
        // keys this node owns.
        let mut seen: std::collections::HashSet<Key> = std::collections::HashSet::new();
        for t in tuples {
            debug_assert!(!t.is_timeless(), "timeless tuple routed to transient store");
            let out_key = t.triple.out_key();
            let in_key = t.triple.in_key();
            if owns(out_key) {
                adj.entry(out_key).or_default().push(t.triple.o);
            }
            if owns(in_key) {
                adj.entry(in_key).or_default().push(t.triple.s);
            }
            let idx_out = Key::index(t.triple.p, wukong_rdf::Dir::Out);
            if owns(idx_out) && seen.insert(out_key) {
                adj.entry(idx_out).or_default().push(t.triple.s);
            }
            let idx_in = Key::index(t.triple.p, wukong_rdf::Dir::In);
            if owns(idx_in) && seen.insert(in_key) {
                adj.entry(idx_in).or_default().push(t.triple.o);
            }
        }
        TransientSlice {
            timestamp,
            adj,
            tuples: tuples.len(),
        }
    }

    /// Neighbours of `key` within this batch.
    pub fn neighbors(&self, key: Key) -> &[Vid] {
        self.adj.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of tuples in the batch.
    pub fn tuple_count(&self) -> usize {
        self.tuples
    }

    /// Approximate heap bytes of the slice.
    pub fn heap_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(Key, Vec<Vid>)>();
        self.adj
            .values()
            .map(|v| v.capacity() * std::mem::size_of::<Vid>() + entry)
            .sum()
    }
}

/// A bounded, time-ordered ring of transient slices for one stream.
#[derive(Debug)]
pub struct TransientStore {
    slices: VecDeque<TransientSlice>,
    /// Memory budget in bytes ("a contiguous ring buffer with fixed
    /// user-defined memory budget", §4.1).
    budget_bytes: usize,
    used_bytes: usize,
    evicted_slices: u64,
    /// Highest timestamp of any evicted slice — the watermark below
    /// which window reads may be incomplete. A window `(lo, hi]` fired
    /// with `lo < evicted_upto` must carry a degraded marker: the data
    /// it would have read aged out (GC) or was squeezed out (budget).
    evicted_upto: Timestamp,
}

impl TransientStore {
    /// Creates a transient store with the given memory budget.
    pub fn new(budget_bytes: usize) -> Self {
        TransientStore {
            slices: VecDeque::new(),
            budget_bytes,
            used_bytes: 0,
            evicted_slices: 0,
            evicted_upto: 0,
        }
    }

    /// Appends a batch at the new side.
    ///
    /// If the budget is exceeded the oldest slices are evicted immediately
    /// (the "explicitly invoked when the ring buffer is full" GC path).
    pub fn push_batch(&mut self, slice: TransientSlice) {
        debug_assert!(
            self.slices
                .back()
                .map(|s| s.timestamp <= slice.timestamp)
                .unwrap_or(true),
            "batches must arrive in time order"
        );
        self.used_bytes += slice.heap_bytes();
        self.slices.push_back(slice);
        while self.used_bytes > self.budget_bytes && self.slices.len() > 1 {
            self.evict_oldest();
        }
    }

    /// Inserts a slice at its time-ordered position (slices with equal
    /// timestamps keep arrival order), then enforces the budget. The
    /// normal ingest path appends via [`TransientStore::push_batch`];
    /// this is the catch-up replay path, which re-inserts shed timing
    /// tuples at their *original* timestamps after newer slices were
    /// already appended. The deque stays sorted, so the
    /// `partition_point` window scans remain correct.
    pub fn insert_slice(&mut self, slice: TransientSlice) {
        let pos = self
            .slices
            .partition_point(|s| s.timestamp <= slice.timestamp);
        self.used_bytes += slice.heap_bytes();
        if pos == self.slices.len() {
            self.slices.push_back(slice);
        } else {
            self.slices.insert(pos, slice);
        }
        while self.used_bytes > self.budget_bytes && self.slices.len() > 1 {
            self.evict_oldest();
        }
    }

    /// Frees every slice older than `expiry` (exclusive). Returns the
    /// number of slices freed. This is the periodic background GC path.
    pub fn collect_expired(&mut self, expiry: Timestamp) -> usize {
        let mut freed = 0;
        while let Some(front) = self.slices.front() {
            if front.timestamp >= expiry {
                break;
            }
            self.evict_oldest();
            freed += 1;
        }
        freed
    }

    fn evict_oldest(&mut self) {
        if let Some(s) = self.slices.pop_front() {
            self.used_bytes -= s.heap_bytes();
            self.evicted_slices += 1;
            self.evicted_upto = self.evicted_upto.max(s.timestamp);
        }
    }

    /// Visits the slices whose timestamp lies in `[lo, hi]`.
    pub fn for_each_slice_in(
        &self,
        lo: Timestamp,
        hi: Timestamp,
        mut f: impl FnMut(&TransientSlice),
    ) {
        // Slices are time-ordered; binary-search the start.
        let start = self.slices.partition_point(|s| s.timestamp < lo);
        for s in self.slices.iter().skip(start) {
            if s.timestamp > hi {
                break;
            }
            f(s);
        }
    }

    /// Neighbours of `key` across every batch in `[lo, hi]`.
    pub fn neighbors_in(&self, key: Key, lo: Timestamp, hi: Timestamp) -> Vec<Vid> {
        let mut out = Vec::new();
        self.for_each_slice_in(lo, hi, |s| out.extend_from_slice(s.neighbors(key)));
        out
    }

    /// Number of live slices.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Slices evicted so far (by budget or GC).
    pub fn evicted_slices(&self) -> u64 {
        self.evicted_slices
    }

    /// Highest timestamp ever evicted (0 when nothing was): the aging
    /// watermark a firing compares its window's `lo` against.
    pub fn evicted_upto(&self) -> Timestamp {
        self.evicted_upto
    }

    /// Current heap usage in bytes.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wukong_rdf::{Pid, Triple};

    fn timing(s: u64, p: u64, o: u64, ts: Timestamp) -> StreamTuple {
        StreamTuple::timing(Triple::new(Vid(s), Pid(p), Vid(o)), ts)
    }

    fn slice(ts: Timestamp, n: usize) -> TransientSlice {
        let batch: Vec<_> = (0..n as u64)
            .map(|i| timing(i + 1, 1, 100 + i, ts))
            .collect();
        TransientSlice::from_batch(ts, &batch)
    }

    #[test]
    fn slice_indexes_both_directions() {
        let s = TransientSlice::from_batch(800, &[timing(1, 2, 3, 800)]);
        assert_eq!(
            s.neighbors(Key::new(Vid(1), Pid(2), wukong_rdf::Dir::Out)),
            &[Vid(3)]
        );
        assert_eq!(
            s.neighbors(Key::new(Vid(3), Pid(2), wukong_rdf::Dir::In)),
            &[Vid(1)]
        );
        assert_eq!(s.tuple_count(), 1);
    }

    #[test]
    fn owner_filtered_slices_partition_the_batch() {
        use crate::sharding::ShardMap;
        // Parallel ingest gives each node's task its own owner-filtered
        // slice. For every key, exactly one node's slice carries it, and
        // it carries exactly the unfiltered slice's neighbour list — so
        // per-node slices built concurrently are equivalent to one serial
        // full build, just sharded.
        let batch: Vec<_> = (0..64u64)
            .map(|i| timing(i % 13 + 1, i % 4 + 1, 200 + i % 9, 500))
            .collect();
        let full = TransientSlice::from_batch(500, &batch);
        let map = ShardMap::new(4);
        let shards: Vec<_> = (0..4u16)
            .map(|n| TransientSlice::from_batch_filtered(500, &batch, map.owner_filter(n)))
            .collect();
        let mut keys: Vec<Key> = Vec::new();
        for t in &batch {
            keys.push(t.triple.out_key());
            keys.push(t.triple.in_key());
            keys.push(Key::index(t.triple.p, wukong_rdf::Dir::Out));
            keys.push(Key::index(t.triple.p, wukong_rdf::Dir::In));
        }
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            let holders: Vec<&TransientSlice> = shards
                .iter()
                .filter(|s| !s.neighbors(key).is_empty())
                .collect();
            assert!(holders.len() <= 1, "{key:?} held by more than one node");
            let merged = holders.first().map(|s| s.neighbors(key)).unwrap_or(&[]);
            assert_eq!(merged, full.neighbors(key), "{key:?}");
        }
    }

    #[test]
    fn window_lookup_covers_range_inclusive() {
        let mut st = TransientStore::new(1 << 20);
        for ts in [100, 200, 300, 400] {
            st.push_batch(TransientSlice::from_batch(ts, &[timing(1, 2, ts, ts)]));
        }
        let key = Key::new(Vid(1), Pid(2), wukong_rdf::Dir::Out);
        let got = st.neighbors_in(key, 200, 300);
        assert_eq!(got, vec![Vid(200), Vid(300)]);
    }

    #[test]
    fn gc_frees_only_expired() {
        let mut st = TransientStore::new(1 << 20);
        for ts in [100, 200, 300] {
            st.push_batch(slice(ts, 4));
        }
        assert_eq!(st.collect_expired(250), 2);
        assert_eq!(st.slice_count(), 1);
        assert_eq!(st.evicted_slices(), 2);
        // Remaining slice still queryable.
        assert!(!st
            .neighbors_in(Key::new(Vid(1), Pid(1), wukong_rdf::Dir::Out), 0, 999)
            .is_empty());
    }

    #[test]
    fn budget_forces_eviction() {
        let tiny = slice(0, 4).heap_bytes() * 2;
        let mut st = TransientStore::new(tiny);
        for ts in 0..10 {
            st.push_batch(slice(ts, 4));
        }
        assert!(st.used_bytes() <= tiny || st.slice_count() == 1);
        assert!(st.evicted_slices() > 0);
    }

    #[test]
    fn insert_slice_keeps_time_order_for_replay() {
        let mut st = TransientStore::new(1 << 20);
        for ts in [100, 300] {
            st.push_batch(TransientSlice::from_batch(ts, &[timing(1, 2, ts, ts)]));
        }
        // Replay a shed slice at the old timestamp 200.
        st.insert_slice(TransientSlice::from_batch(200, &[timing(1, 2, 200, 200)]));
        let key = Key::new(Vid(1), Pid(2), wukong_rdf::Dir::Out);
        assert_eq!(st.neighbors_in(key, 150, 250), vec![Vid(200)]);
        assert_eq!(
            st.neighbors_in(key, 0, 999),
            vec![Vid(100), Vid(200), Vid(300)]
        );
        // GC sweeps replayed slices like any other.
        assert_eq!(st.collect_expired(250), 2);
        assert_eq!(st.neighbors_in(key, 0, 999), vec![Vid(300)]);
    }

    #[test]
    fn empty_window_is_empty() {
        let st = TransientStore::new(1 << 20);
        assert!(st
            .neighbors_in(Key::new(Vid(1), Pid(1), wukong_rdf::Dir::Out), 0, 100)
            .is_empty());
    }
}
