//! One node's shard of the continuous persistent store (§4.1).
//!
//! The shard statically partitions its key space (the paper assigns one
//! partition per injector thread "which can avoid using locks during
//! injection"; here every partition has a reader/writer lock so concurrent
//! queries read while an injector writes). Keys partition by vertex —
//! keeping a vertex's `in` and `out` lists together — and index-vertex
//! keys spread by raw key hash.
//!
//! Batches are injected one at a time per shard (the paper's per-node
//! Injector drains Dispatcher output sequentially); within a batch,
//! multiple threads may call [`PersistentShard::inject_triple`] on
//! disjoint triples.

use crate::base::{AppendReceipt, BaseStore};
use crate::snapshot::SnapshotId;
use parking_lot::{Mutex, RwLock};
use wukong_rdf::{Dir, Key, Pid, Triple, Vid};

/// A lock-partitioned store shard.
pub struct PersistentShard {
    parts: Vec<RwLock<BaseStore>>,
    /// Serialises batches: at most one stream batch injects at a time, so
    /// one batch's appends to any key are contiguous (the stream-index
    /// contiguity invariant).
    batch_lock: Mutex<()>,
}

impl PersistentShard {
    /// Creates a shard with `partitions` key-space partitions.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0, "a shard needs at least one partition");
        PersistentShard {
            parts: (0..partitions)
                .map(|_| RwLock::new(BaseStore::new()))
                .collect(),
            batch_lock: Mutex::new(()),
        }
    }

    fn part_of(&self, key: Key) -> usize {
        let h = if key.is_index() {
            key.raw()
        } else {
            key.vid().0
        };
        (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize % self.parts.len()
    }

    /// Loads one triple of the initial dataset (snapshot 0).
    pub fn load_base(&self, t: Triple) {
        let mut receipts = Vec::new();
        self.inject_triple(t, SnapshotId::BASE, &mut receipts);
    }

    /// Appends one owned key update, for callers that route key updates
    /// to owner shards themselves (the distributed injection path, where
    /// a triple's four key updates may land on different shards).
    ///
    /// Returns the logical offset and whether the key was empty before —
    /// the first-edge signal that drives index-vertex maintenance.
    pub fn append_owned(
        &self,
        key: Key,
        v: Vid,
        sn: SnapshotId,
        merge_upto: Option<SnapshotId>,
    ) -> (u32, bool) {
        self.parts[self.part_of(key)]
            .write()
            .append_edge_merging(key, v, sn, merge_upto)
    }

    /// Counts one triple against this shard (the distributed path counts
    /// a triple on its subject key's owner only).
    pub fn count_triple(&self) {
        self.parts[0].write().note_triple();
    }

    /// Injects one triple under snapshot `sn`, appending receipts.
    ///
    /// The first-edge check and the data append happen atomically under
    /// the data key's partition lock, so the index stays duplicate-free
    /// under concurrent injection of disjoint triples.
    pub fn inject_triple(&self, t: Triple, sn: SnapshotId, receipts: &mut Vec<AppendReceipt>) {
        self.inject_triple_merging(t, sn, None, receipts)
    }

    /// Like [`PersistentShard::inject_triple`], consolidating each touched
    /// cell's intervals up to `merge_upto` along the way (injection-time
    /// snapshot recycling, §4.3).
    pub fn inject_triple_merging(
        &self,
        t: Triple,
        sn: SnapshotId,
        merge_upto: Option<SnapshotId>,
        receipts: &mut Vec<AppendReceipt>,
    ) {
        let out_key = t.out_key();
        let (off, first_out) = {
            let mut p = self.parts[self.part_of(out_key)].write();
            p.note_triple();
            p.append_edge_merging(out_key, t.o, sn, merge_upto)
        };
        receipts.push(AppendReceipt {
            key: out_key,
            offset: off,
        });

        let in_key = t.in_key();
        let (off, first_in) = {
            let mut p = self.parts[self.part_of(in_key)].write();
            p.append_edge_merging(in_key, t.s, sn, merge_upto)
        };
        receipts.push(AppendReceipt {
            key: in_key,
            offset: off,
        });

        if first_out {
            let k = Key::index(t.p, Dir::Out);
            let (off, _) = self.parts[self.part_of(k)]
                .write()
                .append_edge_merging(k, t.s, sn, merge_upto);
            receipts.push(AppendReceipt {
                key: k,
                offset: off,
            });
        }
        if first_in {
            let k = Key::index(t.p, Dir::In);
            let (off, _) = self.parts[self.part_of(k)]
                .write()
                .append_edge_merging(k, t.o, sn, merge_upto);
            receipts.push(AppendReceipt {
                key: k,
                offset: off,
            });
        }
    }

    /// Injects a whole batch under snapshot `sn`, returning its receipts.
    ///
    /// Holds the shard's batch lock for the duration, which is what makes
    /// every batch's per-key appends contiguous.
    pub fn inject_batch(&self, triples: &[Triple], sn: SnapshotId) -> Vec<AppendReceipt> {
        self.inject_batch_merging(triples, sn, None)
    }

    /// Like [`PersistentShard::inject_batch`] with injection-time snapshot
    /// consolidation up to `merge_upto`.
    pub fn inject_batch_merging(
        &self,
        triples: &[Triple],
        sn: SnapshotId,
        merge_upto: Option<SnapshotId>,
    ) -> Vec<AppendReceipt> {
        let _guard = self.batch_lock.lock();
        let mut receipts = Vec::with_capacity(triples.len() * 2);
        for &t in triples {
            self.inject_triple_merging(t, sn, merge_upto, &mut receipts);
        }
        receipts
    }

    /// Collects the neighbours of `key` visible at snapshot `sn`.
    pub fn neighbors_at(&self, key: Key, sn: SnapshotId) -> Vec<Vid> {
        self.parts[self.part_of(key)].read().neighbors_at(key, sn)
    }

    /// Visits the neighbours of `key` visible at snapshot `sn`.
    pub fn for_each_neighbor(&self, key: Key, sn: SnapshotId, f: impl FnMut(Vid)) {
        self.parts[self.part_of(key)]
            .read()
            .for_each_neighbor(key, sn, f)
    }

    /// Length of `key`'s neighbour list at snapshot `sn`.
    pub fn len_at(&self, key: Key, sn: SnapshotId) -> usize {
        self.parts[self.part_of(key)].read().len_at(key, sn)
    }

    /// Reads a fat-pointer range of `key`.
    pub fn read_range(&self, key: Key, start: u32, len: u32, out: &mut Vec<Vid>) {
        self.parts[self.part_of(key)]
            .read()
            .read_range(key, start, len, out)
    }

    /// Whether `(s, p, o)` is visible at snapshot `sn`.
    pub fn exists_at(&self, s: Vid, p: Pid, o: Vid, sn: SnapshotId) -> bool {
        let out_key = Key::new(s, p, Dir::Out);
        // Both keys may live in different partitions; take each read lock
        // in turn (queries never hold two partition locks at once).
        let out_len = self.len_at(out_key, sn);
        let in_key = Key::new(o, p, Dir::In);
        let in_len = self.len_at(in_key, sn);
        let (key, needle) = if out_len <= in_len {
            (out_key, o)
        } else {
            (in_key, s)
        };
        let mut found = false;
        self.for_each_neighbor(key, sn, |v| found |= v == needle);
        found
    }

    /// Consolidates snapshot intervals ≤ `upto` in every partition.
    pub fn consolidate(&self, upto: SnapshotId) {
        for p in &self.parts {
            p.write().consolidate(upto);
        }
    }

    /// Largest number of retained snapshot intervals across partitions.
    pub fn max_retained_snapshots(&self) -> usize {
        self.parts
            .iter()
            .map(|p| p.read().max_retained_snapshots())
            .max()
            .unwrap_or(0)
    }

    /// Total triples inserted into this shard.
    pub fn triple_count(&self) -> u64 {
        self.parts.iter().map(|p| p.read().triple_count()).sum()
    }

    /// Approximate heap bytes of the shard.
    pub fn heap_bytes(&self) -> usize {
        self.parts.iter().map(|p| p.read().heap_bytes()).sum()
    }

    /// Visits every key in the shard (statistics, checkpointing).
    pub fn for_each_key(&self, mut f: impl FnMut(Key, usize)) {
        for p in &self.parts {
            p.read().for_each_key(|k, c| f(k, c.total_len()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64, p: u64, o: u64) -> Triple {
        Triple::new(Vid(s), Pid(p), Vid(o))
    }

    #[test]
    fn shard_mirrors_base_store_semantics() {
        let shard = PersistentShard::new(8);
        shard.load_base(t(1, 4, 5));
        shard.load_base(t(1, 4, 6));
        let sn = SnapshotId::BASE;
        assert_eq!(
            shard.neighbors_at(Key::new(Vid(1), Pid(4), Dir::Out), sn),
            vec![Vid(5), Vid(6)]
        );
        assert_eq!(
            shard.neighbors_at(Key::index(Pid(4), Dir::In), sn),
            vec![Vid(5), Vid(6)]
        );
        assert!(shard.exists_at(Vid(1), Pid(4), Vid(5), sn));
        assert_eq!(shard.triple_count(), 2);
    }

    #[test]
    fn batch_receipts_are_contiguous_per_key() {
        let shard = PersistentShard::new(4);
        let batch: Vec<Triple> = (0..10).map(|i| t(i + 1, 3, 99)).collect();
        let receipts = shard.inject_batch(&batch, SnapshotId(1));
        // All ten appends to [99|3|in] must form offsets 0..10.
        let key = Key::new(Vid(99), Pid(3), Dir::In);
        let mut offs: Vec<u32> = receipts
            .iter()
            .filter(|r| r.key == key)
            .map(|r| r.offset)
            .collect();
        offs.sort_unstable();
        assert_eq!(offs, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn concurrent_injection_keeps_index_duplicate_free() {
        use std::sync::Arc;
        let shard = Arc::new(PersistentShard::new(8));
        // 4 threads × 100 triples, all sharing predicate 7 and object 500.
        let handles: Vec<_> = (0..4)
            .map(|th| {
                let shard = Arc::clone(&shard);
                std::thread::spawn(move || {
                    let mut rc = Vec::new();
                    for i in 0..100u64 {
                        shard.inject_triple(t(th * 100 + i + 1, 7, 500), SnapshotId(1), &mut rc);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Object 500 gained 400 in-edges but appears once in the in-index.
        let sn = SnapshotId(1);
        assert_eq!(shard.len_at(Key::new(Vid(500), Pid(7), Dir::In), sn), 400);
        let idx = shard.neighbors_at(Key::index(Pid(7), Dir::In), sn);
        assert_eq!(idx.iter().filter(|&&v| v == Vid(500)).count(), 1);
        // Each distinct subject appears exactly once in the out-index.
        let out_idx = shard.neighbors_at(Key::index(Pid(7), Dir::Out), sn);
        assert_eq!(out_idx.len(), 400);
        let mut sorted = out_idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 400);
    }

    #[test]
    fn disjoint_owner_filtered_appends_match_serial() {
        use crate::sharding::ShardMap;
        use std::sync::Arc;
        // The parallel-ingest contract: worker tasks apply owner-disjoint
        // key sets through `append_owned(&self)` concurrently, and every
        // key's list comes out exactly as a serial application — each key
        // is written by one task only, in that task's order.
        let triples: Vec<Triple> = (0..200u64)
            .map(|i| t(i % 50 + 1, i % 5 + 1, i + 2))
            .collect();
        let serial = PersistentShard::new(8);
        for &tr in &triples {
            serial.append_owned(tr.out_key(), tr.o, SnapshotId(1), None);
            serial.append_owned(tr.in_key(), tr.s, SnapshotId(1), None);
        }
        let shard = Arc::new(PersistentShard::new(8));
        let handles: Vec<_> = (0..4u16)
            .map(|n| {
                let shard = Arc::clone(&shard);
                let triples = triples.clone();
                std::thread::spawn(move || {
                    let map = ShardMap::new(4);
                    let owns = map.owner_filter(n);
                    for tr in triples {
                        if owns(tr.out_key()) {
                            shard.append_owned(tr.out_key(), tr.o, SnapshotId(1), None);
                        }
                        if owns(tr.in_key()) {
                            shard.append_owned(tr.in_key(), tr.s, SnapshotId(1), None);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for &tr in &triples {
            for key in [tr.out_key(), tr.in_key()] {
                assert_eq!(
                    shard.neighbors_at(key, SnapshotId(1)),
                    serial.neighbors_at(key, SnapshotId(1)),
                    "{key:?}"
                );
            }
        }
    }

    #[test]
    fn consolidation_bounds_snapshots() {
        let shard = PersistentShard::new(2);
        for sn in 1..=5u64 {
            shard.inject_batch(&[t(1, 2, 100 + sn)], SnapshotId(sn));
        }
        assert!(shard.max_retained_snapshots() >= 5);
        shard.consolidate(SnapshotId(4));
        assert_eq!(shard.max_retained_snapshots(), 1);
        // Visibility of the still-gated snapshot is preserved.
        let key = Key::new(Vid(1), Pid(2), Dir::Out);
        assert_eq!(shard.len_at(key, SnapshotId(4)), 4);
        assert_eq!(shard.len_at(key, SnapshotId(5)), 5);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = PersistentShard::new(0);
    }
}
