//! The stream index (§4.2, Fig. 8).
//!
//! After the persistent store absorbs a stream's timeless tuples, the data
//! of one window is sprinkled across the whole store; walking full values
//! to find the tuples of a window would cost O(stored data). The stream
//! index is the fast path: per stream, a time-ordered sequence of
//! [`IndexBatch`]es, each mapping the keys a batch appended to onto a
//! [`FatPointer`] into the persistent value. A window lookup then touches
//! only the batches inside the window — "the search space is extremely
//! decreased and independent to the size of stored data".
//!
//! Fat pointers here are `(logical offset, length)` pairs rather than raw
//! addresses (the paper uses a 96-bit address+size pointer): the
//! persistent store is append-only per key, so logical offsets are stable
//! even across snapshot consolidation, which gives the same O(1) range
//! access without unsafe memory.

use std::collections::{HashMap, VecDeque};
use wukong_rdf::{Key, Timestamp, Vid};

use crate::base::{AppendReceipt, BaseStore};

/// A `(start, len)` range within one key's logical neighbour sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatPointer {
    /// Logical offset of the first neighbour this batch appended.
    pub start: u32,
    /// Number of neighbours appended by this batch.
    pub len: u32,
}

/// The stream-index entries of one stream batch.
#[derive(Debug, Clone, Default)]
pub struct IndexBatch {
    /// Batch timestamp.
    pub timestamp: Timestamp,
    entries: HashMap<Key, FatPointer>,
}

impl IndexBatch {
    /// Builds an index batch from the injector's append receipts.
    ///
    /// Appends by one batch to one key are contiguous in that key's
    /// logical sequence (the key partition is single-writer), so receipts
    /// coalesce into one fat pointer per key.
    pub fn from_receipts(timestamp: Timestamp, receipts: &[AppendReceipt]) -> Self {
        let mut entries: HashMap<Key, FatPointer> = HashMap::new();
        for r in receipts {
            let e = entries.entry(r.key).or_insert(FatPointer {
                start: r.offset,
                len: 0,
            });
            // Receipts of one key may arrive out of order when multiple
            // injector threads split a batch, but the offsets still form a
            // contiguous range; track the minimum start and the count.
            e.start = e.start.min(r.offset);
            e.len += 1;
        }
        if cfg!(debug_assertions) {
            let mut spans: HashMap<Key, (u32, u32)> = HashMap::new();
            for r in receipts {
                let s = spans.entry(r.key).or_insert((r.offset, r.offset));
                s.0 = s.0.min(r.offset);
                s.1 = s.1.max(r.offset);
            }
            for (k, (lo, hi)) in spans {
                let e = entries[&k];
                debug_assert_eq!(
                    hi - lo + 1,
                    e.len,
                    "receipts for one key must form a contiguous range"
                );
            }
        }
        IndexBatch { timestamp, entries }
    }

    /// The fat pointer for `key`, if this batch appended to it.
    pub fn get(&self, key: Key) -> Option<FatPointer> {
        self.entries.get(&key).copied()
    }

    /// Visits every key this batch appended to.
    pub fn for_each_key(&self, mut f: impl FnMut(Key)) {
        for k in self.entries.keys() {
            f(*k);
        }
    }

    /// Number of indexed keys.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Approximate heap bytes of this batch's entries.
    pub fn heap_bytes(&self) -> usize {
        self.entries.len() * (std::mem::size_of::<Key>() + std::mem::size_of::<FatPointer>() + 16)
    }
}

/// The time-ordered stream index of one stream (on one node or replica).
#[derive(Debug, Default)]
pub struct StreamIndex {
    batches: VecDeque<IndexBatch>,
    retired: u64,
}

impl StreamIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a batch at the new side.
    pub fn push_batch(&mut self, batch: IndexBatch) {
        debug_assert!(
            self.batches
                .back()
                .map(|b| b.timestamp <= batch.timestamp)
                .unwrap_or(true),
            "index batches must arrive in time order"
        );
        self.batches.push_back(batch);
    }

    /// Inserts a batch at its time-ordered position (batches with equal
    /// timestamps keep arrival order). The normal ingest path appends via
    /// [`StreamIndex::push_batch`]; this is the catch-up replay path,
    /// which re-inserts shed tuples at their *original* timestamps after
    /// newer batches have already been appended. The deque stays sorted,
    /// so the `partition_point` window scans remain correct.
    pub fn insert_batch(&mut self, batch: IndexBatch) {
        let pos = self
            .batches
            .partition_point(|b| b.timestamp <= batch.timestamp);
        if pos == self.batches.len() {
            self.batches.push_back(batch);
        } else {
            self.batches.insert(pos, batch);
        }
    }

    /// Retires every batch older than `expiry` (exclusive), mirroring the
    /// transient store's GC. Returns the number retired.
    pub fn retire_expired(&mut self, expiry: Timestamp) -> usize {
        let mut n = 0;
        while let Some(front) = self.batches.front() {
            if front.timestamp >= expiry {
                break;
            }
            self.batches.pop_front();
            self.retired += 1;
            n += 1;
        }
        n
    }

    /// Collects `key`'s neighbours appended by batches in `[lo, hi]`,
    /// reading the ranges out of `store` via the fat pointers.
    pub fn neighbors_in(
        &self,
        store: &BaseStore,
        key: Key,
        lo: Timestamp,
        hi: Timestamp,
        out: &mut Vec<Vid>,
    ) {
        self.for_each_pointer_in(key, lo, hi, |fp| {
            store.read_range(key, fp.start, fp.len, out);
        });
    }

    /// Visits the fat pointers of `key` for batches in `[lo, hi]`.
    pub fn for_each_pointer_in(
        &self,
        key: Key,
        lo: Timestamp,
        hi: Timestamp,
        mut f: impl FnMut(FatPointer),
    ) {
        self.for_each_pointer_timed_in(key, lo, hi, |_, fp| f(fp));
    }

    /// Visits the fat pointers of `key` for batches in `[lo, hi]`,
    /// handing each pointer's batch timestamp to the callback.
    ///
    /// This is the delta-scan primitive of the incremental execution
    /// mode: a firing over a window that overlaps its predecessor asks
    /// only for the inserted suffix `(prev_end, new_end]` and the
    /// expired prefix `[prev_start, new_start)`, and tags every binding
    /// row with the timestamps of its contributing edges so expired rows
    /// can later be retracted without a rescan.
    pub fn for_each_pointer_timed_in(
        &self,
        key: Key,
        lo: Timestamp,
        hi: Timestamp,
        mut f: impl FnMut(Timestamp, FatPointer),
    ) {
        let start = self.batches.partition_point(|b| b.timestamp < lo);
        for b in self.batches.iter().skip(start) {
            if b.timestamp > hi {
                break;
            }
            if let Some(fp) = b.get(key) {
                f(b.timestamp, fp);
            }
        }
    }

    /// Collects `key`'s neighbours appended in `[lo, hi]` together with
    /// their batch timestamps — the timed twin of [`Self::neighbors_in`].
    pub fn neighbors_timed_in(
        &self,
        store: &BaseStore,
        key: Key,
        lo: Timestamp,
        hi: Timestamp,
        out: &mut Vec<(Vid, Timestamp)>,
    ) {
        let mut tmp = Vec::new();
        self.for_each_pointer_timed_in(key, lo, hi, |ts, fp| {
            tmp.clear();
            store.read_range(key, fp.start, fp.len, &mut tmp);
            out.extend(tmp.iter().map(|&v| (v, ts)));
        });
    }

    /// Total neighbours `key` gained in `[lo, hi]` (for planner costs).
    pub fn count_in(&self, key: Key, lo: Timestamp, hi: Timestamp) -> usize {
        let mut n = 0;
        self.for_each_pointer_in(key, lo, hi, |fp| n += fp.len as usize);
        n
    }

    /// Collects the vertices that gained a `pid` edge in direction `dir`
    /// during `[lo, hi]` — the window equivalent of an index-vertex scan.
    ///
    /// Enumerating touched keys, rather than following the index vertex's
    /// own fat pointers, is what makes window scans *complete*: a vertex
    /// whose first `pid` edge predates the window never re-enters the
    /// persistent index, but its key is touched by every batch that
    /// appends to it. Callers should deduplicate (a vertex may act in
    /// several batches of one window).
    pub fn vertices_in(
        &self,
        pid: wukong_rdf::Pid,
        dir: wukong_rdf::Dir,
        lo: Timestamp,
        hi: Timestamp,
        out: &mut Vec<Vid>,
    ) {
        let start = self.batches.partition_point(|b| b.timestamp < lo);
        for b in self.batches.iter().skip(start) {
            if b.timestamp > hi {
                break;
            }
            b.for_each_key(|k| {
                if !k.is_index() && k.pid() == pid && k.dir() == dir {
                    out.push(k.vid());
                }
            });
        }
    }

    /// Number of live batches.
    pub fn batch_count(&self) -> usize {
        self.batches.len()
    }

    /// Batches retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Approximate heap bytes of the whole index.
    pub fn heap_bytes(&self) -> usize {
        self.batches.iter().map(IndexBatch::heap_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotId;
    use wukong_rdf::{Dir, Pid, Triple};

    fn t(s: u64, p: u64, o: u64) -> Triple {
        Triple::new(Vid(s), Pid(p), Vid(o))
    }

    /// Injects a batch of triples and indexes it, like the Injector does.
    fn inject(
        store: &mut BaseStore,
        index: &mut StreamIndex,
        ts: Timestamp,
        sn: SnapshotId,
        triples: &[Triple],
    ) {
        let mut rc = Vec::new();
        for &tr in triples {
            store.insert_at(tr, sn, &mut rc);
        }
        index.push_batch(IndexBatch::from_receipts(ts, &rc));
    }

    #[test]
    fn owner_partitioned_batches_cover_the_global_build() {
        use crate::sharding::ShardMap;
        // Parallel ingest builds one IndexBatch per node from that node's
        // own receipts. Per-node batches must be key-disjoint and, taken
        // together, reproduce the single batch a serial injector would
        // have built from the concatenated receipts.
        let receipts: Vec<AppendReceipt> = (0..120u64)
            .map(|i| AppendReceipt {
                key: Key::new(
                    Vid(i % 17 + 1),
                    Pid(i % 5 + 1),
                    if i % 2 == 0 { Dir::Out } else { Dir::In },
                ),
                offset: (i / 17) as u32,
            })
            .collect();
        let global = IndexBatch::from_receipts(900, &receipts);
        let map = ShardMap::new(4);
        let per_node: Vec<IndexBatch> = (0..4u16)
            .map(|n| {
                let owns = map.owner_filter(n);
                let rc: Vec<AppendReceipt> =
                    receipts.iter().filter(|r| owns(r.key)).copied().collect();
                IndexBatch::from_receipts(900, &rc)
            })
            .collect();
        assert_eq!(
            per_node.iter().map(IndexBatch::entry_count).sum::<usize>(),
            global.entry_count(),
            "node batches must be key-disjoint and jointly complete"
        );
        global.for_each_key(|k| {
            let node = map.node_of_key(k) as usize;
            assert_eq!(per_node[node].get(k), global.get(k), "{k:?}");
        });
    }

    #[test]
    fn fig8_window_lookup() {
        // Fig. 8: likes of T-15(7) arrive at 0806 (Erik,Tony,Bruce), 0810
        // (Clint,Steve) and 0812 (Thor). A window [0807, 0811] must return
        // exactly Clint and Steve via the stream index.
        let li = 3;
        let mut store = BaseStore::new();
        let mut idx = StreamIndex::new();
        inject(
            &mut store,
            &mut idx,
            806,
            SnapshotId(1),
            &[t(2, li, 7), t(9, li, 7), t(10, li, 7)],
        );
        inject(
            &mut store,
            &mut idx,
            810,
            SnapshotId(1),
            &[t(12, li, 7), t(13, li, 7)],
        );
        inject(&mut store, &mut idx, 812, SnapshotId(2), &[t(14, li, 7)]);

        let key = Key::new(Vid(7), Pid(li), Dir::In);
        let mut out = Vec::new();
        idx.neighbors_in(&store, key, 807, 811, &mut out);
        assert_eq!(out, vec![Vid(12), Vid(13)]);

        // The full value holds all six likers; the index walked only two.
        assert_eq!(store.len_at(key, SnapshotId(2)), 6);
        assert_eq!(idx.count_in(key, 807, 811), 2);
    }

    #[test]
    fn pointers_survive_consolidation() {
        let mut store = BaseStore::new();
        let mut idx = StreamIndex::new();
        inject(&mut store, &mut idx, 100, SnapshotId(1), &[t(1, 2, 3)]);
        inject(&mut store, &mut idx, 200, SnapshotId(2), &[t(1, 2, 4)]);
        store.consolidate(SnapshotId(2));

        let key = Key::new(Vid(1), Pid(2), Dir::Out);
        let mut out = Vec::new();
        idx.neighbors_in(&store, key, 200, 200, &mut out);
        assert_eq!(out, vec![Vid(4)]);
    }

    #[test]
    fn retire_drops_old_batches_only() {
        let mut store = BaseStore::new();
        let mut idx = StreamIndex::new();
        for (i, ts) in [100u64, 200, 300].iter().enumerate() {
            inject(
                &mut store,
                &mut idx,
                *ts,
                SnapshotId(1),
                &[t(1, 2, 50 + i as u64)],
            );
        }
        assert_eq!(idx.retire_expired(250), 2);
        assert_eq!(idx.batch_count(), 1);

        let key = Key::new(Vid(1), Pid(2), Dir::Out);
        // The retired window no longer resolves through the index…
        let mut out = Vec::new();
        idx.neighbors_in(&store, key, 0, 249, &mut out);
        assert!(out.is_empty());
        // …but the data itself is still in the persistent store.
        assert_eq!(store.len_at(key, SnapshotId(1)), 3);
    }

    #[test]
    fn multi_append_batch_coalesces_to_one_pointer() {
        let mut store = BaseStore::new();
        let mut idx = StreamIndex::new();
        // Three likes of the same tweet in one batch → one fat pointer of
        // length 3 on the in-key.
        inject(
            &mut store,
            &mut idx,
            100,
            SnapshotId(1),
            &[t(1, 2, 9), t(3, 2, 9), t(4, 2, 9)],
        );
        let key = Key::new(Vid(9), Pid(2), Dir::In);
        let mut ptrs = Vec::new();
        idx.for_each_pointer_in(key, 100, 100, |fp| ptrs.push(fp));
        assert_eq!(ptrs, vec![FatPointer { start: 0, len: 3 }]);
    }

    #[test]
    fn timed_scan_matches_untimed_and_tags_batch_timestamps() {
        let li = 3;
        let mut store = BaseStore::new();
        let mut idx = StreamIndex::new();
        inject(
            &mut store,
            &mut idx,
            806,
            SnapshotId(1),
            &[t(2, li, 7), t(9, li, 7)],
        );
        inject(
            &mut store,
            &mut idx,
            810,
            SnapshotId(1),
            &[t(12, li, 7), t(13, li, 7)],
        );
        inject(&mut store, &mut idx, 812, SnapshotId(2), &[t(14, li, 7)]);

        let key = Key::new(Vid(7), Pid(li), Dir::In);
        // The inserted suffix of a slide from [801, 810] to [803, 812].
        let mut timed = Vec::new();
        idx.neighbors_timed_in(&store, key, 811, 812, &mut timed);
        assert_eq!(timed, vec![(Vid(14), 812)]);

        // Over the full range, the timed scan is the untimed scan plus
        // per-edge batch timestamps, in the same order.
        let mut untimed = Vec::new();
        idx.neighbors_in(&store, key, 0, 999, &mut untimed);
        timed.clear();
        idx.neighbors_timed_in(&store, key, 0, 999, &mut timed);
        assert_eq!(timed.iter().map(|&(v, _)| v).collect::<Vec<_>>(), untimed);
        assert_eq!(
            timed.iter().map(|&(_, ts)| ts).collect::<Vec<_>>(),
            vec![806, 806, 810, 810, 812]
        );
    }

    #[test]
    fn contiguous_range_invariant_survives_consolidation() {
        // Delta scans resolve fat pointers against the *consolidated*
        // store; that is only sound because (a) receipts of one key in one
        // batch form a contiguous logical range (the from_receipts
        // debug_assert) and (b) logical offsets are stable across snapshot
        // consolidation. Pin both halves: interleave two keys so receipt
        // offsets per key are non-trivial, consolidate, and check every
        // pointer still resolves to its own batch's edges.
        let mut store = BaseStore::new();
        let mut idx = StreamIndex::new();
        inject(
            &mut store,
            &mut idx,
            100,
            SnapshotId(1),
            &[t(1, 2, 10), t(5, 2, 11), t(1, 2, 12), t(5, 2, 13)],
        );
        inject(
            &mut store,
            &mut idx,
            200,
            SnapshotId(2),
            &[t(1, 2, 14), t(5, 2, 15), t(1, 2, 16)],
        );
        store.consolidate(SnapshotId(2));

        let k1 = Key::new(Vid(1), Pid(2), Dir::Out);
        let k5 = Key::new(Vid(5), Pid(2), Dir::Out);
        // Per-batch pointers are contiguous per key…
        let mut ptrs = Vec::new();
        idx.for_each_pointer_timed_in(k1, 0, 999, |ts, fp| ptrs.push((ts, fp)));
        assert_eq!(
            ptrs,
            vec![
                (100, FatPointer { start: 0, len: 2 }),
                (200, FatPointer { start: 2, len: 2 }),
            ]
        );
        // …and resolve, post-consolidation, to exactly their batch's edges.
        let mut out = Vec::new();
        idx.neighbors_timed_in(&store, k1, 200, 200, &mut out);
        assert_eq!(out, vec![(Vid(14), 200), (Vid(16), 200)]);
        out.clear();
        idx.neighbors_timed_in(&store, k5, 100, 100, &mut out);
        assert_eq!(out, vec![(Vid(11), 100), (Vid(13), 100)]);
        out.clear();
        idx.neighbors_timed_in(&store, k5, 200, 200, &mut out);
        assert_eq!(out, vec![(Vid(15), 200)]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "contiguous range")]
    fn non_contiguous_receipts_for_one_key_are_rejected() {
        // The delta scan depends on one-pointer-per-key-per-batch; a
        // receipt set with a hole (offsets 0 and 2, nothing at 1) must
        // trip the from_receipts invariant in debug builds.
        let key = Key::new(Vid(1), Pid(2), Dir::Out);
        let receipts = [
            AppendReceipt { key, offset: 0 },
            AppendReceipt { key, offset: 2 },
        ];
        let _ = IndexBatch::from_receipts(100, &receipts);
    }

    #[test]
    fn insert_batch_keeps_time_order_for_replay() {
        // Catch-up replay re-inserts shed tuples at their original (now
        // old) timestamps: appends land at fresh logical offsets, but the
        // index batch must slot into time order so window scans that
        // binary-search on timestamps still see it.
        let mut store = BaseStore::new();
        let mut idx = StreamIndex::new();
        inject(&mut store, &mut idx, 100, SnapshotId(1), &[t(1, 2, 10)]);
        inject(&mut store, &mut idx, 300, SnapshotId(1), &[t(1, 2, 30)]);

        // Replay a batch at the (old) timestamp 200.
        let mut rc = Vec::new();
        store.insert_at(t(1, 2, 20), SnapshotId(2), &mut rc);
        idx.insert_batch(IndexBatch::from_receipts(200, &rc));

        let key = Key::new(Vid(1), Pid(2), Dir::Out);
        let mut out = Vec::new();
        idx.neighbors_in(&store, key, 150, 250, &mut out);
        assert_eq!(out, vec![Vid(20)], "window scan finds the replayed batch");
        out.clear();
        idx.neighbors_in(&store, key, 0, 999, &mut out);
        assert_eq!(out, vec![Vid(10), Vid(20), Vid(30)], "time order restored");

        // Equal timestamps keep arrival order; a replay at the newest
        // timestamp appends.
        let mut rc = Vec::new();
        store.insert_at(t(1, 2, 31), SnapshotId(2), &mut rc);
        idx.insert_batch(IndexBatch::from_receipts(300, &rc));
        out.clear();
        idx.neighbors_in(&store, key, 300, 300, &mut out);
        assert_eq!(out, vec![Vid(30), Vid(31)]);

        // GC still retires from the front across replayed batches.
        assert_eq!(idx.retire_expired(250), 2);
        assert_eq!(idx.batch_count(), 2);
    }

    #[test]
    fn index_smaller_than_data() {
        // Table 7's premise: the index is a small fraction of raw data.
        let mut store = BaseStore::new();
        let mut idx = StreamIndex::new();
        for batch in 0..10u64 {
            let triples: Vec<_> = (0..100).map(|i| t(batch * 100 + i, 2, 7)).collect();
            inject(&mut store, &mut idx, batch * 100, SnapshotId(1), &triples);
        }
        assert!(idx.heap_bytes() < store.heap_bytes());
    }
}
