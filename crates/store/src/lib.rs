#![warn(missing_docs)]
//! The hybrid store of Wukong+S (§4.1-§4.3).
//!
//! Wukong+S manages streaming and stored data differentially:
//!
//! - The [`base`] module implements the Wukong-style key/value graph store
//!   (`[vid|pid|dir] → neighbour list`, plus index vertices).
//! - The [`persistent`] module extends it into the *continuous persistent
//!   store*: timeless stream data is injected incrementally and versioned
//!   by scalar snapshot numbers ([`snapshot`]), the paper's *bounded
//!   snapshot scalarization* (§4.3).
//! - The [`transient`] module implements the *time-based transient store*:
//!   a ring buffer of per-batch slices holding timing data, swept by the
//!   garbage collector ([`gc`]) once every window that could observe them
//!   has passed (§4.1, Fig. 7).
//! - The [`stream_index`] module implements the *stream index* (§4.2,
//!   Fig. 8): a time-ordered fast path from `[vid|pid|dir]` to the exact
//!   range of a persistent value that one stream batch appended.
//! - The [`sharding`] module assigns vertices (and therefore keys) to
//!   cluster nodes.
//! - The [`stats`] module maintains the cardinality statistics the query
//!   planner uses for pattern ordering.

pub mod base;
pub mod gc;
pub mod persistent;
pub mod sharding;
pub mod snapshot;
pub mod stats;
pub mod stream_index;
pub mod transient;

pub use base::BaseStore;
pub use gc::GcStats;
pub use persistent::PersistentShard;
pub use sharding::ShardMap;
pub use snapshot::SnapshotId;
pub use stats::{StatsEpoch, StoreStats};
pub use stream_index::{FatPointer, IndexBatch, StreamIndex};
pub use transient::{TransientSlice, TransientStore};
