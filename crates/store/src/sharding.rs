//! Vertex → node sharding.
//!
//! Wukong+S "scales by partitioning the initially stored data into a large
//! number of shards across multiple nodes and dispatching streams to
//! different nodes" (§3). Both the persistent and transient stores use the
//! *same* sharding, which co-locates a stream's timeless and timing data
//! (§4.1). A key lives on the node that owns its vertex; index-vertex keys
//! are hashed by predicate so the index load spreads across the cluster.

use wukong_rdf::{Key, Triple, Vid};

/// Deterministic assignment of vertices (and keys) to cluster nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    nodes: u16,
}

impl ShardMap {
    /// Creates a shard map over `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: u16) -> Self {
        assert!(nodes > 0, "a shard map needs at least one node");
        ShardMap { nodes }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// The node owning vertex `v`.
    ///
    /// Fibonacci-hash the ID so consecutive generator IDs spread evenly.
    pub fn node_of_vertex(&self, v: Vid) -> u16 {
        (fib_hash(v.0) % self.nodes as u64) as u16
    }

    /// The node owning `key`.
    ///
    /// Normal keys follow their vertex; index-vertex keys are spread by
    /// predicate and direction so that no single node owns every index.
    pub fn node_of_key(&self, key: Key) -> u16 {
        if key.is_index() {
            (fib_hash(key.raw()) % self.nodes as u64) as u16
        } else {
            self.node_of_vertex(key.vid())
        }
    }

    /// A predicate testing whether `node` owns a key — the per-node
    /// ownership filter each parallel ingest task applies to its
    /// sub-batch. Two different nodes' filters are disjoint (a key has
    /// exactly one owner), which is what makes concurrent per-node
    /// application race-free by construction.
    pub fn owner_filter(&self, node: u16) -> impl Fn(Key) -> bool + '_ {
        move |k| self.node_of_key(k) == node
    }

    /// The nodes a triple's four potential key updates land on.
    ///
    /// Injection must route one triple to every node that owns one of its
    /// keys; this returns the deduplicated set (at most 4 nodes).
    pub fn nodes_of_triple(&self, t: &Triple) -> Vec<u16> {
        let mut nodes = vec![
            self.node_of_key(t.out_key()),
            self.node_of_key(t.in_key()),
            self.node_of_key(Key::index(t.p, wukong_rdf::Dir::Out)),
            self.node_of_key(Key::index(t.p, wukong_rdf::Dir::In)),
        ];
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

fn fib_hash(x: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16
}

#[cfg(test)]
mod tests {
    use super::*;
    use wukong_rdf::{Dir, Pid};

    #[test]
    fn single_node_owns_everything() {
        let m = ShardMap::new(1);
        assert_eq!(m.node_of_vertex(Vid(12345)), 0);
        assert_eq!(m.node_of_key(Key::index(Pid(3), Dir::In)), 0);
    }

    #[test]
    fn assignment_is_deterministic_and_in_range() {
        let m = ShardMap::new(8);
        for i in 0..1000 {
            let n = m.node_of_vertex(Vid(i));
            assert!(n < 8);
            assert_eq!(n, m.node_of_vertex(Vid(i)));
        }
    }

    #[test]
    fn distribution_is_roughly_even() {
        let m = ShardMap::new(4);
        let mut counts = [0usize; 4];
        for i in 0..10_000 {
            counts[m.node_of_vertex(Vid(i)) as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 1_500, "skewed shard: {counts:?}");
        }
    }

    #[test]
    fn normal_key_follows_vertex() {
        let m = ShardMap::new(8);
        let k = Key::new(Vid(42), Pid(3), Dir::Out);
        assert_eq!(m.node_of_key(k), m.node_of_vertex(Vid(42)));
    }

    #[test]
    fn triple_routing_covers_all_keys() {
        let m = ShardMap::new(8);
        let t = Triple::new(Vid(1), Pid(2), Vid(3));
        let nodes = m.nodes_of_triple(&t);
        assert!(nodes.contains(&m.node_of_key(t.out_key())));
        assert!(nodes.contains(&m.node_of_key(t.in_key())));
        assert!(nodes.contains(&m.node_of_key(Key::index(Pid(2), Dir::In))));
        assert!(nodes.len() <= 4);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = ShardMap::new(0);
    }

    #[test]
    fn owner_filters_partition_the_key_space() {
        let m = ShardMap::new(4);
        let filters: Vec<_> = (0..4).map(|n| m.owner_filter(n)).collect();
        for i in 0..500 {
            for key in [
                Key::new(Vid(i), Pid(i % 7), Dir::Out),
                Key::index(Pid(i % 7), Dir::In),
            ] {
                let owners = filters.iter().filter(|f| f(key)).count();
                assert_eq!(owners, 1, "every key has exactly one owner");
            }
        }
    }
}
