//! End-to-end crash recovery (§5).
//!
//! [`RecoveryManager`] packages the full recovery path over a running
//! deployment: capture the durable state a crash would leave behind
//! (drained checkpoints plus a non-draining tail of the current log),
//! boot a fresh engine, replay the checkpoint chain, re-register the
//! continuous queries, restore the vector timestamps, and resume the
//! windows at the checkpointed stable VTS so no delayed firing is lost
//! (at-least-once: the firing *at* the horizon may repeat, never vanish).
//!
//! The manager owns the immutable inputs recovery needs — configuration,
//! initial stored data, stream schemas, the shared string server — so a
//! drill is a one-liner for benches and tests.

use crate::checkpoint::CheckpointError;
use crate::config::EngineConfig;
use crate::engine::{RecoveryReport, WukongS};
use bytes::Bytes;
use std::sync::Arc;
use wukong_net::NodeId;
use wukong_rdf::{StringServer, Triple};
use wukong_stream::StreamSchema;

/// Drives checkpoint-and-log recovery for one deployment lineage.
pub struct RecoveryManager {
    cfg: EngineConfig,
    base: Vec<Triple>,
    schemas: Vec<StreamSchema>,
    strings: Arc<StringServer>,
}

impl RecoveryManager {
    /// Captures the recovery inputs: the deployment's configuration, its
    /// initial stored data, the stream schemas in registration order, and
    /// the shared string server checkpointed IDs refer to.
    pub fn new(
        cfg: EngineConfig,
        base: Vec<Triple>,
        schemas: Vec<StreamSchema>,
        strings: Arc<StringServer>,
    ) -> Self {
        RecoveryManager {
            cfg,
            base,
            schemas,
            strings,
        }
    }

    /// The durable state a crash of `engine` would leave behind: every
    /// drained checkpoint plus a tail checkpoint of the un-drained log.
    pub fn durable_state(&self, engine: &WukongS) -> Vec<Bytes> {
        let mut cps = engine.checkpoints();
        cps.push(engine.tail_checkpoint());
        cps
    }

    /// Boots a fresh engine from durable state. The recovered deployment
    /// runs fault-free: the fault plan (and any dead node) died with the
    /// failed process.
    pub fn recover(&self, durable: &[Bytes]) -> Result<(WukongS, RecoveryReport), CheckpointError> {
        let mut cfg = self.cfg.clone();
        cfg.fault_plan = None;
        WukongS::recover_with_report(
            cfg,
            self.base.iter().copied(),
            self.schemas.clone(),
            &self.strings,
            durable,
        )
    }

    /// The full drill: kill `node` on the running engine, capture the
    /// durable state exactly as the crash would see it, and recover a
    /// fresh engine from it.
    pub fn drill(
        &self,
        engine: &WukongS,
        node: NodeId,
    ) -> Result<(WukongS, RecoveryReport), CheckpointError> {
        engine.cluster().fabric().kill_node(node);
        let durable = self.durable_state(engine);
        self.recover(&durable)
    }
}
