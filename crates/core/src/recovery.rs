//! End-to-end crash recovery (§5).
//!
//! [`RecoveryManager`] packages the full recovery path over a running
//! deployment: capture the durable state a crash would leave behind
//! (drained checkpoints plus a non-draining tail of the current log),
//! boot a fresh engine, replay the checkpoint chain, re-register the
//! continuous queries, restore the vector timestamps, and resume the
//! windows at the checkpointed stable VTS so no delayed firing is lost
//! (at-least-once: the firing *at* the horizon may repeat, never vanish).
//!
//! The manager owns the immutable inputs recovery needs — configuration,
//! initial stored data, stream schemas, the shared string server — so a
//! drill is a one-liner for benches and tests.

use crate::checkpoint::CheckpointError;
use crate::config::EngineConfig;
use crate::engine::{RecoveryReport, WukongS};
use bytes::Bytes;
use std::sync::Arc;
use wukong_net::NodeId;
use wukong_rdf::{StringServer, Triple};
use wukong_stream::StreamSchema;

/// Drives checkpoint-and-log recovery for one deployment lineage.
pub struct RecoveryManager {
    cfg: EngineConfig,
    base: Vec<Triple>,
    schemas: Vec<StreamSchema>,
    strings: Arc<StringServer>,
}

impl RecoveryManager {
    /// Captures the recovery inputs: the deployment's configuration, its
    /// initial stored data, the stream schemas in registration order, and
    /// the shared string server checkpointed IDs refer to.
    pub fn new(
        cfg: EngineConfig,
        base: Vec<Triple>,
        schemas: Vec<StreamSchema>,
        strings: Arc<StringServer>,
    ) -> Self {
        RecoveryManager {
            cfg,
            base,
            schemas,
            strings,
        }
    }

    /// One capture of the checkpoint chain. With `corrupt` set, an active
    /// checkpoint-corruption rule may bit-rot each non-empty checkpoint on
    /// the "durable medium" — the fault model of DESIGN.md §13, applied at
    /// capture time so the running engine never sees the damage.
    fn capture(&self, engine: &WukongS, corrupt: bool) -> Vec<Bytes> {
        let mut cps = engine.checkpoints();
        cps.push(engine.tail_checkpoint());
        if corrupt {
            if let Some(fs) = engine.cluster().fabric().fault_state() {
                for cp in cps.iter_mut() {
                    if cp.is_empty() {
                        continue;
                    }
                    if let Some(bits) = fs.corrupt_checkpoint() {
                        let mut raw = cp.to_vec();
                        let bit = (bits as usize) % (raw.len() * 8);
                        raw[bit / 8] ^= 1 << (bit % 8);
                        *cp = Bytes::from(raw);
                    }
                }
            }
        }
        cps
    }

    /// The durable state a crash of `engine` would leave behind: every
    /// drained checkpoint plus a tail checkpoint of the un-drained log.
    /// Subject to bit-rot when the fault plan corrupts checkpoints.
    pub fn durable_state(&self, engine: &WukongS) -> Vec<Bytes> {
        self.capture(engine, true)
    }

    /// The pristine upstream copy of the same state (§5 assumes stream
    /// sources can re-serve history): never bit-rotted, the fallback
    /// [`RecoveryManager::recover_verified`] reaches for when the durable
    /// chain fails its section checksums.
    pub fn backup_state(&self, engine: &WukongS) -> Vec<Bytes> {
        self.capture(engine, false)
    }

    /// Boots a fresh engine from durable state. The recovered deployment
    /// runs fault-free: the fault plan (and any dead node) died with the
    /// failed process.
    pub fn recover(&self, durable: &[Bytes]) -> Result<(WukongS, RecoveryReport), CheckpointError> {
        let mut cfg = self.cfg.clone();
        cfg.fault_plan = None;
        WukongS::recover_with_report(
            cfg,
            self.base.iter().copied(),
            self.schemas.clone(),
            &self.strings,
            durable,
        )
    }

    /// The full drill: kill `node` on the running engine, capture the
    /// durable state exactly as the crash would see it, and recover a
    /// fresh engine from it.
    pub fn drill(
        &self,
        engine: &WukongS,
        node: NodeId,
    ) -> Result<(WukongS, RecoveryReport), CheckpointError> {
        engine.cluster().fabric().kill_node(node);
        let durable = self.durable_state(engine);
        self.recover(&durable)
    }

    /// Integrity-checked recovery: try the (possibly bit-rotted) durable
    /// chain first; if its section checksums reject it, fall back to the
    /// pristine upstream copy. Detection is never silent — the recovered
    /// engine's integrity counters and the report both record it.
    pub fn recover_verified(
        &self,
        durable: &[Bytes],
        backup: &[Bytes],
    ) -> Result<(WukongS, RecoveryReport), CheckpointError> {
        match self.recover(durable) {
            Ok(ok) => Ok(ok),
            Err(_) => {
                let (engine, mut report) = self.recover(backup)?;
                engine
                    .cluster()
                    .obs()
                    .integrity()
                    .inc_checksum_fail_checkpoint();
                report.integrity_violations += 1;
                Ok((engine, report))
            }
        }
    }

    /// The chaos drill: capture both copies of the durable state (backup
    /// before durable, so the corruption draw sequence matches a single
    /// capture), optionally kill `node` first, recover through the
    /// verified path, and account any quarantined shards the rebuild
    /// cleared. The recovered engine starts with no quarantine: recovery
    /// replays the pristine *logged* batches — corruption happened on the
    /// wire after logging — so the rebuilt shards are whole.
    pub fn drill_verified(
        &self,
        engine: &WukongS,
        node: Option<NodeId>,
    ) -> Result<(WukongS, RecoveryReport), CheckpointError> {
        let quarantined = engine.quarantined_nodes();
        if let Some(n) = node {
            engine.cluster().fabric().kill_node(n);
        }
        let backup = self.backup_state(engine);
        let durable = self.durable_state(engine);
        let t0 = std::time::Instant::now();
        let (recovered, mut report) = self.recover_verified(&durable, &backup)?;
        report.quarantined_shards = quarantined.len() as u64;
        if !quarantined.is_empty() {
            let integrity = recovered.cluster().obs().integrity();
            integrity.inc_rebuild();
            integrity.add_rebuild_ns(t0.elapsed().as_nanos() as u64);
        }
        Ok((recovered, report))
    }
}
