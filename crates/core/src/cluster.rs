//! The cluster: store shards, per-stream state, and the fabric.
//!
//! One [`Cluster`] models the whole deployment inside one process. Each
//! node owns a [`PersistentShard`]; each registered stream owns, per node,
//! a transient ring (timing data lives with the owner of its keys) and a
//! stream index keyed by *origin* node.
//!
//! A note on replication: because every simulated node shares the process
//! address space, stream-index replicas are not physically copied — one
//! canonical index per `(stream, origin)` pair serves all readers. What
//! locality-aware partitioning (§4.2) actually changes is *cost*: with
//! replication on, injection charges one fabric message per subscriber and
//! queries read the index locally (one RDMA read for remote values); with
//! it off, queries on non-owner nodes charge the extra index read the
//! paper describes ("the partitioned stream index would incur an
//! additional RDMA read"). Memory accounting multiplies index bytes by the
//! replica count, so Table 7 reflects real replication cost.

use crate::config::{EngineConfig, RpcPolicy};
use parking_lot::RwLock;
use std::collections::HashSet;
use std::sync::Arc;
use wukong_net::{Fabric, NodeId, TaskTimer, WorkerPool};
use wukong_rdf::{Key, StringServer, Triple, Vid};
use wukong_store::{PersistentShard, ShardMap, SnapshotId, StreamIndex, TransientStore};
use wukong_stream::StreamSchema;

/// Per-stream cluster state.
///
/// The per-node vectors are guarded by per-node locks, so parallel
/// ingest tasks — each confined to one node by its owner filter — never
/// contend on (or even share) a lock: task `m` writes only
/// `transients[m]` and `indexes[m]`.
pub struct StreamState {
    /// The stream's schema (batch interval, timing predicates, …).
    pub schema: StreamSchema,
    /// Timing data per owner node.
    pub transients: Vec<RwLock<TransientStore>>,
    /// Stream index per *origin* node: `indexes[m]` holds the entries for
    /// appends that happened on node `m`'s shard.
    pub indexes: Vec<RwLock<StreamIndex>>,
    /// Nodes that registered continuous queries over this stream —
    /// replication targets under locality-aware partitioning.
    pub subscribers: RwLock<HashSet<u16>>,
    /// Raw stream bytes received so far (Table 7 accounting).
    pub raw_bytes: RwLock<u64>,
    /// Cumulative GC sweep results across nodes.
    pub gc_stats: RwLock<wukong_store::gc::GcStats>,
}

impl StreamState {
    fn new(schema: StreamSchema, nodes: usize, transient_budget: usize) -> Self {
        StreamState {
            schema,
            transients: (0..nodes)
                .map(|_| RwLock::new(TransientStore::new(transient_budget)))
                .collect(),
            indexes: (0..nodes)
                .map(|_| RwLock::new(StreamIndex::new()))
                .collect(),
            subscribers: RwLock::new(HashSet::new()),
            raw_bytes: RwLock::new(0),
            gc_stats: RwLock::new(Default::default()),
        }
    }

    /// Heap bytes of one copy of this stream's index (all origins).
    pub fn index_bytes(&self) -> usize {
        self.indexes.iter().map(|i| i.read().heap_bytes()).sum()
    }

    /// Heap bytes of the timing rings across nodes.
    pub fn transient_bytes(&self) -> usize {
        self.transients.iter().map(|t| t.read().used_bytes()).sum()
    }
}

/// All shared state of a Wukong+S deployment.
pub struct Cluster {
    shards: Vec<PersistentShard>,
    shard_map: ShardMap,
    fabric: Fabric,
    strings: Arc<StringServer>,
    streams: RwLock<Vec<Arc<StreamState>>>,
    transient_budget: usize,
    /// Whether stream indexes replicate to subscriber nodes (§4.2).
    pub replicate_indexes: bool,
    obs: Arc<wukong_obs::Registry>,
    rpc: RpcPolicy,
    /// One worker pool per node (query firings, fork-join partitions,
    /// ingest application). All pools record into the registry's shared
    /// pool counters.
    pools: Vec<WorkerPool>,
}

/// A cheap, cloneable handle onto a deployment's shared observability
/// surfaces: the staged-latency [`Registry`](wukong_obs::Registry) and
/// the fabric operation counters. Benchmarks hold one of these across an
/// experiment and diff snapshots around the measured interval.
#[derive(Clone)]
pub struct ClusterHandle {
    cluster: Arc<Cluster>,
}

impl ClusterHandle {
    /// Wraps a shared cluster.
    pub fn new(cluster: Arc<Cluster>) -> Self {
        ClusterHandle { cluster }
    }

    /// The staged-latency registry.
    pub fn obs(&self) -> &Arc<wukong_obs::Registry> {
        self.cluster.obs()
    }

    /// Point-in-time copy of every stage/latency series.
    pub fn obs_snapshot(&self) -> wukong_obs::RegistrySnapshot {
        self.cluster.obs().snapshot()
    }

    /// Point-in-time copy of the fabric operation counters.
    pub fn fabric_metrics(&self) -> wukong_net::MetricsSnapshot {
        self.cluster.fabric().metrics()
    }

    /// Point-in-time copy of the fault/recovery counters.
    pub fn fault_counters(&self) -> wukong_obs::FaultSnapshot {
        self.cluster.obs().faults().snapshot()
    }

    /// The always-on flight recorder (causal span events, black-box
    /// dumps). Benchmarks snapshot it after a run to serialise traces.
    pub fn trace(&self) -> &Arc<wukong_obs::TraceRecorder> {
        self.cluster.obs().trace()
    }

    /// Point-in-time copy of the flight recorder: merged events, firing
    /// lineage metadata, and any anomaly dumps captured so far.
    pub fn trace_snapshot(&self) -> wukong_obs::TraceSnapshot {
        self.cluster.obs().trace().snapshot()
    }
}

impl Cluster {
    /// Builds the cluster for `config`.
    pub fn new(config: &EngineConfig) -> Self {
        Self::new_with_strings(config, Arc::new(StringServer::new()))
    }

    /// Builds the cluster sharing an existing string server (recovery: the
    /// ID mapping is part of the reloaded initial data, §4.1).
    pub fn new_with_strings(config: &EngineConfig, strings: Arc<StringServer>) -> Self {
        let obs = Arc::new(wukong_obs::Registry::new());
        let mut fabric = Fabric::new(config.nodes, config.network);
        if let Some(plan) = &config.fault_plan {
            fabric.install_faults(plan.clone(), Arc::clone(obs.faults()));
        }
        let pools = (0..config.nodes)
            .map(|_| WorkerPool::new(config.worker_threads, Arc::clone(obs.pool())))
            .collect();
        Cluster {
            shards: (0..config.nodes)
                .map(|_| PersistentShard::new(config.partitions_per_shard))
                .collect(),
            shard_map: ShardMap::new(config.nodes as u16),
            fabric,
            strings,
            streams: RwLock::new(Vec::new()),
            transient_budget: config.transient_budget_bytes,
            replicate_indexes: config.replicate_stream_indexes,
            obs,
            rpc: config.rpc,
            pools,
        }
    }

    /// The fork-join RPC deadline/retry policy.
    pub fn rpc_policy(&self) -> RpcPolicy {
        self.rpc
    }

    /// The observability registry (staged latency histograms).
    pub fn obs(&self) -> &Arc<wukong_obs::Registry> {
        &self.obs
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.shards.len()
    }

    /// The shared string server.
    pub fn strings(&self) -> &Arc<StringServer> {
        &self.strings
    }

    /// The vertex → node shard map.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shard_map
    }

    /// The fabric (for metrics and cost charging).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// A node's shard.
    pub fn shard(&self, node: u16) -> &PersistentShard {
        &self.shards[node as usize]
    }

    /// A node's worker pool.
    pub fn pool(&self, node: NodeId) -> &WorkerPool {
        &self.pools[node.idx()]
    }

    /// The owner node of `key`.
    pub fn owner(&self, key: Key) -> NodeId {
        NodeId(self.shard_map.node_of_key(key))
    }

    /// Loads one triple of the initial dataset, routing each of its key
    /// updates to the owning node's shard (no key is stored twice).
    pub fn load_base_triple(&self, t: Triple) {
        use wukong_rdf::Dir;
        use wukong_store::SnapshotId as SN;
        let sn = SN::BASE;
        let out_key = t.out_key();
        let owner_out = self.shard_map.node_of_key(out_key) as usize;
        self.shards[owner_out].count_triple();
        let (_, first_out) = self.shards[owner_out].append_owned(out_key, t.o, sn, None);
        if first_out {
            let k = Key::index(t.p, Dir::Out);
            self.shards[self.shard_map.node_of_key(k) as usize].append_owned(k, t.s, sn, None);
        }
        let in_key = t.in_key();
        let (_, first_in) = self.shards[self.shard_map.node_of_key(in_key) as usize]
            .append_owned(in_key, t.s, sn, None);
        if first_in {
            let k = Key::index(t.p, Dir::In);
            self.shards[self.shard_map.node_of_key(k) as usize].append_owned(k, t.o, sn, None);
        }
    }

    /// Registers a stream, returning its cluster-wide index.
    pub fn add_stream(&self, schema: StreamSchema) -> usize {
        let mut streams = self.streams.write();
        let idx = streams.len();
        streams.push(Arc::new(StreamState::new(
            schema,
            self.nodes(),
            self.transient_budget,
        )));
        idx
    }

    /// The state of stream `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a registered stream.
    pub fn stream(&self, idx: usize) -> Arc<StreamState> {
        Arc::clone(&self.streams.read()[idx])
    }

    /// Number of registered streams.
    pub fn stream_count(&self) -> usize {
        self.streams.read().len()
    }

    /// Snapshot of all stream states.
    pub fn streams(&self) -> Vec<Arc<StreamState>> {
        self.streams.read().clone()
    }

    /// Reads the stored-graph neighbours of `key` at `sn` for a task on
    /// `home`, charging remote access as two one-sided reads (key lookup +
    /// value read, §5).
    pub fn stored_neighbors(
        &self,
        home: NodeId,
        key: Key,
        sn: SnapshotId,
        timer: &mut TaskTimer,
        out: &mut Vec<Vid>,
    ) {
        let owner = self.owner(key);
        let before = out.len();
        self.shards[owner.idx()].for_each_neighbor(key, sn, |v| out.push(v));
        if owner != home {
            let bytes = (out.len() - before) * std::mem::size_of::<Vid>();
            // Lookup read (key + fat pointer) …
            self.fabric.charge_read(home, owner, 24, timer);
            // … then the value read.
            self.fabric.charge_read(home, owner, bytes.max(8), timer);
        }
    }

    /// Stored-graph cardinality of `key` at `sn` (planner oracle — metadata
    /// lookups are not charged).
    pub fn stored_len(&self, key: Key, sn: SnapshotId) -> usize {
        self.shards[self.owner(key).idx()].len_at(key, sn)
    }

    /// Reads the streaming-data neighbours of `key` for stream `stream_idx`
    /// within `[lo, hi]`: timeless tuples through the stream index,
    /// timing tuples from the transient ring.
    ///
    /// With index replication the index itself is local; only remote
    /// *values* cost a read. Without replication, a non-owner node charges
    /// an additional read for the index lookup (§4.2).
    #[allow(clippy::too_many_arguments)]
    pub fn stream_neighbors(
        &self,
        home: NodeId,
        stream_idx: usize,
        key: Key,
        lo: u64,
        hi: u64,
        timer: &mut TaskTimer,
        out: &mut Vec<Vid>,
    ) {
        let stream = self.stream(stream_idx);
        let owner = self.owner(key);
        let remote = owner != home;

        if remote && !self.replicate_indexes {
            // The index lives only with the owner: one extra read.
            self.fabric.charge_read(home, owner, 24, timer);
        }

        if key.is_index() {
            // Window index-vertex scan: enumerate the vertices whose
            // `[v|p|d]` keys were touched by in-window batches, across
            // every origin's index (a window's actors shard over the
            // whole cluster). The indexes are locally replicated, so the
            // scan itself costs no fabric reads; vertices whose first
            // `p`-edge predates the window are still found because every
            // append touches the vertex's own key.
            for index in &stream.indexes {
                index.read().vertices_in(key.pid(), key.dir(), lo, hi, out);
            }
        } else {
            // Timeless: stream index → fat pointers → persistent values.
            let before = out.len();
            {
                let index = stream.indexes[owner.idx()].read();
                let shard = &self.shards[owner.idx()];
                index.for_each_pointer_in(key, lo, hi, |fp| {
                    shard.read_range(key, fp.start, fp.len, out);
                });
            }
            if remote && out.len() > before {
                let bytes = (out.len() - before) * std::mem::size_of::<Vid>();
                self.fabric.charge_read(home, owner, bytes, timer);
            }
        }

        // Timing: transient ring on the owner (index keys included — the
        // per-slice predicate index lives with the index key's owner).
        let before = out.len();
        {
            let transient = stream.transients[owner.idx()].read();
            transient.for_each_slice_in(lo, hi, |s| out.extend_from_slice(s.neighbors(key)));
        }
        if remote && out.len() > before {
            let bytes = (out.len() - before) * std::mem::size_of::<Vid>();
            self.fabric.charge_read(home, owner, bytes, timer);
        }
    }

    /// Reads the streaming-data neighbours of `key` within `[lo, hi]`
    /// *with* each edge's contributing batch timestamp, for the
    /// delta-maintenance path: the tag is what lets a maintained firing
    /// later retract exactly the rows whose support expired. Costs are
    /// charged like [`Cluster::stream_neighbors`] — the timestamps ride
    /// along with index metadata that is already replicated (or already
    /// paid for by the extra index read without replication), so no
    /// additional fabric traffic is modelled.
    ///
    /// Index keys are not supported: the incremental executor enumerates
    /// index subjects untimed and tags only their expansion edges.
    #[allow(clippy::too_many_arguments)]
    pub fn stream_neighbors_timed(
        &self,
        home: NodeId,
        stream_idx: usize,
        key: Key,
        lo: u64,
        hi: u64,
        timer: &mut TaskTimer,
        out: &mut Vec<(Vid, wukong_rdf::Timestamp)>,
    ) {
        debug_assert!(
            !key.is_index(),
            "timed scans enumerate edges, not index vertices"
        );
        let stream = self.stream(stream_idx);
        let owner = self.owner(key);
        let remote = owner != home;

        if remote && !self.replicate_indexes {
            // The index lives only with the owner: one extra read.
            self.fabric.charge_read(home, owner, 24, timer);
        }

        // Timeless: stream index → timestamped fat pointers → values.
        let before = out.len();
        {
            let index = stream.indexes[owner.idx()].read();
            let shard = &self.shards[owner.idx()];
            let mut vals = Vec::new();
            index.for_each_pointer_timed_in(key, lo, hi, |ts, fp| {
                vals.clear();
                shard.read_range(key, fp.start, fp.len, &mut vals);
                out.extend(vals.iter().map(|&v| (v, ts)));
            });
        }
        if remote && out.len() > before {
            let bytes = (out.len() - before) * std::mem::size_of::<Vid>();
            self.fabric.charge_read(home, owner, bytes, timer);
        }

        // Timing: each transient slice is one batch, tagged with the
        // batch timestamp.
        let before = out.len();
        {
            let transient = stream.transients[owner.idx()].read();
            transient.for_each_slice_in(lo, hi, |s| {
                let ts = s.timestamp;
                out.extend(s.neighbors(key).iter().map(|&v| (v, ts)));
            });
        }
        if remote && out.len() > before {
            let bytes = (out.len() - before) * std::mem::size_of::<Vid>();
            self.fabric.charge_read(home, owner, bytes, timer);
        }
    }

    /// Streaming-data cardinality estimate for the planner (uncharged).
    pub fn stream_len(&self, stream_idx: usize, key: Key, lo: u64, hi: u64) -> usize {
        let stream = self.stream(stream_idx);
        let owner = self.owner(key);
        let idx_count = if key.is_index() {
            let mut v = Vec::new();
            for index in &stream.indexes {
                index
                    .read()
                    .vertices_in(key.pid(), key.dir(), lo, hi, &mut v);
            }
            v.len()
        } else {
            stream.indexes[owner.idx()].read().count_in(key, lo, hi)
        };
        let timing_count = stream.transients[owner.idx()]
            .read()
            .neighbors_in(key, lo, hi)
            .len();
        idx_count + timing_count
    }

    /// Total persistent-store bytes across shards.
    pub fn store_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.heap_bytes()).sum()
    }

    /// Total triples across shards (counts a triple once per owning shard).
    pub fn triple_count(&self) -> u64 {
        self.shards.iter().map(|s| s.triple_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wukong_rdf::{Dir, Pid, StreamId};

    fn config(nodes: usize) -> EngineConfig {
        EngineConfig {
            nodes,
            ..EngineConfig::single_node()
        }
    }

    #[test]
    fn base_load_routes_to_owners() {
        let c = Cluster::new(&config(4));
        let ss = c.strings().clone();
        let t = Triple::new(
            ss.intern_entity("Logan").unwrap(),
            ss.intern_predicate("fo").unwrap(),
            ss.intern_entity("Erik").unwrap(),
        );
        c.load_base_triple(t);
        let mut out = Vec::new();
        let mut timer = TaskTimer::start();
        c.stored_neighbors(
            NodeId(0),
            t.out_key(),
            SnapshotId::BASE,
            &mut timer,
            &mut out,
        );
        assert_eq!(out, vec![t.o]);
    }

    #[test]
    fn remote_stored_read_charges_two_reads() {
        let c = Cluster::new(&config(2));
        // Find a vertex owned by node 1 and read it from node 0.
        let mut v = 1u64;
        while c.shard_map().node_of_vertex(Vid(v)) != 1 {
            v += 1;
        }
        let t = Triple::new(Vid(v), Pid(1), Vid(v));
        c.load_base_triple(t);
        let key = Key::new(Vid(v), Pid(1), Dir::Out);
        let mut out = Vec::new();
        let mut timer = TaskTimer::start();
        let before = c.fabric().metrics();
        c.stored_neighbors(NodeId(0), key, SnapshotId::BASE, &mut timer, &mut out);
        let delta = before.delta(&c.fabric().metrics());
        assert_eq!(delta.one_sided_reads, 2);
        assert!(timer.charged_ns() > 0);

        // The same read from the owner is free.
        let mut timer2 = TaskTimer::start();
        let before = c.fabric().metrics();
        c.stored_neighbors(NodeId(1), key, SnapshotId::BASE, &mut timer2, &mut out);
        let delta = before.delta(&c.fabric().metrics());
        assert_eq!(delta.one_sided_reads, 0);
        assert_eq!(timer2.charged_ns(), 0);
    }

    #[test]
    fn stream_registration_grows_state() {
        let c = Cluster::new(&config(2));
        assert_eq!(c.stream_count(), 0);
        let i = c.add_stream(StreamSchema::timeless(StreamId(0), "S", 100));
        assert_eq!(i, 0);
        assert_eq!(c.stream_count(), 1);
        let s = c.stream(0);
        assert_eq!(s.transients.len(), 2);
        assert_eq!(s.indexes.len(), 2);
    }
}
