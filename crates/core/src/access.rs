//! In-place execution's data access (§5, "Leveraging RDMA").
//!
//! [`NodeAccess`] implements [`GraphAccess`] for a query executing
//! entirely on its home node: local data is read directly, remote stored
//! data costs two one-sided reads (lookup + value), and remote streaming
//! data costs a single read thanks to the locally replicated stream index.

use crate::cluster::Cluster;
use wukong_net::{NodeId, TaskTimer};
use wukong_query::exec::{ExecContext, GraphAccess, PatternSource, TimedGraphAccess};
use wukong_query::GraphName;
use wukong_rdf::{Key, Timestamp, Vid};

/// Graph access for a task pinned to one node.
pub struct NodeAccess<'a> {
    cluster: &'a Cluster,
    home: NodeId,
}

impl<'a> NodeAccess<'a> {
    /// Creates access for a task on `home`.
    pub fn new(cluster: &'a Cluster, home: NodeId) -> Self {
        NodeAccess { cluster, home }
    }

    /// The home node.
    pub fn home(&self) -> NodeId {
        self.home
    }
}

impl GraphAccess for NodeAccess<'_> {
    fn neighbors(
        &self,
        key: Key,
        src: PatternSource,
        ctx: &ExecContext,
        timer: &mut TaskTimer,
        out: &mut Vec<Vid>,
    ) {
        match src {
            GraphName::Stored => {
                self.cluster
                    .stored_neighbors(self.home, key, ctx.sn, timer, out);
            }
            GraphName::Stream(i) => {
                let w = ctx.window(i);
                self.cluster.stream_neighbors(
                    self.home,
                    w.stream.0 as usize,
                    key,
                    w.lo,
                    w.hi,
                    timer,
                    out,
                );
            }
        }
    }

    fn estimate(&self, key: Key, src: PatternSource, ctx: &ExecContext) -> usize {
        match src {
            GraphName::Stored => self.cluster.stored_len(key, ctx.sn),
            GraphName::Stream(i) => {
                let w = ctx.window(i);
                self.cluster
                    .stream_len(w.stream.0 as usize, key, w.lo, w.hi)
            }
        }
    }
}

impl TimedGraphAccess for NodeAccess<'_> {
    fn neighbors_timed(
        &self,
        key: Key,
        src: PatternSource,
        ctx: &ExecContext,
        timer: &mut TaskTimer,
        out: &mut Vec<(Vid, Timestamp)>,
    ) {
        match src {
            GraphName::Stored => {
                // The stored graph never expires: tag 0 keeps stored
                // contributions permanently inside any window.
                let before = out.len();
                let mut plain = Vec::new();
                self.cluster
                    .stored_neighbors(self.home, key, ctx.sn, timer, &mut plain);
                out.extend(plain.into_iter().map(|v| (v, 0)));
                debug_assert!(out.len() >= before);
            }
            GraphName::Stream(i) => {
                let w = ctx.window(i);
                self.cluster.stream_neighbors_timed(
                    self.home,
                    w.stream.0 as usize,
                    key,
                    w.lo,
                    w.hi,
                    timer,
                    out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use wukong_query::exec::WindowInstance;
    use wukong_rdf::{Dir, Pid, StreamId, StreamTuple, Triple};
    use wukong_store::SnapshotId;
    use wukong_stream::{dispatch, Batch, Injector, NodeStreamStore, StreamSchema};

    #[test]
    fn stream_and_stored_access_compose() {
        let cluster = Cluster::new(&EngineConfig::single_node());
        // Stored: 1-fo-2. Stream: 1-po-3 at ts 80 (batch 100).
        cluster.load_base_triple(Triple::new(Vid(1), Pid(2), Vid(2)));
        let sidx = cluster.add_stream(StreamSchema::timeless(StreamId(0), "S", 100));
        let stream = cluster.stream(sidx);

        let batch = Batch::sealed(
            StreamId(0),
            100,
            vec![StreamTuple::timeless(
                Triple::new(Vid(1), Pid(4), Vid(3)),
                80,
            )],
            0,
        );
        let subs = dispatch(&batch, cluster.shard_map());
        let mut store = NodeStreamStore::new(1 << 20);
        let (ib, _) = Injector.apply(cluster.shard(0), &mut store, &subs[0], 100, SnapshotId(1));
        stream.indexes[0].write().push_batch(ib);

        let access = NodeAccess::new(&cluster, NodeId(0));
        let ctx = ExecContext {
            sn: SnapshotId(1),
            windows: vec![WindowInstance {
                stream: StreamId(0),
                lo: 1,
                hi: 100,
            }],
        };
        let mut timer = TaskTimer::start();
        let mut out = Vec::new();
        access.neighbors(
            Key::new(Vid(1), Pid(4), Dir::Out),
            GraphName::Stream(0),
            &ctx,
            &mut timer,
            &mut out,
        );
        assert_eq!(out, vec![Vid(3)]);
        out.clear();
        access.neighbors(
            Key::new(Vid(1), Pid(2), Dir::Out),
            GraphName::Stored,
            &ctx,
            &mut timer,
            &mut out,
        );
        assert_eq!(out, vec![Vid(2)]);
        assert_eq!(
            access.estimate(
                Key::new(Vid(1), Pid(4), Dir::Out),
                GraphName::Stream(0),
                &ctx
            ),
            1
        );

        // The timed path sees the same edges, each tagged with its
        // contributing batch timestamp (stored edges tag 0: permanent).
        let mut timed = Vec::new();
        access.neighbors_timed(
            Key::new(Vid(1), Pid(4), Dir::Out),
            GraphName::Stream(0),
            &ctx,
            &mut timer,
            &mut timed,
        );
        assert_eq!(timed, vec![(Vid(3), 100)]);
        timed.clear();
        access.neighbors_timed(
            Key::new(Vid(1), Pid(2), Dir::Out),
            GraphName::Stored,
            &ctx,
            &mut timer,
            &mut timed,
        );
        assert_eq!(timed, vec![(Vid(2), 0)]);
    }
}
