#![warn(missing_docs)]
//! Wukong+S: a distributed stateful stream querying engine over
//! fast-evolving linked data (SOSP 2017).
//!
//! This crate assembles the substrates into the paper's integrated,
//! store-centric design (§3, Fig. 5):
//!
//! - a [`cluster::Cluster`] of persistent-store shards connected by a
//!   simulated RDMA fabric, plus per-`(node, stream)` transient rings and
//!   stream-index replicas;
//! - the full stream pipeline (Adaptor → Dispatcher → Injector →
//!   Coordinator) driven by [`engine::WukongS::ingest`];
//! - a continuous engine with data-driven triggering and an in-place /
//!   fork-join execution choice per query (§5, "Leveraging RDMA");
//! - a one-shot engine reading consistent snapshots via bounded snapshot
//!   scalarization (§4.3);
//! - checkpoint/recovery with at-least-once continuous-query semantics
//!   (§5, fault tolerance).
//!
//! # Quick start
//!
//! ```
//! use wukong_core::{EngineConfig, WukongS};
//! use wukong_rdf::ntriples;
//! use wukong_stream::StreamSchema;
//! use wukong_rdf::StreamId;
//!
//! let engine = WukongS::new(EngineConfig::single_node());
//! // Load stored data.
//! let triples = ntriples::parse_document(
//!     engine.strings(),
//!     "Logan fo Erik\nErik fo Logan\n",
//! )
//! .unwrap();
//! engine.load_base(triples);
//! // Register a stream and a continuous query over it.
//! let sid = engine.register_stream(StreamSchema::timeless(StreamId(0), "Tweet_Stream", 100));
//! let q = engine
//!     .register_continuous(
//!         "REGISTER QUERY qc SELECT ?X ?Z \
//!          FROM Tweet_Stream [RANGE 1s STEP 100ms] \
//!          WHERE { GRAPH Tweet_Stream { ?X po ?Z } . ?X fo Erik }",
//!     )
//!     .unwrap();
//! // Stream a tuple and pump the pipeline.
//! let t = ntriples::parse_tuple(engine.strings(), "Logan po T-15 20", 1).unwrap();
//! engine.ingest(sid, t.triple, t.timestamp);
//! engine.advance_time(100);
//! let firings = engine.fire_ready();
//! assert_eq!(firings.len(), 1);
//! assert_eq!(firings[0].query, q);
//! assert_eq!(firings[0].results.rows.len(), 1);
//! ```

pub mod access;
pub mod checkpoint;
pub mod client;
pub mod cluster;
pub mod config;
pub mod engine;
pub mod forkjoin;
pub mod metrics;
pub mod recovery;
pub mod scrub;

pub use client::{Client, Prepared, ProxyPool, Submitted};
pub use cluster::ClusterHandle;
pub use config::{EngineConfig, ExecMode, OverloadPolicy, RpcPolicy};
pub use engine::{ContinuousId, DeploymentStats, Firing, OverloadState, RecoveryReport, WukongS};
pub use metrics::LatencyRecorder;
pub use recovery::RecoveryManager;
pub use scrub::ScrubViolation;
